"""The single-node dashDB database engine.

Executes every statement class the paper's workloads use (III: INSERT,
UPDATE, DROP, SELECT, CREATE, DELETE, WITH, EXPLAIN, TRUNCATE) over the
column-organised storage layer, through the dialect-aware SQL front end.
One Database is one shard-group member in the MPP layer (or the whole
system in single-node deployments).
"""

from __future__ import annotations

import datetime
import os
import threading
import time

import numpy as np

from repro.bufferpool import BufferPool, make_policy
from repro.catalog.catalog import Catalog, NicknameInfo, TableInfo, ViewInfo
from repro.database.result import Result, result_from_batch
from repro.database.session import Session
from repro.engine.expression import Batch, selection_mask
from repro.errors import (
    DialectError,
    RecoveryError,
    SQLError,
    UnknownObjectError,
    UnsupportedFeatureError,
)
from repro.monitor.instrument import (
    annotated_plan_lines,
    attach_operator_spans,
    describe_plan,
    instrument_plan,
)
from repro.monitor.metrics import MetricsRegistry
from repro.monitor.report import database_report
from repro.monitor.tracer import NULL_TRACER, Tracer
from repro.mvcc.txn import Snapshot, TxnManager
from repro.parallel import WorkerPool
from repro.sql import ast
from repro.sql.binder import ExpressionBinder, Scope, ScopeColumn
from repro.sql.dialects import get_dialect, resolve_type
from repro.sql.parser import parse_statement, parse_statements
from repro.sql.planner import PlannedQuery, SelectPlanner
from repro.storage.column import ColumnVector, to_boundary_scalar
from repro.storage.page import PageId
from repro.storage.table import ColumnTable, TableSchema
from repro.util.timer import SimClock
from repro.verify import sanitizer

DEFAULT_BUFFERPOOL_PAGES = 1024

#: When set (and not "0"), every planned SELECT is statically verified by
#: :mod:`repro.verify.plan` before execution.
VERIFY_PLANS_ENV_VAR = "REPRO_VERIFY_PLANS"


class Database:
    """A single dashDB Local database instance.

    Args:
        name: database name (dashDB's default is BLUDB).
        compatibility: "oracle" selects the Oracle-compatibility deployment
            image (VARCHAR2 semantics; paper II.C.2); None is the standard
            image.
        bufferpool_pages: page frames in the buffer pool.
        bufferpool_policy: replacement policy name (default the paper's
            randomized-weight policy).
        clock: optional SimClock; when set, CURRENT_DATE/TIMESTAMP are
            simulated (deterministic benchmarks).
        tracer: optional :class:`~repro.monitor.tracer.Tracer`; the default
            is the shared no-op tracer (zero instrumentation overhead).
            With a real tracer, every statement produces a span tree
            (parse -> plan -> execute -> per-operator) and the buffer pool
            feeds the metrics registry.
        parallelism: intra-query degree of parallelism.  ``None`` resolves
            via :func:`~repro.parallel.pool.default_parallelism`
            (``REPRO_PARALLELISM`` env var, else 1 = serial).  Scans, hash
            joins, and parallel-safe aggregates split into morsels on the
            shared worker pool; at ``parallelism=1`` every operator runs
            the unchanged serial code path.
        morsel_rows: rows per aggregation morsel (default
            :data:`~repro.parallel.morsel.DEFAULT_MORSEL_ROWS`).
        pool_backend: worker-pool execution backend, ``"thread"`` or
            ``"process"`` (default: the ``REPRO_POOL_BACKEND`` environment
            variable, falling back to ``"thread"``).  The process backend
            ships numeric region buffers through shared memory and falls
            back to threads per-task for non-picklable kernels.
        durability: optional
            :class:`~repro.durability.manager.DurabilityManager`.  When
            attached, every statement runs as one auto-commit transaction:
            mutation effects are WAL-logged, a ``commit`` record is
            group-committed, and :meth:`checkpoint` / :meth:`reopen`
            provide fuzzy checkpoints and crash recovery.  ``None`` (the
            default) keeps the engine purely in-memory with zero overhead.
    """

    def __init__(
        self,
        name: str = "BLUDB",
        compatibility: str | None = None,
        bufferpool_pages: int = DEFAULT_BUFFERPOOL_PAGES,
        bufferpool_policy: str = "random-weight",
        clock: SimClock | None = None,
        region_rows: int = 65_536,
        scan_options: dict | None = None,
        tracer: Tracer | None = None,
        parallelism: int | None = None,
        morsel_rows: int | None = None,
        pool_backend: str | None = None,
        durability=None,
    ):
        self.name = name
        self.compatibility = compatibility
        self.catalog = Catalog()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = MetricsRegistry()
        self.bufferpool = BufferPool(
            bufferpool_pages,
            make_policy(bufferpool_policy),
            metrics=self.metrics if self.tracer.enabled else None,
        )
        self.clock = clock
        self.region_rows = region_rows
        #: Engine feature flags for scans (used by ablation baselines):
        #: {"use_skipping": bool, "use_compressed_eval": bool}.
        self.scan_options = scan_options
        #: Shared morsel worker pool (serial/inline unless parallelism > 1).
        self.pool = WorkerPool(
            parallelism,
            metrics=self.metrics if self.tracer.enabled else None,
            name=name.lower(),
            backend=pool_backend,
        )
        self.morsel_rows = morsel_rows
        self.durability = durability
        if durability is not None:
            durability.attach(self)
        self.procedures: dict[str, object] = {}
        self.statement_count = 0
        #: MVCC transaction manager: allocates txids and snapshots.  Every
        #: write statement runs as one auto-commit transaction; every read
        #: statement runs against an immutable snapshot and takes no lock.
        self.txn = TxnManager(name)
        #: Serialises whole *write* statements (and checkpoints) on this
        #: engine.  Held across dispatch + commit — not just the counter —
        #: so a checkpoint can never snapshot mid-statement state (the
        #: model checker's commit-vs-checkpoint scenario found exactly
        #: that: a snapshot taken between a statement's table mutation and
        #: its WAL commit replays the transaction on top of its own
        #: effects after recovery).  Reentrant because blocks/CALL nest
        #: statements.  Read statements (SELECT/VALUES/EXPLAIN/SET) do
        #: *not* take it: they read through an MVCC snapshot, so analytic
        #: scans never block behind a concurrent load — the paper's Test-2
        #: HTAP claim.  Intra-statement morsel parallelism is untouched:
        #: pool workers never take this lock.
        self._statement_lock = sanitizer.make_lock(
            "database:%s:statement" % name, reentrant=True
        )
        #: Guards the statement counter, which both read and write paths
        #: bump; its own lock (class ``txn``) because read statements no
        #: longer hold the statement lock.
        self._counter_lock = sanitizer.make_lock("txn:%s:counter" % name)
        #: Table-version clock for the serving-layer caches: every commit
        #: that touches a table bumps that table's version; statements
        #: whose touched set cannot be derived (CALL, anonymous blocks)
        #: bump the global counter, which invalidates everything.  Guarded
        #: by its own ``txn``-class lock: bumps happen under the statement
        #: lock (database > txn is the declared order) while cache reads
        #: take it bare.
        self._version_lock = sanitizer.make_lock("txn:%s:tablever" % name)
        self._table_versions: dict[str, int] = {}
        self._global_version = 0
        self._write_epoch = 0
        self._commit_listeners: list = []
        #: Optional prepared-statement cache (``repro.serving.cache.PlanCache``):
        #: when attached, ``execute`` reuses parsed ASTs keyed on normalized
        #: SQL and the planner reuses parsed view definitions.
        self.statement_cache = None
        # Per-thread statement state: the current write transaction, the
        # current statement snapshot, and the scans of the most recent
        # statement (concurrent readers must not clobber each other's
        # byte accounting).
        self._tls = threading.local()

    @property
    def last_scans(self) -> list:
        """Scans created while planning this thread's latest statement."""
        scans = getattr(self._tls, "scans", None)
        if scans is None:
            scans = []
            self._tls.scans = scans
        return scans

    @last_scans.setter
    def last_scans(self, value: list) -> None:
        self._tls.scans = value

    def note_scan(self, scan) -> None:
        """Planner callback: remember scans for per-query byte accounting."""
        self.last_scans.append(scan)

    def current_snapshot(self) -> Snapshot:
        """The MVCC snapshot of the statement running on this thread.

        Inside a statement this is the snapshot pinned at statement start
        (a write transaction's own snapshot, so it sees its own earlier
        stamps); outside any statement a fresh snapshot is taken — the
        planner and core-API callers always get a consistent view.
        """
        snap = getattr(self._tls, "snapshot", None)
        if snap is None:
            snap = self.txn.snapshot()
        return snap

    def _stmt_txn(self):
        """The write transaction of the statement on this thread (or None)."""
        return getattr(self._tls, "txn", None)

    def _stamp_txid(self) -> int:
        txn = self._stmt_txn()
        return txn.txid if txn is not None else 0

    def last_query_bytes(self) -> tuple[int, int]:
        """(compressed, raw-equivalent) bytes scanned by the last query."""
        compressed = sum(s.stats.bytes_scanned for s in self.last_scans)
        raw = sum(s.stats.raw_bytes_scanned for s in self.last_scans)
        return compressed, raw

    # -- commit notification (serving-cache invalidation) -----------------------

    def add_commit_listener(self, listener) -> None:
        """Register ``listener(tables_or_None)`` to run after every committed
        write statement.  ``tables`` is the frozenset of touched table names
        (uppercase); ``None`` means the touched set could not be derived
        (CALL / anonymous block / recovery) and *everything* may have
        changed.  Listeners run under the statement lock — they must be
        short and must only acquire locks ranked after ``database``."""
        if listener not in self._commit_listeners:
            self._commit_listeners.append(listener)

    def remove_commit_listener(self, listener) -> None:
        if listener in self._commit_listeners:
            self._commit_listeners.remove(listener)

    def versions_token(self, tables) -> tuple[int, dict[str, int]]:
        """Validation stamp for a cache entry reading ``tables``.

        Returns ``(global_version, {table: version})``.  An entry is valid
        while both the global counter and every per-table counter still
        match — reading the token *before* executing makes the check
        conservative: a commit racing the read leaves the entry immediately
        stale rather than ever stale-but-valid."""
        with self._version_lock:
            return (
                self._global_version,
                {t: self._table_versions.get(t, 0) for t in tables},
            )

    def versions_valid(self, token: tuple[int, dict[str, int]]) -> bool:
        """Whether a :meth:`versions_token` stamp is still current."""
        global_version, per_table = token
        with self._version_lock:
            if global_version != self._global_version:
                return False
            return all(
                self._table_versions.get(t, 0) == v for t, v in per_table.items()
            )

    @property
    def write_epoch(self) -> int:
        """Total committed write statements (fragile-entry validation)."""
        with self._version_lock:
            return self._write_epoch

    def _note_commit(self, tables: frozenset | None) -> None:
        """Bump version counters and fan out to commit listeners.

        Called after a write transaction commits, still under the statement
        lock, so listeners observe invalidations in commit order."""
        with self._version_lock:
            self._write_epoch += 1
            if tables is None:
                self._global_version += 1
                for name in self._table_versions:
                    self._table_versions[name] += 1
            else:
                for name in tables:
                    self._table_versions[name] = (
                        self._table_versions.get(name, 0) + 1
                    )
        for listener in list(self._commit_listeners):
            listener(tables)

    #: AST node -> attribute holding the target table reference.
    _TARGET_ATTRS = {
        ast.Insert: "table", ast.Update: "table", ast.Delete: "table",
        ast.CreateTable: "name", ast.DropTable: "name",
        ast.TruncateTable: "name", ast.CreateView: "name",
        ast.DropView: "name",
    }

    def _touched_tables(self, node: ast.Node, txn) -> frozenset | None:
        """Tables a committed write statement may have changed (None =
        unknown, treat as all).  Combines the statement's AST target with
        the tables the transaction actually stamped (CTAS inserts, block
        side effects registered through the txn)."""
        names = set()
        if txn is not None:
            for table in txn._tables:
                names.add(table.schema.name.upper())
        attr = self._TARGET_ATTRS.get(type(node))
        if attr is not None:
            names.add(getattr(node, attr).name.upper())
            return frozenset(names)
        if isinstance(
            node, (ast.CreateSequence, ast.DropSequence, ast.CreateAlias)
        ):
            # Sequence/alias DDL changes no table contents (NEXTVAL readers
            # are uncacheable), but aliases can rebind names: be safe.
            return frozenset(names) if not isinstance(
                node, ast.CreateAlias
            ) else None
        # CALL / AnonymousBlock / anything else: effects unknowable here.
        return None

    # -- connections -----------------------------------------------------------

    def connect(self, dialect: str | None = None) -> Session:
        """Open a session; the default dialect follows the deployment image."""
        if dialect is None:
            dialect = "oracle" if self.compatibility == "oracle" else "db2"
        return Session(self, dialect)

    # -- time --------------------------------------------------------------------

    def current_date(self) -> datetime.date:
        if self.clock is not None:
            return datetime.date(2016, 1, 1) + datetime.timedelta(
                days=int(self.clock.now // 86400)
            )
        return datetime.date.today()  # lint-ok: wall-clock (real-time fallback when no SimClock is attached)

    def current_timestamp(self) -> datetime.datetime:
        if self.clock is not None:
            return datetime.datetime(2016, 1, 1) + datetime.timedelta(
                seconds=self.clock.now
            )
        return datetime.datetime.now()  # lint-ok: wall-clock (real-time fallback when no SimClock is attached)

    # -- page source (buffer pool integration) --------------------------------------

    def page_source(self, table: str, column: str, region: int, loader):
        page_id = PageId(table=table, column=column, extent=region)
        return self.bufferpool.get(page_id, loader)

    # -- execution --------------------------------------------------------------------

    def execute_script(self, sql: str, session: Session | None = None) -> list[Result]:
        session = session or self.connect()
        with self.tracer.span("parse", sql=sql):
            nodes = parse_statements(sql)
        return [self._execute_node(node, session, sql=sql) for node in nodes]

    def execute(self, sql: str, session: Session | None = None) -> Result:
        session = session or self.connect()

        def _parse() -> ast.Node:
            with self.tracer.span("parse", sql=sql):
                return parse_statement(sql)

        cache = self.statement_cache
        if cache is not None:
            # Prepared-statement path: reuse the parsed AST for repeated
            # statement text.  Safe because planning/binding never mutate
            # AST nodes in place; the cache itself declines statements
            # whose text is not a cacheable read.
            node = cache.statement_ast(sql, _parse)
        else:
            node = _parse()
        return self._execute_node(node, session, sql=sql)

    def execute_ast(
        self,
        node: ast.Node,
        session: Session | None = None,
        snapshot: Snapshot | None = None,
    ) -> Result:
        """Execute a pre-parsed statement (used by the MPP layer, which
        rewrites ASTs for partial/global aggregation).  ``snapshot`` pins
        a read statement to an externally chosen MVCC snapshot — the
        cluster coordinator uses this for consistent cross-shard reads."""
        session = session or self.connect()
        return self._execute_node(node, session, snapshot=snapshot)

    def evaluate_rows(self, ast_rows, session: Session | None = None) -> list[list]:
        """Evaluate constant VALUES rows to boundary values."""
        session = session or self.connect()
        return self._evaluate_rows(ast_rows, session)

    def _planner(self, session: Session) -> SelectPlanner:
        return SelectPlanner(
            self, session.dialect, page_source=self.page_source, session=session
        )

    def _execute_select(self, node: ast.Select, session: Session) -> Result:
        self.last_scans = []
        tracer = self.tracer
        with tracer.span("plan"):
            planned = self._planner(session).plan(node)
        if os.environ.get(VERIFY_PLANS_ENV_VAR, "") not in ("", "0"):
            from repro.verify.plan import check_plan

            check_plan(planned, database=self)
        if not tracer.enabled:
            return result_from_batch(
                planned.run(), planned.names, planned.keys, planned.dtypes
            )
        root = instrument_plan(planned.op, clock=self.clock)
        with tracer.span("execute") as span:
            batch = root.run()
        attach_operator_spans(tracer, span, root)
        return result_from_batch(batch, planned.names, planned.keys, planned.dtypes)

    #: Statement classes that never mutate shared database state: they run
    #: on the lock-free snapshot-read path.  (SET only touches the session;
    #: EXPLAIN plans without executing mutations.)
    _READ_NODES = (
        ast.Select,
        ast.ValuesStatement,
        ast.ExplainStatement,
        ast.SetStatement,
    )

    def _execute_node(
        self,
        node: ast.Node,
        session: Session,
        sql: str | None = None,
        snapshot: Snapshot | None = None,
    ) -> Result:
        """Statement wrapper: spans, per-statement stats, query history."""
        if isinstance(node, self._READ_NODES):
            return self._execute_read_node(node, session, sql, snapshot)
        return self._execute_write_node(node, session, sql)

    def _bump_statement_count(self) -> int:
        with self._counter_lock:
            if sanitizer.ENABLED:
                sanitizer.access(
                    "database:%s" % self.name, "statement_count",
                    site="Database._bump_statement_count",
                )
            self.statement_count += 1
            return self.statement_count

    def _execute_read_node(
        self,
        node: ast.Node,
        session: Session,
        sql: str | None,
        snapshot: Snapshot | None,
    ) -> Result:
        """Snapshot-read path: no statement lock, never blocks a writer.

        The snapshot is pinned for the whole statement (repeatable reads
        within the statement).  Inside a write transaction (a block/CALL
        running a SELECT) the enclosing transaction's snapshot is reused
        so the read sees the transaction's own uncommitted stamps.
        """
        index = self._bump_statement_count()
        wall_start = time.perf_counter()  # lint-ok: wall-clock (wall stopwatch reported beside the sim span, never charged to the cost model)
        sim_start = self.clock.now if self.clock is not None else None
        if snapshot is None:
            outer = self._stmt_txn()
            snapshot = outer.snapshot if outer is not None else self.txn.snapshot()
        prev_snapshot = getattr(self._tls, "snapshot", None)
        self._tls.snapshot = snapshot
        try:
            with self.tracer.span(
                "statement", statement=type(node).__name__, sql=sql
            ):
                try:
                    result = self._dispatch_node(node, session)
                except BaseException:
                    if self.durability is not None:
                        self.durability.abort()
                    raise
                # Pure queries can still advance durable state (NEXTVAL
                # consumed in a SELECT): commit the sequence delta.
                if self.durability is not None:
                    self.durability.commit()
        finally:
            self._tls.snapshot = prev_snapshot
        wall = time.perf_counter() - wall_start  # lint-ok: wall-clock (same wall stopwatch as above; reported, never charged)
        sim = self.clock.now - sim_start if sim_start is not None else None
        session.record_statement(
            node, result, wall, sim_seconds=sim, sql=sql, index=index
        )
        return result

    def _execute_write_node(
        self, node: ast.Node, session: Session, sql: str | None = None
    ) -> Result:
        """Write path: statement lock + one auto-commit MVCC transaction.

        The transaction's stamps become visible atomically at commit —
        concurrent snapshot readers either see all of the statement's
        effects or none.  On failure both the WAL buffer (durability
        abort) and the version stamps (MVCC rollback) are reverted.
        """
        with self._statement_lock:
            index = self._bump_statement_count()
            wall_start = time.perf_counter()  # lint-ok: wall-clock (wall stopwatch reported beside the sim span, never charged to the cost model)
            sim_start = self.clock.now if self.clock is not None else None
            outer_txn = self._stmt_txn()
            prev_snapshot = getattr(self._tls, "snapshot", None)
            txn = self.txn.begin()
            self._tls.txn = txn
            self._tls.snapshot = txn.snapshot
            try:
                with self.tracer.span(
                    "statement", statement=type(node).__name__, sql=sql
                ):
                    # Auto-commit transaction boundary: a statement's redo
                    # records reach the WAL only if it succeeds; a commit
                    # record makes them durable (group commit may defer
                    # the flush).
                    try:
                        result = self._dispatch_node(node, session)
                    except BaseException:
                        if self.durability is not None:
                            self.durability.abort()
                        txn.abort()
                        raise
                    if self.durability is not None:
                        self.durability.commit(txn_meta={"txn": txn.txid})
                    txn.commit()
                    self._note_commit(self._touched_tables(node, txn))
            finally:
                self._tls.txn = outer_txn
                self._tls.snapshot = prev_snapshot
        wall = time.perf_counter() - wall_start  # lint-ok: wall-clock (same wall stopwatch as above; reported, never charged)
        sim = self.clock.now - sim_start if sim_start is not None else None
        session.record_statement(
            node, result, wall, sim_seconds=sim, sql=sql, index=index
        )
        return result

    def _dispatch_node(self, node: ast.Node, session: Session) -> Result:
        if isinstance(node, ast.Select):
            return self._execute_select(node, session)
        if isinstance(node, ast.ValuesStatement):
            return self._execute_values(node, session)
        if isinstance(node, ast.Insert):
            return self._execute_insert(node, session)
        if isinstance(node, ast.Update):
            return self._execute_update(node, session)
        if isinstance(node, ast.Delete):
            return self._execute_delete(node, session)
        if isinstance(node, ast.CreateTable):
            return self._execute_create_table(node, session)
        if isinstance(node, ast.DropTable):
            return self._execute_drop_table(node, session)
        if isinstance(node, ast.TruncateTable):
            return self._execute_truncate(node, session)
        if isinstance(node, ast.CreateView):
            return self._execute_create_view(node, session)
        if isinstance(node, ast.DropView):
            self.catalog.drop(node.name.name, node.name.schema)
            if self.durability is not None:
                self.durability.log_op(
                    "ddl", None, ("drop_view", node.name.schema, node.name.name)
                )
            return Result(message="view dropped")
        if isinstance(node, ast.CreateSequence):
            self.catalog.create_sequence(
                node.name,
                start=node.start,
                increment=node.increment,
                minvalue=node.minvalue,
                maxvalue=node.maxvalue,
                cycle=node.cycle,
            )
            if self.durability is not None:
                self.durability.log_op(
                    "ddl",
                    None,
                    (
                        "create_sequence",
                        node.name,
                        {
                            "start": node.start,
                            "increment": node.increment,
                            "minvalue": node.minvalue,
                            "maxvalue": node.maxvalue,
                            "cycle": node.cycle,
                        },
                    ),
                )
            return Result(message="sequence created")
        if isinstance(node, ast.DropSequence):
            self.catalog.drop_sequence(node.name)
            if self.durability is not None:
                self.durability.log_op("ddl", None, ("drop_sequence", node.name))
            return Result(message="sequence dropped")
        if isinstance(node, ast.CreateAlias):
            self.catalog.create_alias(node.name.name, node.target.name, node.name.schema)
            if self.durability is not None:
                self.durability.log_op(
                    "ddl",
                    None,
                    (
                        "create_alias",
                        node.name.schema,
                        node.name.name,
                        node.target.name,
                    ),
                )
            return Result(message="alias created")
        if isinstance(node, ast.SetStatement):
            return self._execute_set(node, session)
        if isinstance(node, ast.ExplainStatement):
            return self._execute_explain(node, session)
        if isinstance(node, ast.CallStatement):
            return self._execute_call(node, session)
        if isinstance(node, ast.AnonymousBlock):
            last = Result(message="block executed")
            for statement in node.statements:
                last = self._execute_node(statement, session)
            return last
        raise UnsupportedFeatureError(
            "statement %s not supported" % type(node).__name__
        )

    # -- VALUES ------------------------------------------------------------------------

    def _execute_values(self, node: ast.ValuesStatement, session: Session) -> Result:
        if not session.dialect.allows_top_level_values:
            raise DialectError("top-level VALUES requires the DB2 dialect")
        rows = self._evaluate_rows(node.rows, session)
        width = len(node.rows[0])
        names = ["%d" % (i + 1) for i in range(width)]
        return Result(columns=names, rows=[tuple(r) for r in rows], rowcount=len(rows))

    def _evaluate_rows(self, ast_rows, session: Session) -> list[list]:
        binder = ExpressionBinder(Scope([]), session.dialect, self)
        binder.subquery_planner = self._planner(session)
        out = []
        width = len(ast_rows[0])
        for ast_row in ast_rows:
            if len(ast_row) != width:
                raise SQLError("VALUES rows have differing widths")
            row = []
            for expr_node in ast_row:
                expr = binder.bind(expr_node)
                value = expr.eval_row({})
                row.append(to_boundary_scalar(value, expr.dtype))
            out.append(row)
        return out

    # -- durability hooks ---------------------------------------------------------------

    def _durable_for(self, session: Session, ref: ast.TableRef, table: ColumnTable):
        """The durability manager, unless the target is session-temporary
        (declared temp tables die with the session and are never logged)."""
        if self.durability is None:
            return None
        if ref.schema is None or ref.schema == "SESSION":
            if session.get_temp_table(ref.name) is table:
                return None
        return self.durability

    @staticmethod
    def _table_key(ref: ast.TableRef, table: ColumnTable) -> tuple:
        return (ref.schema, table.schema.name)

    def checkpoint(self) -> int:
        """Take a checkpoint at a statement boundary; returns its LSN.

        The statement lock quiesces in-flight statements first: a snapshot
        must be transaction-consistent, or recovery replays post-snapshot
        commits on top of their own already-snapshotted effects."""
        if self.durability is None:
            raise RecoveryError("database %s has no durability manager" % self.name)
        with self._statement_lock:
            return self.durability.checkpoint()

    # flow-ok: write-protocol (recovery replays mutations *from* the WAL — re-logging them would double every record; _note_commit(None) below invalidates everything, which subsumes touched-table recording)
    def reopen(self, clean: bool = False):
        """Restart this engine from durable state alone.

        ``clean=True`` models an orderly shutdown (the WAL is flushed
        first); the default models a crash, where buffered (unflushed)
        records — and the commits they carried — are lost.  Volatile
        state (catalog, buffer pool) is discarded and rebuilt by ARIES
        redo recovery.  Returns the
        :class:`~repro.durability.manager.RecoveryReport`.
        """
        if self.durability is None:
            raise RecoveryError("database %s has no durability manager" % self.name)
        if clean:
            self.durability.flush()
        else:
            self.durability.crash()
        self.catalog = Catalog()
        self.bufferpool.clear()
        # Txids are an incarnation-local notion: recovery stamps every
        # surviving version ancient, so the manager restarts fresh (any
        # in-flight transactions died with the crash).
        self.txn = TxnManager(self.name)
        self._tls = threading.local()
        # Recovery rewrites table contents wholesale: every cached answer
        # and every outstanding version stamp is now meaningless.
        self._note_commit(None)
        return self.durability.recover()

    # -- INSERT -------------------------------------------------------------------------

    def _resolve_target(self, ref: ast.TableRef, session: Session) -> ColumnTable:
        if ref.schema is None or ref.schema == "SESSION":
            temp = session.get_temp_table(ref.name)
            if temp is not None:
                return temp
        if ref.schema == "SESSION":
            raise UnknownObjectError("no declared temp table %s" % ref.name)
        info = self.catalog.resolve(ref.name, ref.schema)
        if isinstance(info, TableInfo):
            return info.table
        raise SQLError("%s is not a base table" % ref.name)

    def _execute_insert(self, node: ast.Insert, session: Session) -> Result:
        table = self._resolve_target(node.table, session)
        schema = table.schema
        names = schema.column_names
        if node.columns is not None:
            targets = [c.upper() for c in node.columns]
            for t in targets:
                if t not in names:
                    raise SQLError("column %s not in table %s" % (t, schema.name))
        else:
            targets = names
        if node.rows is not None:
            raw_rows = self._evaluate_rows(node.rows, session)
        else:
            planned = self._planner(session).plan(node.select)
            result = result_from_batch(
                planned.run(), planned.names, planned.keys, planned.dtypes
            )
            raw_rows = [list(r) for r in result.rows]
        rows = []
        for raw in raw_rows:
            if len(raw) != len(targets):
                raise SQLError(
                    "INSERT has %d values for %d columns" % (len(raw), len(targets))
                )
            by_name = dict(zip(targets, raw))
            rows.append(tuple(by_name.get(n) for n in names))
        oracle_strings = self.compatibility == "oracle"
        if oracle_strings:
            rows = [
                tuple(None if v == "" else v for v in row) for row in rows
            ]
        txn = self._stmt_txn()
        if txn is not None:
            count = txn.insert(table, rows)
        else:
            count = table.insert_rows(rows)
        durable = self._durable_for(session, node.table, table)
        if durable is not None and rows:
            durable.log_insert(self._table_key(node.table, table), rows)
        return Result(rowcount=count, message="%d row(s) inserted" % count)

    # -- UPDATE / DELETE -----------------------------------------------------------------

    def _table_batch(self, table: ColumnTable, alias: str) -> tuple[Batch, Scope, np.ndarray]:
        columns = {}
        scope_columns = []
        for cname, dtype in table.schema.columns:
            key = "%s.%s" % (alias, cname)
            columns[key] = table.column_vector(cname)
            scope_columns.append(ScopeColumn(key, cname, alias, dtype))
        # A write statement targets only versions its snapshot can see —
        # never another transaction's uncommitted rows.
        txn = self._stmt_txn()
        live = table.visible_mask(txn.snapshot if txn is not None else None)
        batch = Batch.from_columns(columns) if columns else Batch({}, 0)
        return batch, Scope(scope_columns), live

    def _match_mask(self, table, alias, where, session) -> np.ndarray:
        batch, scope, live = self._table_batch(table, alias)
        if where is None:
            return live
        binder = ExpressionBinder(scope, session.dialect, self)
        binder.subquery_planner = self._planner(session)
        predicate = binder.bind(where)
        return selection_mask(predicate, batch) & live

    def _execute_delete(self, node: ast.Delete, session: Session) -> Result:
        table = self._resolve_target(node.table, session)
        alias = (node.table.alias or node.table.name).upper()
        mask = self._match_mask(table, alias, node.where, session)
        txn = self._stmt_txn()
        if txn is not None:
            count = txn.delete(table, mask)
        else:
            count = table.apply_deletes(mask)
        durable = self._durable_for(session, node.table, table)
        if durable is not None and count:
            durable.log_delete(self._table_key(node.table, table), mask)
        return Result(rowcount=count, message="%d row(s) deleted" % count)

    def _execute_update(self, node: ast.Update, session: Session) -> Result:
        table = self._resolve_target(node.table, session)
        alias = (node.table.alias or node.table.name).upper()
        batch, scope, live = self._table_batch(table, alias)
        binder = ExpressionBinder(scope, session.dialect, self)
        binder.subquery_planner = self._planner(session)
        if node.where is not None:
            mask = selection_mask(binder.bind(node.where), batch) & live
        else:
            mask = live
        count = int(mask.sum())
        if count == 0:
            return Result(rowcount=0, message="0 row(s) updated")
        assignments = []
        for column, expr_node in node.assignments:
            cname = column.upper()
            dtype = table.schema.column_type(cname)
            assignments.append((cname, dtype, binder.bind(expr_node)))
        # Column-store update = read matched rows, tombstone, re-insert.
        matched = batch.filter(mask)
        names = table.schema.column_names
        rows = []
        for i in range(matched.n):
            row_ctx = {}
            for key, vector in matched.columns.items():
                row_ctx[key] = (
                    None if vector.null_mask()[i] else _unwrap(vector.values[i])
                )
            new_row = []
            for cname, dtype in table.schema.columns:
                key = "%s.%s" % (alias, cname)
                value = row_ctx[key]
                boundary = to_boundary_scalar(value, dtype) if value is not None else None
                new_row.append(boundary)
            for cname, dtype, expr in assignments:
                physical = expr.eval_row(row_ctx)
                index = names.index(cname)
                new_row[index] = (
                    None if physical is None else to_boundary_scalar(
                        _coerce_assignment(physical, expr.dtype, dtype), dtype
                    )
                )
            rows.append(tuple(new_row))
        txn = self._stmt_txn()
        if txn is not None:
            txn.delete(table, mask)
            txn.insert(table, rows)
        else:
            table.apply_deletes(mask)
            table.insert_rows(rows)
        self.bufferpool.invalidate_table(table.schema.name)
        durable = self._durable_for(session, node.table, table)
        if durable is not None:
            # Column-store UPDATE is delete + re-insert; so is its redo.
            key = self._table_key(node.table, table)
            durable.log_delete(key, mask)
            durable.log_insert(key, rows)
        return Result(rowcount=count, message="%d row(s) updated" % count)

    # -- DDL ---------------------------------------------------------------------------

    def _execute_create_table(self, node: ast.CreateTable, session: Session) -> Result:
        name = node.name.name.upper()
        if node.as_select is not None:
            planned = self._planner(session).plan(node.as_select)
            result = result_from_batch(
                planned.run(), planned.names, planned.keys, planned.dtypes
            )
            schema = TableSchema(
                name,
                tuple(
                    (n.upper(), dt) for n, dt in zip(planned.names, planned.dtypes)
                ),
            )
            if node.temporary:
                table = session.declare_temp_table(schema, region_rows=self.region_rows)
            else:
                table = self.catalog.create_table(
                    schema, node.name.schema, region_rows=self.region_rows
                ).table
            txn = self._stmt_txn()
            if txn is not None:
                txn.insert(table, [list(r) for r in result.rows])
            else:
                table.insert_rows([list(r) for r in result.rows])
            if self.durability is not None and not node.temporary:
                self.durability.log_op(
                    "ddl",
                    None,
                    (
                        "create_table",
                        node.name.schema,
                        name,
                        list(schema.columns),
                        {"region_rows": self.region_rows},
                    ),
                )
                if result.rows:
                    self.durability.log_insert((node.name.schema, name), result.rows)
            return Result(message="table %s created (%d rows)" % (name, len(result.rows)))
        columns = []
        unique = []
        not_null = []
        for cdef in node.columns:
            dtype = resolve_type(cdef.type_name, cdef.length, cdef.precision, cdef.scale)
            columns.append((cdef.name.upper(), dtype))
            if cdef.unique or cdef.primary_key:
                unique.append(cdef.name.upper())
            if cdef.not_null:
                not_null.append(cdef.name.upper())
        schema = TableSchema(name, tuple(columns))
        if node.temporary:
            session.declare_temp_table(
                schema,
                region_rows=self.region_rows,
                unique_columns=tuple(unique),
                not_null_columns=tuple(not_null),
            )
            return Result(message="temporary table %s declared" % name)
        self.catalog.create_table(
            schema,
            node.name.schema,
            region_rows=self.region_rows,
            unique_columns=tuple(unique),
            not_null_columns=tuple(not_null),
        )
        if self.durability is not None:
            self.durability.log_op(
                "ddl",
                None,
                (
                    "create_table",
                    node.name.schema,
                    name,
                    columns,
                    {
                        "region_rows": self.region_rows,
                        "unique_columns": tuple(unique),
                        "not_null_columns": tuple(not_null),
                    },
                ),
            )
        return Result(message="table %s created" % name)

    def _execute_drop_table(self, node: ast.DropTable, session: Session) -> Result:
        name = node.name.name
        if node.name.schema is None and session.drop_temp_table(name):
            return Result(message="temporary table %s dropped" % name.upper())
        try:
            self.catalog.drop(name, node.name.schema)
        except UnknownObjectError:
            if node.if_exists:
                return Result(message="table %s did not exist" % name.upper())
            raise
        self.bufferpool.invalidate_table(name.upper())
        if self.durability is not None:
            self.durability.log_op(
                "ddl", None, ("drop_table", node.name.schema, name.upper())
            )
        return Result(message="table %s dropped" % name.upper())

    def _execute_truncate(self, node: ast.TruncateTable, session: Session) -> Result:
        table = self._resolve_target(node.name, session)
        table.truncate()
        self.bufferpool.invalidate_table(table.schema.name)
        durable = self._durable_for(session, node.name, table)
        if durable is not None:
            durable.log_op("truncate", self._table_key(node.name, table), None)
        return Result(message="table %s truncated" % table.schema.name)

    def _execute_create_view(self, node: ast.CreateView, session: Session) -> Result:
        # The creating session's dialect is pinned to the view (II.C.2).
        self.catalog.create_view(
            node.name.name,
            node.select_text,
            session.dialect.name,
            node.name.schema,
            node.column_names,
            replace=node.or_replace,
        )
        if self.durability is not None:
            self.durability.log_op(
                "ddl",
                None,
                (
                    "create_view",
                    node.name.schema,
                    node.name.name,
                    node.select_text,
                    session.dialect.name,
                    node.column_names,
                    node.or_replace,
                ),
            )
        return Result(message="view %s created" % node.name.name.upper())

    # -- SET / EXPLAIN / CALL -------------------------------------------------------------

    def _execute_set(self, node: ast.SetStatement, session: Session) -> Result:
        name = node.name.upper()
        value = node.value.strip("'")
        if name in ("SQL_COMPAT", "SQL_DIALECT", "CURRENT SQL_COMPAT"):
            session.set_dialect(value)
            return Result(message="dialect set to %s" % session.dialect.name)
        if name in ("SCHEMA", "CURRENT SCHEMA"):
            session.current_schema = value.upper()
            return Result(message="schema set to %s" % value.upper())
        session.variables[name] = value
        return Result(message="%s set" % name)

    def _execute_explain(self, node: ast.ExplainStatement, session: Session) -> Result:
        if not isinstance(node.statement, ast.Select):
            return Result(columns=["PLAN"], rows=[("non-query statement",)], rowcount=1)
        self.last_scans = []
        planned = self._planner(session).plan(node.statement)
        if node.analyze:
            root = instrument_plan(planned.op, clock=self.clock)
            root.run()
            lines = annotated_plan_lines(root)
        else:
            lines = describe_plan(planned.op)
        return Result(columns=["PLAN"], rows=[(l,) for l in lines], rowcount=len(lines))

    def _execute_call(self, node: ast.CallStatement, session: Session) -> Result:
        proc = self.procedures.get(node.name.upper())
        if proc is None:
            raise UnknownObjectError("no procedure %s" % node.name)
        binder = ExpressionBinder(Scope([]), session.dialect, self)
        args = []
        for arg_node in node.args:
            expr = binder.bind(arg_node)
            args.append(to_boundary_scalar(expr.eval_row({}), expr.dtype))
        return proc(self, session, args)

    # -- misc -------------------------------------------------------------------------------

    def register_procedure(self, name: str, fn) -> None:
        """Install a stored procedure (CALL name(...)).

        ``fn(database, session, args) -> Result``.
        """
        self.procedures[name.upper()] = fn

    def table_names(self) -> list[str]:
        return [
            name
            for name in self.catalog.objects()
            if isinstance(self.catalog.try_resolve(name), TableInfo)
        ]

    def total_compressed_bytes(self) -> int:
        total = 0
        for name in self.table_names():
            total += self.catalog.get_table(name).table.compressed_nbytes()
        return total

    def monreport(self) -> dict:
        """MONREPORT analogue: a snapshot of the monitoring surfaces."""
        return database_report(self)


def _unwrap(value):
    if isinstance(value, np.generic):
        return value.item()
    return value


def _coerce_assignment(physical, from_dt, to_dt):
    """Adjust a physical value produced by an expression to a column type."""
    from repro.types.datatypes import TypeKind

    if from_dt.kind is TypeKind.DECIMAL and to_dt.kind is TypeKind.DECIMAL:
        shift = to_dt.scale - from_dt.scale
        if shift >= 0:
            return physical * (10 ** shift)
        return physical // (10 ** -shift)
    if from_dt.kind is TypeKind.DECIMAL and to_dt.is_approximate:
        return physical / (10 ** from_dt.scale)
    if from_dt.is_approximate and to_dt.kind is TypeKind.DECIMAL:
        return int(round(physical * (10 ** to_dt.scale)))
    if from_dt.is_integer and to_dt.kind is TypeKind.DECIMAL:
        return physical * (10 ** to_dt.scale)
    return physical


