"""Result sets returned by statement execution."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.column import to_boundary
from repro.types.values import format_value


@dataclass
class Result:
    """The outcome of one statement.

    For queries, ``columns`` and ``rows`` are populated (rows hold boundary
    Python values).  For DML/DDL, ``rowcount`` and ``message`` describe the
    effect.
    """

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = -1
    message: str = ""
    dtypes: list = field(default_factory=list)  # DataType per column (queries)

    @property
    def is_query(self) -> bool:
        return bool(self.columns)

    def scalar(self):
        """First column of the first row (or None for empty results)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, name: str) -> list:
        index = self.columns.index(name.upper())
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def pretty(self, max_rows: int = 20) -> str:
        """Render like a CLP client would."""
        if not self.is_query:
            return self.message or ("%d row(s) affected" % self.rowcount)
        shown = self.rows[:max_rows]
        cells = [[format_value(v) for v in row] for row in shown]
        widths = [
            max([len(c)] + [len(row[i]) for row in cells])
            for i, c in enumerate(self.columns)
        ]
        lines = [
            "  ".join(c.ljust(w) for c, w in zip(self.columns, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        if len(self.rows) > max_rows:
            lines.append("... (%d rows total)" % len(self.rows))
        return "\n".join(lines)


def result_from_batch(batch, names: list[str], keys: list[str], dtypes) -> Result:
    """Convert an engine batch into a boundary-value result set."""
    columns = []
    for key, dtype in zip(keys, dtypes):
        vector = batch.columns.get(key)
        if vector is None:
            columns.append([])
        else:
            columns.append(to_boundary(vector.values, vector.nulls, dtype))
    n = batch.n if batch.columns else 0
    rows = [tuple(col[i] for col in columns) for i in range(n)]
    return Result(
        columns=[n.upper() for n in names],
        rows=rows,
        rowcount=len(rows),
        dtypes=list(dtypes),
    )
