"""Sessions: the connection-scoped state.

Each session carries its **dialect variable** (paper II.C.2: "a session
variable is leveraged allowing individual sessions to decide the dialect to
use when compiling SQL"), its declared temporary tables, and Oracle-style
sequence CURRVAL state lives on the shared catalog sequences.
"""

from __future__ import annotations

from repro.errors import SQLError
from repro.sql.dialects import Dialect, get_dialect
from repro.storage.table import ColumnTable, TableSchema


class Session:
    """One client connection to a :class:`~repro.database.database.Database`."""

    def __init__(self, database, dialect: str = "db2"):
        self.database = database
        self.dialect: Dialect = get_dialect(dialect)
        self._temp_tables: dict[str, ColumnTable] = {}
        self.current_schema: str | None = None
        self.variables: dict[str, str] = {}

    # -- dialect ---------------------------------------------------------------

    def set_dialect(self, name: str) -> None:
        self.dialect = get_dialect(name)

    # -- temporary tables --------------------------------------------------------

    def declare_temp_table(self, schema: TableSchema, **kwargs) -> ColumnTable:
        key = schema.name.upper()
        if key in self._temp_tables:
            raise SQLError("temporary table %s already declared" % key)
        table = ColumnTable(schema, **kwargs)
        self._temp_tables[key] = table
        return table

    def get_temp_table(self, name: str) -> ColumnTable | None:
        return self._temp_tables.get(name.upper())

    def drop_temp_table(self, name: str) -> bool:
        return self._temp_tables.pop(name.upper(), None) is not None

    def temp_table_names(self) -> list[str]:
        return sorted(self._temp_tables)

    # -- execution -----------------------------------------------------------------

    def execute(self, sql: str):
        """Run one statement and return its :class:`Result`."""
        return self.database.execute(sql, session=self)

    def execute_script(self, sql: str) -> list:
        """Run a ';'-separated script, returning one Result per statement."""
        return self.database.execute_script(sql, session=self)

    def query(self, sql: str) -> list[tuple]:
        """Run a query and return its rows."""
        return self.execute(sql).rows

    def close(self) -> None:
        self._temp_tables.clear()
