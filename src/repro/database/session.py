"""Sessions: the connection-scoped state.

Each session carries its **dialect variable** (paper II.C.2: "a session
variable is leveraged allowing individual sessions to decide the dialect to
use when compiling SQL"), its declared temporary tables, a bounded
query-history ring with per-statement stats, and Oracle-style sequence
CURRVAL state lives on the shared catalog sequences.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import SQLError
from repro.sql.dialects import Dialect, get_dialect
from repro.storage.table import ColumnTable, TableSchema

#: Statements kept in a session's query-history ring.
HISTORY_LIMIT = 128


@dataclass
class StatementStats:
    """Per-statement execution record kept in the session history."""

    index: int              # database-wide statement number
    statement: str          # AST node class name (Select, Insert, ...)
    sql: str | None         # original text when executed from SQL
    rowcount: int           # rows returned (queries) or affected (DML)
    wall_seconds: float
    sim_seconds: float | None = None


class Session:
    """One client connection to a :class:`~repro.database.database.Database`."""

    def __init__(self, database, dialect: str = "db2"):
        self.database = database
        self.dialect: Dialect = get_dialect(dialect)
        self._temp_tables: dict[str, ColumnTable] = {}
        self.current_schema: str | None = None
        self.variables: dict[str, str] = {}
        self.history: deque[StatementStats] = deque(maxlen=HISTORY_LIMIT)

    # -- dialect ---------------------------------------------------------------

    def set_dialect(self, name: str) -> None:
        self.dialect = get_dialect(name)

    # -- temporary tables --------------------------------------------------------

    def declare_temp_table(self, schema: TableSchema, **kwargs) -> ColumnTable:
        key = schema.name.upper()
        if key in self._temp_tables:
            raise SQLError("temporary table %s already declared" % key)
        table = ColumnTable(schema, **kwargs)
        self._temp_tables[key] = table
        return table

    def get_temp_table(self, name: str) -> ColumnTable | None:
        return self._temp_tables.get(name.upper())

    def drop_temp_table(self, name: str) -> bool:
        return self._temp_tables.pop(name.upper(), None) is not None

    def temp_table_names(self) -> list[str]:
        return sorted(self._temp_tables)

    # -- execution -----------------------------------------------------------------

    def execute(self, sql: str):
        """Run one statement and return its :class:`Result`."""
        return self.database.execute(sql, session=self)

    def execute_script(self, sql: str) -> list:
        """Run a ';'-separated script, returning one Result per statement."""
        return self.database.execute_script(sql, session=self)

    def query(self, sql: str) -> list[tuple]:
        """Run a query and return its rows."""
        return self.execute(sql).rows

    # -- query history -----------------------------------------------------------

    def record_statement(
        self, node, result, wall_seconds: float,
        sim_seconds: float | None = None, sql: str | None = None,
        index: int | None = None,
    ) -> None:
        """Called by the database after every statement it runs for us.

        ``index`` is the statement's own database-wide number, captured
        under the statement lock — concurrent sessions must not re-read
        the shared counter here.
        """
        rowcount = result.rowcount
        if rowcount < 0 and result.is_query:
            rowcount = len(result.rows)
        self.history.append(
            StatementStats(
                index=index if index is not None else self.database.statement_count,
                statement=type(node).__name__,
                sql=sql,
                rowcount=rowcount,
                wall_seconds=wall_seconds,
                sim_seconds=sim_seconds,
            )
        )

    def query_history(self) -> list[StatementStats]:
        """The most recent statements (oldest first), with their stats."""
        return list(self.history)

    def close(self) -> None:
        self._temp_tables.clear()
        self.history.clear()
