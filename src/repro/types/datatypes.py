"""SQL data types supported by the engine.

The set covers ANSI SQL plus the dialect-specific types the paper lists in
section II.C.1: Oracle ``NUMBER``/``DATE``/``VARCHAR2``, Netezza/PostgreSQL
``BOOLEAN``/``INT2``/``INT4``/``INT8``/``FLOAT4``/``FLOAT8``/``BPCHAR``, and
DB2 ``DECFLOAT``/``GRAPHIC``.  Dialect names are resolved to these canonical
types by the SQL compiler (:mod:`repro.sql.dialects`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class TypeKind(enum.Enum):
    """Canonical kinds; dialect type names map onto these."""

    SMALLINT = "SMALLINT"
    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    DECIMAL = "DECIMAL"
    REAL = "REAL"
    DOUBLE = "DOUBLE"
    DECFLOAT = "DECFLOAT"
    VARCHAR = "VARCHAR"
    CHAR = "CHAR"
    GRAPHIC = "GRAPHIC"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"
    TIME = "TIME"
    TIMESTAMP = "TIMESTAMP"
    NULL = "NULL"  # the type of a bare NULL literal, coercible to anything


_INTEGER_KINDS = {TypeKind.SMALLINT, TypeKind.INTEGER, TypeKind.BIGINT}
_APPROX_KINDS = {TypeKind.REAL, TypeKind.DOUBLE, TypeKind.DECFLOAT}
_STRING_KINDS = {TypeKind.VARCHAR, TypeKind.CHAR, TypeKind.GRAPHIC}
_TEMPORAL_KINDS = {TypeKind.DATE, TypeKind.TIME, TypeKind.TIMESTAMP}

# numpy physical representation per kind (strings use object arrays).
_NUMPY_DTYPES = {
    TypeKind.SMALLINT: np.int64,
    TypeKind.INTEGER: np.int64,
    TypeKind.BIGINT: np.int64,
    TypeKind.DECIMAL: np.int64,  # scaled integer: value * 10**scale
    TypeKind.REAL: np.float64,
    TypeKind.DOUBLE: np.float64,
    TypeKind.DECFLOAT: np.float64,
    TypeKind.BOOLEAN: np.int64,  # 0 / 1
    TypeKind.DATE: np.int64,  # days since 1970-01-01
    TypeKind.TIME: np.int64,  # seconds since midnight
    TypeKind.TIMESTAMP: np.int64,  # microseconds since epoch
    TypeKind.VARCHAR: object,
    TypeKind.CHAR: object,
    TypeKind.GRAPHIC: object,
    TypeKind.NULL: object,
}


@dataclass(frozen=True)
class DataType:
    """A concrete SQL type: a kind plus its parameters.

    Attributes:
        kind: the canonical :class:`TypeKind`.
        length: declared length for character types (0 = unbounded).
        precision: total digits for DECIMAL.
        scale: fractional digits for DECIMAL.
    """

    kind: TypeKind
    length: int = 0
    precision: int = 0
    scale: int = 0

    @property
    def is_numeric(self) -> bool:
        return (
            self.kind in _INTEGER_KINDS
            or self.kind in _APPROX_KINDS
            or self.kind is TypeKind.DECIMAL
        )

    @property
    def is_integer(self) -> bool:
        return self.kind in _INTEGER_KINDS

    @property
    def is_approximate(self) -> bool:
        return self.kind in _APPROX_KINDS

    @property
    def is_string(self) -> bool:
        return self.kind in _STRING_KINDS

    @property
    def is_temporal(self) -> bool:
        return self.kind in _TEMPORAL_KINDS

    @property
    def numpy_dtype(self):
        """The numpy dtype used to hold this type's non-null values."""
        return _NUMPY_DTYPES[self.kind]

    def __str__(self) -> str:
        if self.kind is TypeKind.DECIMAL:
            return "DECIMAL(%d,%d)" % (self.precision, self.scale)
        if self.is_string and self.length:
            return "%s(%d)" % (self.kind.value, self.length)
        return self.kind.value


SMALLINT = DataType(TypeKind.SMALLINT)
INTEGER = DataType(TypeKind.INTEGER)
BIGINT = DataType(TypeKind.BIGINT)
REAL = DataType(TypeKind.REAL)
DOUBLE = DataType(TypeKind.DOUBLE)
DECFLOAT = DataType(TypeKind.DECFLOAT)
BOOLEAN = DataType(TypeKind.BOOLEAN)
DATE = DataType(TypeKind.DATE)
TIME = DataType(TypeKind.TIME)
TIMESTAMP = DataType(TypeKind.TIMESTAMP)
NULLTYPE = DataType(TypeKind.NULL)


def decimal_type(precision: int = 31, scale: int = 0) -> DataType:
    """Build a DECIMAL type (also Oracle ``NUMBER(p, s)``)."""
    if not 1 <= precision <= 31:
        raise ValueError("DECIMAL precision must be in [1, 31]")
    if not 0 <= scale <= precision:
        raise ValueError("DECIMAL scale must be in [0, precision]")
    return DataType(TypeKind.DECIMAL, precision=precision, scale=scale)


def varchar_type(length: int = 0) -> DataType:
    """Build a VARCHAR (also Oracle ``VARCHAR2``, PG ``TEXT``)."""
    return DataType(TypeKind.VARCHAR, length=length)


def char_type(length: int = 1) -> DataType:
    """Build a fixed-length CHAR (also ``BPCHAR`` as a cast target)."""
    return DataType(TypeKind.CHAR, length=length)


def graphic_type(length: int = 1) -> DataType:
    """Build a DB2 GRAPHIC (double-byte character) type."""
    return DataType(TypeKind.GRAPHIC, length=length)


_NUMERIC_RANK = {
    TypeKind.SMALLINT: 0,
    TypeKind.INTEGER: 1,
    TypeKind.BIGINT: 2,
    TypeKind.DECIMAL: 3,
    TypeKind.REAL: 4,
    TypeKind.DOUBLE: 5,
    TypeKind.DECFLOAT: 6,
}


def promote(left: DataType, right: DataType) -> DataType:
    """Return the result type for a binary operation over two types.

    Follows the usual SQL ladder: integers promote upward, any approximate
    operand makes the result DOUBLE, DECIMAL pairs take max precision/scale,
    strings unify to VARCHAR, and NULL coerces to the other operand.
    """
    if left.kind is TypeKind.NULL:
        return right
    if right.kind is TypeKind.NULL:
        return left
    if left.kind == right.kind and left.kind is not TypeKind.DECIMAL:
        if left.is_string:
            return varchar_type(max(left.length, right.length))
        return left
    if left.is_numeric and right.is_numeric:
        rank = max(_NUMERIC_RANK[left.kind], _NUMERIC_RANK[right.kind])
        if rank >= _NUMERIC_RANK[TypeKind.REAL]:
            kind = (
                TypeKind.DECFLOAT
                if TypeKind.DECFLOAT in (left.kind, right.kind)
                else TypeKind.DOUBLE
            )
            return DataType(kind)
        if TypeKind.DECIMAL in (left.kind, right.kind):
            lp, ls = _decimal_shape(left)
            rp, rs = _decimal_shape(right)
            scale = max(ls, rs)
            precision = min(31, max(lp - ls, rp - rs) + scale + 1)
            return decimal_type(precision, scale)
        for kind, value in _NUMERIC_RANK.items():
            if value == rank:
                return DataType(kind)
    if left.is_string and right.is_string:
        return varchar_type(max(left.length, right.length))
    if left.is_temporal and right.kind == left.kind:
        return left
    raise TypeError("no common type for %s and %s" % (left, right))


def _decimal_shape(dt: DataType) -> tuple[int, int]:
    """Return (precision, scale) treating integer kinds as scale-0 decimals."""
    if dt.kind is TypeKind.DECIMAL:
        return dt.precision, dt.scale
    widths = {TypeKind.SMALLINT: 5, TypeKind.INTEGER: 10, TypeKind.BIGINT: 19}
    return widths[dt.kind], 0


def comparable(left: DataType, right: DataType) -> bool:
    """True if values of the two types may be compared directly."""
    if TypeKind.NULL in (left.kind, right.kind):
        return True
    if left.is_numeric and right.is_numeric:
        return True
    if left.is_string and right.is_string:
        return True
    if left.kind is TypeKind.BOOLEAN and right.kind is TypeKind.BOOLEAN:
        return True
    return left.is_temporal and left.kind == right.kind
