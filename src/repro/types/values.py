"""Value-level operations: literals, casts, temporal encoding, formatting.

Columns store values physically as numpy arrays (see
:mod:`repro.types.datatypes` for the mapping); at API boundaries (literals,
INSERT values, result sets) values are plain Python objects:

* integer kinds -> ``int``
* DECIMAL       -> :class:`decimal.Decimal`
* approximate   -> ``float``
* strings       -> ``str``
* BOOLEAN       -> ``bool``
* DATE/TIME/TIMESTAMP -> :class:`datetime.date` / ``time`` / ``datetime``
* NULL          -> ``None``
"""

from __future__ import annotations

import datetime
import math
from decimal import Decimal, InvalidOperation

from repro.errors import ConversionError
from repro.types.datatypes import DataType, TypeKind

SqlDate = datetime.date
SqlTime = datetime.time
SqlTimestamp = datetime.datetime

_EPOCH_DATE = datetime.date(1970, 1, 1)
_EPOCH_TS = datetime.datetime(1970, 1, 1)

_INT_RANGES = {
    TypeKind.SMALLINT: (-(2**15), 2**15 - 1),
    TypeKind.INTEGER: (-(2**31), 2**31 - 1),
    TypeKind.BIGINT: (-(2**63), 2**63 - 1),
}


def date_to_days(value: datetime.date) -> int:
    """Encode a date as days since 1970-01-01 (column representation)."""
    return (value - _EPOCH_DATE).days


def days_to_date(days: int) -> datetime.date:
    """Decode the column representation of a DATE."""
    return _EPOCH_DATE + datetime.timedelta(days=int(days))


def time_to_seconds(value: datetime.time) -> int:
    """Encode a time of day as seconds since midnight."""
    return value.hour * 3600 + value.minute * 60 + value.second


def seconds_to_time(seconds: int) -> datetime.time:
    """Decode the column representation of a TIME."""
    seconds = int(seconds) % 86400
    return datetime.time(seconds // 3600, (seconds // 60) % 60, seconds % 60)


def timestamp_to_micros(value: datetime.datetime) -> int:
    """Encode a timestamp as microseconds since the epoch."""
    return int((value - _EPOCH_TS).total_seconds() * 1_000_000)


def micros_to_timestamp(micros: int) -> datetime.datetime:
    """Decode the column representation of a TIMESTAMP."""
    return _EPOCH_TS + datetime.timedelta(microseconds=int(micros))


def parse_date(text: str) -> datetime.date:
    """Parse an ISO ``YYYY-MM-DD`` (or ``YYYY/MM/DD``) date literal."""
    cleaned = text.strip().replace("/", "-")
    try:
        return datetime.date.fromisoformat(cleaned)
    except ValueError as exc:
        raise ConversionError("invalid DATE literal %r" % text) from exc


def parse_time(text: str) -> datetime.time:
    """Parse an ``HH:MM[:SS]`` time literal."""
    parts = text.strip().split(":")
    try:
        h, m = int(parts[0]), int(parts[1])
        s = int(parts[2]) if len(parts) > 2 else 0
        return datetime.time(h, m, s)
    except (ValueError, IndexError) as exc:
        raise ConversionError("invalid TIME literal %r" % text) from exc


def parse_timestamp(text: str) -> datetime.datetime:
    """Parse ``YYYY-MM-DD[ HH:MM:SS[.ffffff]]`` (DB2 also uses ``-`` and ``.``)."""
    cleaned = text.strip().replace("/", "-")
    # DB2 style: 2016-01-01-10.30.00.000000
    if cleaned.count("-") == 3:
        date_part, _, time_part = cleaned.rpartition("-")
        cleaned = date_part + " " + time_part.replace(".", ":", 2)
    for fmt in (
        "%Y-%m-%d %H:%M:%S.%f",
        "%Y-%m-%d %H:%M:%S",
        "%Y-%m-%d %H:%M",
        "%Y-%m-%d",
    ):
        try:
            return datetime.datetime.strptime(cleaned, fmt)
        except ValueError:
            continue
    raise ConversionError("invalid TIMESTAMP literal %r" % text)


def _to_decimal(value: object) -> Decimal:
    try:
        if isinstance(value, float):
            return Decimal(repr(value))
        return Decimal(str(value))
    except InvalidOperation as exc:
        raise ConversionError("cannot convert %r to DECIMAL" % (value,)) from exc


def _quantize(value: Decimal, scale: int) -> Decimal:
    return value.quantize(Decimal(1).scaleb(-scale))


def cast_value(value: object, target: DataType, *, oracle_strings: bool = False):
    """Cast a Python-level value to ``target``, returning the new value.

    Args:
        value: a boundary-representation value (or ``None``).
        target: destination type.
        oracle_strings: when True, empty strings become NULL (the VARCHAR2
            semantic from paper section II.C.2, enabled by the Oracle
            compatibility deployment image).

    Raises:
        ConversionError: when the value cannot represent the target type.
    """
    if value is None:
        return None
    kind = target.kind
    if kind is TypeKind.NULL:
        return value
    try:
        if kind in _INT_RANGES:
            result = _cast_integer(value, kind)
        elif kind is TypeKind.DECIMAL:
            result = _quantize(_to_decimal(_text_to_number(value)), target.scale)
        elif kind in (TypeKind.REAL, TypeKind.DOUBLE, TypeKind.DECFLOAT):
            result = float(_text_to_number(value))
            if math.isnan(result):
                raise ConversionError("NaN is not a valid SQL number")
        elif kind is TypeKind.BOOLEAN:
            result = _cast_boolean(value)
        elif kind in (TypeKind.VARCHAR, TypeKind.CHAR, TypeKind.GRAPHIC):
            result = _cast_string(value, target, oracle_strings)
        elif kind is TypeKind.DATE:
            result = _cast_date(value)
        elif kind is TypeKind.TIME:
            result = value if isinstance(value, datetime.time) else parse_time(str(value))
        elif kind is TypeKind.TIMESTAMP:
            result = _cast_timestamp(value)
        else:  # pragma: no cover - exhaustive over TypeKind
            raise ConversionError("unsupported cast target %s" % target)
    except (ValueError, TypeError) as exc:
        raise ConversionError("cannot cast %r to %s" % (value, target)) from exc
    return result


def _text_to_number(value: object) -> object:
    if isinstance(value, str):
        text = value.strip()
        if not text:
            raise ConversionError("cannot cast empty string to a number")
        return text
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (datetime.date, datetime.time, datetime.datetime)):
        raise ConversionError("cannot cast %r to a number" % (value,))
    return value


def _cast_integer(value: object, kind: TypeKind) -> int:
    if isinstance(value, str):
        value = value.strip()
        result = int(Decimal(value).to_integral_value(rounding="ROUND_HALF_UP"))
    elif isinstance(value, Decimal):
        result = int(value.to_integral_value(rounding="ROUND_HALF_UP"))
    elif isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise ConversionError("cannot cast %r to %s" % (value, kind.value))
        result = int(value)  # SQL truncates toward zero for float -> int
    elif isinstance(value, (bool, int)):
        result = int(value)
    elif isinstance(value, datetime.date):
        raise ConversionError("cannot cast a date to %s" % kind.value)
    else:
        raise ConversionError("cannot cast %r to %s" % (value, kind.value))
    low, high = _INT_RANGES[kind]
    if not low <= result <= high:
        raise ConversionError("value %d out of range for %s" % (result, kind.value))
    return result


def _cast_boolean(value: object) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float, Decimal)):
        return value != 0
    if isinstance(value, str):
        text = value.strip().lower()
        if text in ("t", "true", "yes", "on", "1"):
            return True
        if text in ("f", "false", "no", "off", "0"):
            return False
    raise ConversionError("cannot cast %r to BOOLEAN" % (value,))


def _cast_string(value: object, target: DataType, oracle_strings: bool):
    text = format_value(value) if not isinstance(value, str) else value
    if target.length and len(text) > target.length:
        if target.kind is TypeKind.VARCHAR and text.rstrip() == text[: target.length].rstrip():
            text = text[: target.length]
        elif target.kind in (TypeKind.CHAR, TypeKind.GRAPHIC):
            text = text[: target.length]
        else:
            raise ConversionError(
                "string of length %d too long for %s" % (len(text), target)
            )
    if target.kind in (TypeKind.CHAR, TypeKind.GRAPHIC) and target.length:
        text = text.ljust(target.length)
    if oracle_strings and text == "":
        return None
    return text


def _cast_date(value: object) -> datetime.date:
    if isinstance(value, datetime.datetime):
        return value.date()
    if isinstance(value, datetime.date):
        return value
    return parse_date(str(value))


def _cast_timestamp(value: object) -> datetime.datetime:
    if isinstance(value, datetime.datetime):
        return value
    if isinstance(value, datetime.date):
        return datetime.datetime(value.year, value.month, value.day)
    return parse_timestamp(str(value))


def format_value(value: object, dt: DataType | None = None) -> str:
    """Render a boundary value the way a CLP-style client would print it."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return "%.1f" % value
        return repr(value)
    if isinstance(value, Decimal):
        return str(value)
    if isinstance(value, datetime.datetime):
        return value.strftime("%Y-%m-%d %H:%M:%S")
    if isinstance(value, datetime.date):
        return value.isoformat()
    if isinstance(value, datetime.time):
        return value.strftime("%H:%M:%S")
    return str(value)
