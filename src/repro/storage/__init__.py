"""Storage layer: columnar tables, pages, the row-store baseline, and the
simulated clustered filesystem.

* :mod:`repro.storage.column` — physical/boundary value conversion and the
  runtime column vector.
* :mod:`repro.storage.page` — the page abstraction the buffer pool caches.
* :mod:`repro.storage.table` — column-organised tables (paper II.B.3):
  compressed regions with synopses, plus an uncompressed insert tail.
* :mod:`repro.storage.rowtable` / :mod:`repro.storage.btree` — the
  row-organised baseline with secondary B-tree indexes used for the paper's
  10-50x row-vs-column comparison.
* :mod:`repro.storage.filesystem` — the POSIX-like clustered filesystem all
  hosts share (mounted at a virtual ``/mnt/clusterfs``), which is what makes
  HA and elasticity pure shard reassociation.
"""

from repro.storage.btree import BTree
from repro.storage.column import ColumnVector, to_boundary, to_physical
from repro.storage.filesystem import ClusterFileSystem
from repro.storage.page import Page, PageId
from repro.storage.rowtable import RowTable
from repro.storage.table import ColumnTable, TableSchema

__all__ = [
    "BTree",
    "ClusterFileSystem",
    "ColumnTable",
    "ColumnVector",
    "Page",
    "PageId",
    "RowTable",
    "TableSchema",
    "to_boundary",
    "to_physical",
]
