"""Row-organised baseline table with secondary B-tree indexes.

This is the comparison system for the paper's claim (II.B.7) that
column-organised processing is "typically 10 to 50 times faster than the
same workloads run on row-organized tables with secondary indexing".  Rows
are stored as Python lists (physical values); point and small-range queries
may use B-tree indexes, everything else scans row-at-a-time — exactly the
access pattern profile of a classic row store.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SQLError
from repro.storage.btree import BTree
from repro.storage.column import to_physical_scalar
from repro.storage.table import TableSchema
from repro.types.datatypes import TypeKind


class RowTable:
    """A row-store table: list-of-rows plus optional secondary indexes."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: list[list] = []
        self._deleted: set[int] = set()
        self.indexes: dict[str, BTree] = {}

    # -- DML -----------------------------------------------------------------

    def insert_rows(self, rows) -> int:
        """Append boundary-value rows, maintaining any indexes."""
        count = 0
        for row in rows:
            if len(row) != len(self.schema):
                raise SQLError(
                    "row has %d values, table %s has %d columns"
                    % (len(row), self.schema.name, len(self.schema))
                )
            physical = [
                None if v is None else to_physical_scalar(v, dt)
                for (name, dt), v in zip(self.schema.columns, row)
            ]
            row_id = len(self._rows)
            self._rows.append(physical)
            for column, index in self.indexes.items():
                key = physical[self.schema.column_index(column)]
                if key is not None:
                    index.insert(key, row_id)
            count += 1
        return count

    def delete_ids(self, row_ids) -> int:
        """Tombstone rows by id, maintaining indexes."""
        deleted = 0
        for row_id in row_ids:
            if row_id in self._deleted or not 0 <= row_id < len(self._rows):
                continue
            self._deleted.add(row_id)
            for column, index in self.indexes.items():
                key = self._rows[row_id][self.schema.column_index(column)]
                if key is not None:
                    index.remove(key, row_id)
            deleted += 1
        return deleted

    def update_row(self, row_id: int, values: dict[str, object]) -> None:
        """In-place update (row stores update in place, unlike the column
        store's delete+insert)."""
        if row_id in self._deleted or not 0 <= row_id < len(self._rows):
            raise SQLError("no such row id %d" % row_id)
        row = self._rows[row_id]
        for name, value in values.items():
            idx = self.schema.column_index(name)
            dt = self.schema.columns[idx][1]
            new_physical = None if value is None else to_physical_scalar(value, dt)
            if name in self.indexes:
                old = row[idx]
                if old is not None:
                    self.indexes[name].remove(old, row_id)
                if new_physical is not None:
                    self.indexes[name].insert(new_physical, row_id)
            row[idx] = new_physical

    def truncate(self) -> None:
        self._rows = []
        self._deleted = set()
        for column in list(self.indexes):
            self.indexes[column] = BTree()

    # -- indexes -----------------------------------------------------------------

    def create_index(self, column: str) -> None:
        """Build a secondary B-tree index over one column."""
        if column in self.indexes:
            raise SQLError("index on %s already exists" % column)
        idx = self.schema.column_index(column)
        tree = BTree()
        for row_id, row in enumerate(self._rows):
            if row_id in self._deleted:
                continue
            if row[idx] is not None:
                tree.insert(row[idx], row_id)
        self.indexes[column] = tree

    # -- access paths ------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return len(self._rows) - len(self._deleted)

    def scan(self):
        """Yield (row_id, row) for live rows — the row-at-a-time path."""
        deleted = self._deleted
        for row_id, row in enumerate(self._rows):
            if row_id not in deleted:
                yield row_id, row

    def fetch(self, row_id: int) -> list:
        if row_id in self._deleted or not 0 <= row_id < len(self._rows):
            raise SQLError("no such row id %d" % row_id)
        return self._rows[row_id]

    def index_lookup(self, column: str, value) -> list[int]:
        """Exact-match row ids via the secondary index."""
        physical = to_physical_scalar(value, self.schema.column_type(column))
        return [r for r in self.indexes[column].search(physical) if r not in self._deleted]

    def index_range(self, column: str, lo=None, hi=None, **bounds) -> list[int]:
        """Range row ids via the secondary index."""
        dt = self.schema.column_type(column)
        lo_p = None if lo is None else to_physical_scalar(lo, dt)
        hi_p = None if hi is None else to_physical_scalar(hi, dt)
        found = self.indexes[column].range_search(lo_p, hi_p, **bounds)
        return [r for r in found if r not in self._deleted]

    def nbytes(self) -> int:
        """Approximate row-store footprint (row headers + values)."""
        total = 0
        for row_id, row in enumerate(self._rows):
            if row_id in self._deleted:
                continue
            total += 16  # row header / slot overhead
            for (name, dt), value in zip(self.schema.columns, row):
                if value is None:
                    total += 1
                elif isinstance(value, str):
                    total += len(value) + 2
                elif dt.kind is TypeKind.SMALLINT:
                    total += 2
                else:
                    total += 8
        return total
