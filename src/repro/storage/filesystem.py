"""Simulated POSIX-compliant clustered filesystem.

The paper (II.A, II.E) requires "a POSIX compliant clustered file system for
MPP" mounted at ``/mnt/clusterfs``: every host can open every shard's
fileset, which is what makes failover and elasticity pure *reassociation* of
shards rather than data movement.  This module models that contract: a
single shared namespace of files with size accounting, visible to all
simulated hosts that mount it.

Files store arbitrary Python payloads plus an explicit byte size, so the
deployment and cost models can reason about capacity without serialising.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FileSystemError

MOUNT_POINT = "/mnt/clusterfs"


@dataclass
class _FileEntry:
    payload: object
    nbytes: int
    #: fsync-style flag: durable entries survive a simulated host crash;
    #: non-durable writes live in the page cache and may be lost wholesale.
    durable: bool = False


class ClusterFileSystem:
    """An in-memory shared filesystem namespace with POSIX-like paths."""

    def __init__(self, mount_point: str = MOUNT_POINT, capacity_bytes: int | None = None):
        self.mount_point = mount_point.rstrip("/")
        self.capacity_bytes = capacity_bytes
        self._files: dict[str, _FileEntry] = {}
        self._dirs: set[str] = {self.mount_point}

    # -- path helpers -------------------------------------------------------

    def _normalise(self, path: str) -> str:
        if not path.startswith("/"):
            path = "%s/%s" % (self.mount_point, path)
        while "//" in path:
            path = path.replace("//", "/")
        path = path.rstrip("/")
        if not path.startswith(self.mount_point):
            raise FileSystemError(
                "path %r is outside the cluster mount %r" % (path, self.mount_point)
            )
        return path

    # -- directories --------------------------------------------------------

    def mkdir(self, path: str) -> None:
        """Create a directory (parents included, like mkdir -p)."""
        path = self._normalise(path)
        parts = path[len(self.mount_point):].strip("/").split("/")
        current = self.mount_point
        for part in parts:
            if not part:
                continue
            current = "%s/%s" % (current, part)
            self._dirs.add(current)

    def is_dir(self, path: str) -> bool:
        return self._normalise(path) in self._dirs

    def listdir(self, path: str) -> list[str]:
        """Immediate children (names, not full paths) of a directory."""
        path = self._normalise(path)
        if path not in self._dirs:
            raise FileSystemError("no such directory: %s" % path)
        prefix = path + "/"
        names = set()
        for candidate in list(self._files) + list(self._dirs):
            if candidate.startswith(prefix):
                names.add(candidate[len(prefix):].split("/")[0])
        return sorted(names)

    # -- files ---------------------------------------------------------------

    def write_file(
        self, path: str, payload: object, nbytes: int, durable: bool = False
    ) -> None:
        """Create or replace a file.

        ``durable=True`` is write-plus-fsync: the entry survives
        :meth:`crash_volatile`.  The torn-write contract durable callers
        (the WAL) rely on: a crash during a durable write may persist any
        *byte prefix* of the payload, but never interleaved or trailing
        garbage — which is why WAL records carry length+checksum framing.
        """
        path = self._normalise(path)
        if nbytes < 0:
            raise FileSystemError("file size cannot be negative")
        new_total = self.used_bytes() - self._size_of(path) + nbytes
        if self.capacity_bytes is not None and new_total > self.capacity_bytes:
            raise FileSystemError(
                "filesystem full: %d bytes needed, %d available"
                % (nbytes, self.capacity_bytes - self.used_bytes())
            )
        parent = path.rsplit("/", 1)[0]
        self.mkdir(parent)
        self._files[path] = _FileEntry(payload=payload, nbytes=nbytes, durable=durable)

    def fsync(self, path: str) -> None:
        """Mark an already written file durable (POSIX fsync)."""
        path = self._normalise(path)
        entry = self._files.get(path)
        if entry is None:
            raise FileSystemError("no such file: %s" % path)
        entry.durable = True

    def is_durable(self, path: str) -> bool:
        path = self._normalise(path)
        entry = self._files.get(path)
        if entry is None:
            raise FileSystemError("no such file: %s" % path)
        return entry.durable

    def crash_volatile(self) -> list[str]:
        """Simulate a host crash: every non-durable (never-fsynced) file is
        lost; durable files and directories survive.  Returns the lost
        paths (sorted), for the fault harness to assert against."""
        lost = sorted(p for p, e in self._files.items() if not e.durable)
        for path in lost:
            del self._files[path]
        return lost

    def read_file(self, path: str) -> object:
        path = self._normalise(path)
        entry = self._files.get(path)
        if entry is None:
            raise FileSystemError("no such file: %s" % path)
        return entry.payload

    def exists(self, path: str) -> bool:
        path = self._normalise(path)
        return path in self._files or path in self._dirs

    def delete(self, path: str) -> None:
        """Delete a file or an entire directory subtree."""
        path = self._normalise(path)
        if path in self._files:
            del self._files[path]
            return
        if path in self._dirs:
            prefix = path + "/"
            for f in [f for f in self._files if f.startswith(prefix)]:
                del self._files[f]
            for d in [d for d in self._dirs if d == path or d.startswith(prefix)]:
                self._dirs.discard(d)
            return
        raise FileSystemError("no such file or directory: %s" % path)

    def rename(self, src: str, dst: str) -> None:
        """Atomic POSIX ``rename(2)``: replace ``dst`` with ``src`` in one
        metadata operation.

        The atomicity contract the checkpoint store builds on: observers
        (and crashes) see either the old ``dst`` or the complete new one,
        never a mixture and never neither.  Unlike :meth:`move`, an
        existing destination is replaced, and the rename itself is always
        durable (it is a journal operation on the clustered FS).
        """
        src_n = self._normalise(src)
        dst_n = self._normalise(dst)
        if src_n not in self._files and src_n not in self._dirs:
            raise FileSystemError("no such file or directory: %s" % src_n)
        if dst_n in self._files or dst_n in self._dirs:
            self.delete(dst_n)
        self.move(src_n, dst_n)
        if dst_n in self._files:
            self._files[dst_n].durable = True

    def move(self, src: str, dst: str) -> None:
        """Rename a file or directory subtree (metadata-only, like GPFS)."""
        src = self._normalise(src)
        dst = self._normalise(dst)
        if src in self._files:
            self._files[dst] = self._files.pop(src)
            self.mkdir(dst.rsplit("/", 1)[0])
            return
        if src in self._dirs:
            prefix = src + "/"
            moves = [(f, dst + f[len(src):]) for f in self._files if f.startswith(prefix)]
            for old, new in moves:
                self._files[new] = self._files.pop(old)
            dir_moves = [
                (d, dst + d[len(src):])
                for d in self._dirs
                if d == src or d.startswith(prefix)
            ]
            for old, new in dir_moves:
                self._dirs.discard(old)
                self._dirs.add(new)
            self._dirs.add(dst)
            return
        raise FileSystemError("no such file or directory: %s" % src)

    # -- accounting -----------------------------------------------------------

    def _size_of(self, path: str) -> int:
        entry = self._files.get(path)
        return entry.nbytes if entry else 0

    def used_bytes(self) -> int:
        """Total bytes across all files."""
        return sum(e.nbytes for e in self._files.values())

    def file_count(self) -> int:
        return len(self._files)

    def tree_bytes(self, path: str) -> int:
        """Bytes used by a directory subtree (or a single file)."""
        path = self._normalise(path)
        if path in self._files:
            return self._files[path].nbytes
        prefix = path + "/"
        return sum(e.nbytes for p, e in self._files.items() if p.startswith(prefix))
