"""Column-organised tables: compressed regions plus an insert tail.

Layout (paper II.B.3-4): rows are appended to an uncompressed *tail*; when
the tail reaches ``region_rows`` (or on :meth:`ColumnTable.flush`) it is
sealed into a *region*, where every column is independently compressed
(:mod:`repro.compression.codec`) and covered by a data-skipping synopsis
every ~1K tuples (:mod:`repro.skipping`).  DELETE marks tombstones; UPDATE
is delete + re-insert, the usual strategy for analytic column stores.

The query engine scans region by region: it consults the synopsis first
(data skipping), evaluates predicates on compressed codes (operating on
compressed data), and only decodes surviving columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.codec import CompressedColumn, compress_column
from repro.errors import ConstraintViolationError, SQLError
from repro.skipping.synopsis import SYNOPSIS_STRIDE, Synopsis
from repro.storage.column import ColumnVector, to_physical, to_physical_scalar
from repro.types.datatypes import DataType, TypeKind

DEFAULT_REGION_ROWS = 65_536


@dataclass(frozen=True)
class TableSchema:
    """Ordered column names and types for one table."""

    name: str
    columns: tuple[tuple[str, DataType], ...]

    def __post_init__(self):
        names = [c for c, _ in self.columns]
        if len(set(names)) != len(names):
            raise SQLError("duplicate column name in table %s" % self.name)

    @property
    def column_names(self) -> list[str]:
        return [c for c, _ in self.columns]

    def column_index(self, name: str) -> int:
        for i, (c, _) in enumerate(self.columns):
            if c == name:
                return i
        raise KeyError("no column %r in table %s" % (name, self.name))

    def column_type(self, name: str) -> DataType:
        return self.columns[self.column_index(name)][1]

    def __len__(self) -> int:
        return len(self.columns)


@dataclass
class Region:
    """A sealed, immutable run of rows in compressed columnar form."""

    n_rows: int
    columns: dict[str, CompressedColumn]
    synopses: dict[str, Synopsis]
    deleted: np.ndarray | None = None
    raw_nbytes: int = 0
    column_raw_nbytes: dict[str, int] = field(default_factory=dict)

    def live_mask(self) -> np.ndarray | None:
        """Mask of non-deleted rows, or None when nothing is deleted."""
        if self.deleted is None or not self.deleted.any():
            return None
        return ~self.deleted

    def live_count(self) -> int:
        if self.deleted is None:
            return self.n_rows
        return self.n_rows - int(self.deleted.sum())

    def mark_deleted(self, mask: np.ndarray) -> int:
        """Tombstone rows where mask is True; returns newly deleted count."""
        if self.deleted is None:
            self.deleted = np.zeros(self.n_rows, dtype=bool)
        fresh = mask & ~self.deleted
        self.deleted |= mask
        return int(fresh.sum())

    def nbytes(self) -> int:
        return sum(col.nbytes() for col in self.columns.values())

    def synopsis_nbytes(self) -> int:
        return sum(s.nbytes() for s in self.synopses.values())


class ColumnTable:
    """A column-organised table with compressed regions and an insert tail."""

    def __init__(
        self,
        schema: TableSchema,
        region_rows: int = DEFAULT_REGION_ROWS,
        synopsis_stride: int = SYNOPSIS_STRIDE,
        unique_columns: tuple[str, ...] = (),
        not_null_columns: tuple[str, ...] = (),
    ):
        self.schema = schema
        self.region_rows = region_rows
        self.synopsis_stride = synopsis_stride
        self.regions: list[Region] = []
        self.unique_columns = tuple(unique_columns)
        self.not_null_columns = tuple(not_null_columns)
        self._tail: list[list] = [[] for _ in schema.columns]
        self._tail_rows = 0
        self._unique_seen: dict[str, set] = {c: set() for c in self.unique_columns}

    # -- inserts -------------------------------------------------------------

    def insert_rows(self, rows) -> int:
        """Append boundary-value rows (sequences matching the schema).

        Values are validated and converted to physical form per column.
        Returns the number of rows inserted.
        """
        count = 0
        names = self.schema.column_names
        for row in rows:
            if len(row) != len(self.schema):
                raise SQLError(
                    "row has %d values, table %s has %d columns"
                    % (len(row), self.schema.name, len(self.schema))
                )
            physical = []
            for (name, dt), value in zip(self.schema.columns, row):
                if value is None and name in self.not_null_columns:
                    raise ConstraintViolationError(
                        "column %s does not accept NULL" % name
                    )
                physical.append(
                    None if value is None else to_physical_scalar(value, dt)
                )
            for name in self.unique_columns:
                value = physical[names.index(name)]
                if value is not None:
                    if value in self._unique_seen[name]:
                        raise ConstraintViolationError(
                            "duplicate value %r for unique column %s" % (value, name)
                        )
                    self._unique_seen[name].add(value)
            for i, value in enumerate(physical):
                self._tail[i].append(value)
            self._tail_rows += 1
            count += 1
            if self._tail_rows >= self.region_rows:
                self._seal_tail()
        return count

    def flush(self) -> None:
        """Seal any buffered tail rows into a compressed region."""
        if self._tail_rows:
            self._seal_tail()

    def _seal_tail(self) -> None:
        columns: dict[str, CompressedColumn] = {}
        synopses: dict[str, Synopsis] = {}
        column_raw: dict[str, int] = {}
        raw_nbytes = 0
        for (name, dt), raw in zip(self.schema.columns, self._tail):
            nulls = np.fromiter((v is None for v in raw), dtype=bool, count=len(raw))
            dtype = dt.numpy_dtype
            filler = "" if dtype == object else 0
            cleaned = [filler if v is None else v for v in raw]
            if dtype == object:
                array = np.empty(len(raw), dtype=object)
                array[:] = cleaned
            else:
                array = np.array(cleaned, dtype=dtype)
            mask = nulls if nulls.any() else None
            columns[name] = compress_column(array, mask)
            synopses[name] = Synopsis.build(array, mask, stride=self.synopsis_stride)
            column_raw[name] = _raw_size(array, dt)
            raw_nbytes += column_raw[name]
        self.regions.append(
            Region(
                n_rows=self._tail_rows,
                columns=columns,
                synopses=synopses,
                raw_nbytes=raw_nbytes,
                column_raw_nbytes=column_raw,
            )
        )
        self._tail = [[] for _ in self.schema.columns]
        self._tail_rows = 0

    # -- deletes / truncation --------------------------------------------------

    def apply_deletes(self, global_mask: np.ndarray) -> int:
        """Tombstone rows selected by a mask over the logical scan order.

        The logical order is: region 0 rows, region 1 rows, ..., tail rows.
        Tail rows are physically removed; region rows are tombstoned.
        """
        expected = self.n_rows_physical()
        if global_mask.size != expected:
            raise SQLError(
                "delete mask covers %d rows, table has %d" % (global_mask.size, expected)
            )
        deleted = 0
        offset = 0
        for region in self.regions:
            chunk = global_mask[offset : offset + region.n_rows]
            if chunk.any():
                deleted += region.mark_deleted(chunk)
            offset += region.n_rows
        tail_mask = global_mask[offset:]
        if tail_mask.any():
            keep = ~tail_mask
            for i in range(len(self._tail)):
                self._tail[i] = [v for v, k in zip(self._tail[i], keep) if k]
            removed = int(tail_mask.sum())
            self._tail_rows -= removed
            deleted += removed
        if deleted and self.unique_columns:
            self._rebuild_unique_sets()
        return deleted

    def truncate(self) -> None:
        """Remove all rows, keeping the definition (TRUNCATE TABLE)."""
        self.regions = []
        self._tail = [[] for _ in self.schema.columns]
        self._tail_rows = 0
        self._unique_seen = {c: set() for c in self.unique_columns}

    def _rebuild_unique_sets(self) -> None:
        live_mask = self.live_mask()
        for name in self.unique_columns:
            vector = self.column_vector(name)
            keep = live_mask if vector.nulls is None else (live_mask & ~vector.nulls)
            self._unique_seen[name] = set(vector.values[keep].tolist())

    # -- scan surface -----------------------------------------------------------

    def n_rows_physical(self) -> int:
        """All rows including tombstoned ones (mask coordinate space)."""
        return sum(r.n_rows for r in self.regions) + self._tail_rows

    @property
    def n_rows(self) -> int:
        """Live (visible) rows."""
        return sum(r.live_count() for r in self.regions) + self._tail_rows

    @property
    def tail_rows(self) -> int:
        return self._tail_rows

    def tail_vector(self, name: str) -> ColumnVector:
        """The uncompressed tail of one column as a runtime vector."""
        idx = self.schema.column_index(name)
        dt = self.schema.columns[idx][1]
        raw = self._tail[idx]
        nulls = np.fromiter((v is None for v in raw), dtype=bool, count=len(raw))
        dtype = dt.numpy_dtype
        filler = "" if dtype == object else 0
        cleaned = [filler if v is None else v for v in raw]
        if dtype == object:
            array = np.empty(len(raw), dtype=object)
            array[:] = cleaned
        else:
            array = np.array(cleaned, dtype=dtype)
        return ColumnVector(dt, array, nulls if nulls.any() else None)

    def column_vector(self, name: str) -> ColumnVector:
        """Materialise one whole column (all live and tombstoned rows).

        Tombstones are *not* removed here; callers that need only live rows
        combine this with :meth:`live_mask`.
        """
        dt = self.schema.column_type(name)
        parts: list[ColumnVector] = []
        for region in self.regions:
            values, nulls = region.columns[name].decode()
            parts.append(ColumnVector(dt, values, nulls))
        parts.append(self.tail_vector(name))
        return ColumnVector.concat(parts)

    def live_mask(self) -> np.ndarray:
        """Mask of live rows over the logical scan order."""
        parts = []
        for region in self.regions:
            if region.deleted is None:
                parts.append(np.ones(region.n_rows, dtype=bool))
            else:
                parts.append(~region.deleted)
        parts.append(np.ones(self._tail_rows, dtype=bool))
        if not parts:
            return np.zeros(0, dtype=bool)
        return np.concatenate(parts)

    # -- size accounting -----------------------------------------------------------

    def compressed_nbytes(self) -> int:
        """Bytes of compressed regions plus synopses."""
        return sum(r.nbytes() + r.synopsis_nbytes() for r in self.regions)

    def raw_nbytes(self) -> int:
        """Uncompressed footprint of the sealed regions."""
        return sum(r.raw_nbytes for r in self.regions)

    def compression_ratio(self) -> float:
        """raw / compressed for the sealed part of the table."""
        compressed = self.compressed_nbytes()
        if compressed == 0:
            return 1.0
        return self.raw_nbytes() / compressed


def _raw_size(array: np.ndarray, dt: DataType) -> int:
    if array.dtype == object:
        return sum(len(str(v)) for v in array.tolist()) + array.size
    if dt.kind in (TypeKind.SMALLINT,):
        return 2 * array.size
    if dt.kind in (TypeKind.INTEGER, TypeKind.DATE, TypeKind.TIME, TypeKind.REAL):
        return 4 * array.size
    if dt.kind is TypeKind.BOOLEAN:
        return array.size
    return 8 * array.size
