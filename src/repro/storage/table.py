"""Column-organised tables: compressed regions plus an insert tail.

Layout (paper II.B.3-4): rows are appended to an uncompressed *tail*; when
the tail reaches ``region_rows`` (or on :meth:`ColumnTable.flush`) it is
sealed into a *region*, where every column is independently compressed
(:mod:`repro.compression.codec`) and covered by a data-skipping synopsis
every ~1K tuples (:mod:`repro.skipping`).  DELETE marks tombstones; UPDATE
is delete + re-insert, the usual strategy for analytic column stores.

Every row carries MVCC version stamps: ``xmin`` is the txid that created
it, ``xmax`` the txid that deleted it (0 = live).  Stamps live *outside*
the compressed columns — tombstoning never rewrites a region — and both
deletes against the tail tombstone rather than physically removing rows,
so the logical scan order (region 0 rows, region 1 rows, ..., tail rows)
is append-only and a snapshot captured at statement start stays valid
while concurrent writers append.  Visibility under a snapshot is decided
by :meth:`Region.visible_mask` / :meth:`ColumnTable.capture`.

The query engine scans region by region: it consults the synopsis first
(data skipping), evaluates predicates on compressed codes (operating on
compressed data), and only decodes surviving columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.codec import CompressedColumn, compress_column
from repro.errors import ConstraintViolationError, SQLError, TransactionConflictError
from repro.mvcc.txn import ANCIENT_TXID, Snapshot
from repro.skipping.synopsis import SYNOPSIS_STRIDE, Synopsis
from repro.storage.column import ColumnVector, to_physical, to_physical_scalar
from repro.types.datatypes import DataType, TypeKind
from repro.verify import sanitizer

DEFAULT_REGION_ROWS = 65_536


@dataclass(frozen=True)
class TableSchema:
    """Ordered column names and types for one table."""

    name: str
    columns: tuple[tuple[str, DataType], ...]

    def __post_init__(self):
        names = [c for c, _ in self.columns]
        if len(set(names)) != len(names):
            raise SQLError("duplicate column name in table %s" % self.name)

    @property
    def column_names(self) -> list[str]:
        return [c for c, _ in self.columns]

    def column_index(self, name: str) -> int:
        for i, (c, _) in enumerate(self.columns):
            if c == name:
                return i
        raise KeyError("no column %r in table %s" % (name, self.name))

    def column_type(self, name: str) -> DataType:
        return self.columns[self.column_index(name)][1]

    def __len__(self) -> int:
        return len(self.columns)


@dataclass
class Region:
    """A sealed, immutable run of rows in compressed columnar form.

    ``xmin``/``xmax`` are int64 per-row creator/deleter txid stamps; None
    means "all zero" (created ancient / nothing deleted).  ``xmin_hi`` and
    ``xmax_hi`` cache the largest stamp ever written so the common case —
    every stamp committed before the snapshot's low-water mark — skips the
    vectorised visibility test entirely.  The caches only ever overstate
    (rollback lowers stamps without lowering the cache), which costs the
    fast path, never correctness.
    """

    n_rows: int
    columns: dict[str, CompressedColumn]
    synopses: dict[str, Synopsis]
    xmin: np.ndarray | None = None
    xmax: np.ndarray | None = None
    xmin_hi: int = 0
    xmax_hi: int = 0
    raw_nbytes: int = 0
    column_raw_nbytes: dict[str, int] = field(default_factory=dict)

    def live_mask(self) -> np.ndarray | None:
        """Mask of non-deleted rows, or None when nothing is deleted."""
        if self.xmax is None or not self.xmax.any():
            return None
        return self.xmax == 0

    def live_count(self) -> int:
        if self.xmax is None:
            return self.n_rows
        return int((self.xmax == 0).sum())

    def visible_mask(self, snapshot: Snapshot | None) -> np.ndarray | None:
        """Rows visible under *snapshot* (None mask = everything visible).

        With no snapshot this degrades to :meth:`live_mask` — the legacy
        latest-state read used by core-API callers outside a transaction.
        """
        if snapshot is None:
            return self.live_mask()
        mask: np.ndarray | None = None
        if self.xmin is not None and self.xmin_hi >= snapshot.lowater:
            mask = snapshot.sees_vec(self.xmin)
        if self.xmax is not None:
            stamped = self.xmax != 0
            if stamped.any():
                if self.xmax_hi < snapshot.lowater:
                    dead = stamped  # every deleter committed long ago
                else:
                    dead = stamped & snapshot.sees_vec(self.xmax)
                mask = ~dead if mask is None else mask & ~dead
        if mask is not None and mask.all():
            return None
        return mask

    def mark_deleted(self, mask: np.ndarray, txid: int = ANCIENT_TXID) -> int:
        """Stamp rows where mask is True; returns newly deleted count.

        With an MVCC *txid*, stamping a row already stamped by another
        transaction raises :class:`TransactionConflictError` — ``xmax``
        doubles as a no-wait write lock (first-committer-wins).  With the
        default ancient txid (legacy/recovery callers) re-deletes are
        silently idempotent, matching the historical tombstone semantics.
        """
        if self.xmax is None:
            self.xmax = np.zeros(self.n_rows, dtype=np.int64)
        fresh = mask & (self.xmax == 0)
        if txid != ANCIENT_TXID:
            foreign = mask & (self.xmax != 0) & (self.xmax != txid)
            if foreign.any():
                raise TransactionConflictError(
                    "row version already deleted by txn %d"
                    % int(self.xmax[foreign][0])
                )
        self.xmax[fresh] = txid
        if txid > self.xmax_hi:
            self.xmax_hi = txid
        return int(fresh.sum())

    def nbytes(self) -> int:
        return sum(col.nbytes() for col in self.columns.values())

    def synopsis_nbytes(self) -> int:
        return sum(s.nbytes() for s in self.synopses.values())


@dataclass(frozen=True)
class TableCapture:
    """A consistent snapshot view of one table, safe to scan lock-free.

    ``regions`` is the frozen region list at capture time; ``tail`` maps
    the requested columns to uncompressed vectors of the captured tail
    prefix; ``tail_mask`` filters the tail to visible rows (None = all).
    Concurrent appends and seals after the capture are simply not part of
    the view — exactly snapshot semantics.
    """

    regions: tuple[Region, ...]
    tail: dict[str, ColumnVector]
    tail_mask: np.ndarray | None
    tail_rows: int


class ColumnTable:
    """A column-organised table with compressed regions and an insert tail."""

    def __init__(
        self,
        schema: TableSchema,
        region_rows: int = DEFAULT_REGION_ROWS,
        synopsis_stride: int = SYNOPSIS_STRIDE,
        unique_columns: tuple[str, ...] = (),
        not_null_columns: tuple[str, ...] = (),
    ):
        self.schema = schema
        self.region_rows = region_rows
        self.synopsis_stride = synopsis_stride
        self.regions: list[Region] = []
        self.unique_columns = tuple(unique_columns)
        self.not_null_columns = tuple(not_null_columns)
        self._tail: list[list] = [[] for _ in schema.columns]
        self._tail_rows = 0
        self._tail_xmin: list[int] = []
        self._tail_xmax: list[int] = []
        self._unique_seen: dict[str, set] = {c: set() for c in self.unique_columns}
        # Guards the structural swap in _seal_tail/truncate against
        # concurrent capture(); appends need no lock because _tail_rows is
        # bumped only after all per-column appends land.
        self._capture_lock = sanitizer.make_lock(
            "table:%s:capture" % schema.name, reentrant=False
        )

    # ColumnTable instances are pickled by process-pool scan closures and
    # durability checkpoints; locks are not picklable, so drop and rebuild.
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_capture_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._capture_lock = sanitizer.make_lock(
            "table:%s:capture" % self.schema.name, reentrant=False
        )

    # -- inserts -------------------------------------------------------------

    def insert_rows(self, rows, txid: int = 0) -> int:
        """Append boundary-value rows (sequences matching the schema).

        Values are validated and converted to physical form per column.
        Rows are stamped ``xmin = txid`` (0 = ancient: visible to every
        snapshot, the pre-MVCC behaviour).  Returns the number of rows
        inserted.
        """
        count = 0
        names = self.schema.column_names
        for row in rows:
            if len(row) != len(self.schema):
                raise SQLError(
                    "row has %d values, table %s has %d columns"
                    % (len(row), self.schema.name, len(self.schema))
                )
            physical = []
            for (name, dt), value in zip(self.schema.columns, row):
                if value is None and name in self.not_null_columns:
                    raise ConstraintViolationError(
                        "column %s does not accept NULL" % name
                    )
                physical.append(
                    None if value is None else to_physical_scalar(value, dt)
                )
            for name in self.unique_columns:
                value = physical[names.index(name)]
                if value is not None:
                    if value in self._unique_seen[name]:
                        raise ConstraintViolationError(
                            "duplicate value %r for unique column %s" % (value, name)
                        )
                    self._unique_seen[name].add(value)
            for i, value in enumerate(physical):
                self._tail[i].append(value)
            self._tail_xmin.append(txid)
            self._tail_xmax.append(0)
            self._tail_rows += 1
            count += 1
            if self._tail_rows >= self.region_rows:
                self._seal_tail()
        return count

    def flush(self) -> None:
        """Seal any buffered tail rows into a compressed region."""
        if self._tail_rows:
            self._seal_tail()

    def _seal_tail(self) -> None:
        columns: dict[str, CompressedColumn] = {}
        synopses: dict[str, Synopsis] = {}
        column_raw: dict[str, int] = {}
        raw_nbytes = 0
        for (name, dt), raw in zip(self.schema.columns, self._tail):
            nulls = np.fromiter((v is None for v in raw), dtype=bool, count=len(raw))
            dtype = dt.numpy_dtype
            filler = "" if dtype == object else 0
            cleaned = [filler if v is None else v for v in raw]
            if dtype == object:
                array = np.empty(len(raw), dtype=object)
                array[:] = cleaned
            else:
                array = np.array(cleaned, dtype=dtype)
            mask = nulls if nulls.any() else None
            columns[name] = compress_column(array, mask)
            synopses[name] = Synopsis.build(array, mask, stride=self.synopsis_stride)
            column_raw[name] = _raw_size(array, dt)
            raw_nbytes += column_raw[name]
        xmin = _stamp_array(self._tail_xmin, self._tail_rows)
        xmax = _stamp_array(self._tail_xmax, self._tail_rows)
        region = Region(
            n_rows=self._tail_rows,
            columns=columns,
            synopses=synopses,
            xmin=xmin,
            xmax=xmax,
            xmin_hi=int(xmin.max()) if xmin is not None else 0,
            xmax_hi=int(xmax.max()) if xmax is not None else 0,
            raw_nbytes=raw_nbytes,
            column_raw_nbytes=column_raw,
        )
        with self._capture_lock:
            self.regions.append(region)
            self._tail = [[] for _ in self.schema.columns]
            self._tail_rows = 0
            self._tail_xmin = []
            self._tail_xmax = []

    # -- deletes / truncation --------------------------------------------------

    def apply_deletes(self, global_mask: np.ndarray, txid: int = ANCIENT_TXID) -> int:
        """Tombstone rows selected by a mask over the logical scan order.

        The logical order is: region 0 rows, region 1 rows, ..., tail rows.
        Both region and tail rows are tombstoned (stamped ``xmax = txid``)
        — never physically removed — so the coordinate space is stable for
        WAL replay and for snapshots captured before the delete.  With an
        MVCC txid, hitting a row stamped by a different transaction raises
        :class:`TransactionConflictError` (first-committer-wins).
        """
        expected = self.n_rows_physical()
        if global_mask.size != expected:
            raise SQLError(
                "delete mask covers %d rows, table has %d" % (global_mask.size, expected)
            )
        deleted = 0
        offset = 0
        for region in self.regions:
            chunk = global_mask[offset : offset + region.n_rows]
            if chunk.any():
                deleted += region.mark_deleted(chunk, txid)
            offset += region.n_rows
        tail_mask = global_mask[offset:]
        if tail_mask.any():
            for i in np.flatnonzero(tail_mask):
                current = self._tail_xmax[i]
                if current == 0:
                    self._tail_xmax[i] = txid
                    deleted += 1
                elif txid != ANCIENT_TXID and current != txid:
                    raise TransactionConflictError(
                        "row version already deleted by txn %d" % current
                    )
        if deleted and self.unique_columns:
            self._rebuild_unique_sets()
        return deleted

    def rollback_txn(self, txid: int) -> None:
        """Revert every stamp *txid* left: undo its deletes, kill its inserts.

        Deletes revert to live (``xmax = 0``); inserted versions become
        permanently invisible (``xmax = ANCIENT_TXID``) rather than being
        physically removed, keeping the coordinate space stable.  A row
        both inserted and deleted by the txn ends up dead.
        """
        for region in self.regions:
            if region.xmax is not None:
                region.xmax[region.xmax == txid] = 0
            if region.xmin is not None:
                aborted = region.xmin == txid
                if aborted.any():
                    if region.xmax is None:
                        region.xmax = np.zeros(region.n_rows, dtype=np.int64)
                    region.xmax[aborted] = ANCIENT_TXID
                    if ANCIENT_TXID > region.xmax_hi:
                        region.xmax_hi = ANCIENT_TXID
        for i in range(self._tail_rows):
            if self._tail_xmax[i] == txid:
                self._tail_xmax[i] = 0
            if self._tail_xmin[i] == txid:
                self._tail_xmax[i] = ANCIENT_TXID
        if self.unique_columns:
            self._rebuild_unique_sets()

    def truncate(self) -> None:
        """Remove all rows, keeping the definition (TRUNCATE TABLE)."""
        with self._capture_lock:
            self.regions = []
            self._tail = [[] for _ in self.schema.columns]
            self._tail_rows = 0
            self._tail_xmin = []
            self._tail_xmax = []
        self._unique_seen = {c: set() for c in self.unique_columns}

    def _rebuild_unique_sets(self) -> None:
        live_mask = self.live_mask()
        for name in self.unique_columns:
            vector = self.column_vector(name)
            keep = live_mask if vector.nulls is None else (live_mask & ~vector.nulls)
            self._unique_seen[name] = set(vector.values[keep].tolist())

    # -- scan surface -----------------------------------------------------------

    def n_rows_physical(self) -> int:
        """All rows including tombstoned ones (mask coordinate space)."""
        return sum(r.n_rows for r in self.regions) + self._tail_rows

    @property
    def n_rows(self) -> int:
        """Live (visible) rows."""
        tail_live = self._tail_rows - sum(1 for x in self._tail_xmax if x != 0)
        return sum(r.live_count() for r in self.regions) + tail_live

    @property
    def tail_rows(self) -> int:
        return self._tail_rows

    def capture(self, snapshot: Snapshot | None = None, columns=None) -> TableCapture:
        """Freeze a consistent view for one scan: regions + tail prefix.

        Takes the capture lock only for the structural copy (region list
        tuple, tail slices) — never while compressing or scanning — so
        readers and writers block each other for microseconds at most.
        *columns* limits which tail vectors are materialised.
        """
        with self._capture_lock:
            regions = tuple(self.regions)
            n = self._tail_rows
            raw_tail = [raw[:n] for raw in self._tail]
            xmin = _stamp_array(self._tail_xmin, n)
            xmax = _stamp_array(self._tail_xmax, n)
        names = list(columns) if columns is not None else self.schema.column_names
        tail = {
            name: _vector_from_raw(
                raw_tail[self.schema.column_index(name)],
                self.schema.column_type(name),
            )
            for name in names
        }
        tail_mask = _tail_visible(xmin, xmax, n, snapshot)
        return TableCapture(regions=regions, tail=tail, tail_mask=tail_mask, tail_rows=n)

    def tail_vector(self, name: str) -> ColumnVector:
        """The uncompressed tail of one column as a runtime vector."""
        idx = self.schema.column_index(name)
        dt = self.schema.columns[idx][1]
        return _vector_from_raw(self._tail[idx], dt)

    def column_vector(self, name: str) -> ColumnVector:
        """Materialise one whole column (all live and tombstoned rows).

        Tombstones are *not* removed here; callers that need only live rows
        combine this with :meth:`live_mask`.
        """
        dt = self.schema.column_type(name)
        parts: list[ColumnVector] = []
        for region in self.regions:
            values, nulls = region.columns[name].decode()
            parts.append(ColumnVector(dt, values, nulls))
        parts.append(self.tail_vector(name))
        return ColumnVector.concat(parts)

    def visible_mask(self, snapshot: Snapshot | None) -> np.ndarray:
        """Mask of rows visible under *snapshot* over the logical scan order.

        ``snapshot=None`` degrades to :meth:`live_mask` (latest state).
        Used by the UPDATE/DELETE match path so a write transaction only
        targets versions its own snapshot can see.
        """
        if snapshot is None:
            return self.live_mask()
        parts = []
        for region in self.regions:
            mask = region.visible_mask(snapshot)
            parts.append(np.ones(region.n_rows, dtype=bool) if mask is None else mask)
        n = self._tail_rows
        tail = _tail_visible(
            _stamp_array(self._tail_xmin, n), _stamp_array(self._tail_xmax, n), n, snapshot
        )
        parts.append(np.ones(n, dtype=bool) if tail is None else tail)
        if not parts:
            return np.zeros(0, dtype=bool)
        return np.concatenate(parts)

    def live_mask(self) -> np.ndarray:
        """Mask of live rows over the logical scan order."""
        parts = []
        for region in self.regions:
            if region.xmax is None:
                parts.append(np.ones(region.n_rows, dtype=bool))
            else:
                parts.append(region.xmax == 0)
        parts.append(
            np.fromiter(
                (x == 0 for x in self._tail_xmax), dtype=bool, count=self._tail_rows
            )
        )
        if not parts:
            return np.zeros(0, dtype=bool)
        return np.concatenate(parts)

    # -- size accounting -----------------------------------------------------------

    def compressed_nbytes(self) -> int:
        """Bytes of compressed regions plus synopses."""
        return sum(r.nbytes() + r.synopsis_nbytes() for r in self.regions)

    def raw_nbytes(self) -> int:
        """Uncompressed footprint of the sealed regions."""
        return sum(r.raw_nbytes for r in self.regions)

    def compression_ratio(self) -> float:
        """raw / compressed for the sealed part of the table."""
        compressed = self.compressed_nbytes()
        if compressed == 0:
            return 1.0
        return self.raw_nbytes() / compressed


def _stamp_array(stamps: list[int], n: int) -> np.ndarray | None:
    """Version stamps as int64, or None when all-zero (the common case).

    Tolerates stamp lists shorter than *n*: benchmarks poke ``_tail``
    directly for bulk setup, leaving the version lists empty — those rows
    are ancient (stamp 0).
    """
    if not any(stamps[:n]):
        return None
    out = np.zeros(n, dtype=np.int64)
    out[: len(stamps)] = stamps[:n]
    return out


def _tail_visible(
    xmin: np.ndarray | None, xmax: np.ndarray | None, n: int, snapshot: Snapshot | None
) -> np.ndarray | None:
    if snapshot is None:
        return None if xmax is None else xmax == 0
    mask: np.ndarray | None = None
    if xmin is not None:
        mask = snapshot.sees_vec(xmin)
    if xmax is not None:
        dead = (xmax != 0) & snapshot.sees_vec(xmax)
        mask = ~dead if mask is None else mask & ~dead
    if mask is not None and mask.all():
        return None
    return mask


def _vector_from_raw(raw: list, dt: DataType) -> ColumnVector:
    nulls = np.fromiter((v is None for v in raw), dtype=bool, count=len(raw))
    dtype = dt.numpy_dtype
    filler = "" if dtype == object else 0
    cleaned = [filler if v is None else v for v in raw]
    if dtype == object:
        array = np.empty(len(raw), dtype=object)
        array[:] = cleaned
    else:
        array = np.array(cleaned, dtype=dtype)
    return ColumnVector(dt, array, nulls if nulls.any() else None)


def _raw_size(array: np.ndarray, dt: DataType) -> int:
    if array.dtype == object:
        return sum(len(str(v)) for v in array.tolist()) + array.size
    if dt.kind in (TypeKind.SMALLINT,):
        return 2 * array.size
    if dt.kind in (TypeKind.INTEGER, TypeKind.DATE, TypeKind.TIME, TypeKind.REAL):
        return 4 * array.size
    if dt.kind in (TypeKind.BOOLEAN,):
        return array.size
    return 8 * array.size
