"""Pages: the unit of disk I/O and buffer-pool caching.

A page holds one column's compressed codes for one extent of rows (paper
II.B.3: "within any storage page only values of a single table column are
represented").  The buffer pool (:mod:`repro.bufferpool`) caches pages; the
cost model charges disk reads per page miss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.codec import CompressedColumn


@dataclass(frozen=True)
class PageId:
    """Stable identity of a page: (table, column, extent ordinal)."""

    table: str
    column: str
    extent: int

    def __str__(self) -> str:
        return "%s.%s#%d" % (self.table, self.column, self.extent)


@dataclass
class Page:
    """One column extent in compressed form."""

    page_id: PageId
    data: CompressedColumn

    @property
    def n_rows(self) -> int:
        return self.data.n

    def nbytes(self) -> int:
        return self.data.nbytes()
