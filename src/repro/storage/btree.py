"""A B-tree for the row-store baseline's secondary indexes.

The paper's 10-50x claim (II.B.7) compares column-organised processing
against "row-organized tables with secondary indexing"; this B-tree is that
secondary index.  Keys map to lists of row ids (duplicates allowed).
"""

from __future__ import annotations

import bisect

DEFAULT_ORDER = 64


class _Node:
    __slots__ = ("keys", "children", "values", "is_leaf", "next_leaf")

    def __init__(self, is_leaf: bool):
        self.keys: list = []
        self.children: list[_Node] = []
        self.values: list[list[int]] = []  # leaf only: row-id lists per key
        self.is_leaf = is_leaf
        self.next_leaf: _Node | None = None


class BTree:
    """A B+-tree mapping keys to lists of row ids."""

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 4:
            raise ValueError("B-tree order must be at least 4")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._n_entries = 0
        self.height = 1

    def __len__(self) -> int:
        return self._n_entries

    # -- insert ---------------------------------------------------------------

    def insert(self, key, row_id: int) -> None:
        """Add (key, row_id); duplicate keys accumulate row ids."""
        root = self._root
        if len(root.keys) >= self.order:
            new_root = _Node(is_leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            self.height += 1
        self._insert_nonfull(self._root, key, row_id)
        self._n_entries += 1

    def _split_child(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        mid = len(child.keys) // 2
        sibling = _Node(is_leaf=child.is_leaf)
        if child.is_leaf:
            sibling.keys = child.keys[mid:]
            sibling.values = child.values[mid:]
            child.keys = child.keys[:mid]
            child.values = child.values[:mid]
            sibling.next_leaf = child.next_leaf
            child.next_leaf = sibling
            separator = sibling.keys[0]
        else:
            separator = child.keys[mid]
            sibling.keys = child.keys[mid + 1 :]
            sibling.children = child.children[mid + 1 :]
            child.keys = child.keys[:mid]
            child.children = child.children[: mid + 1]
        parent.keys.insert(index, separator)
        parent.children.insert(index + 1, sibling)

    def _insert_nonfull(self, node: _Node, key, row_id: int) -> None:
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            child = node.children[index]
            if len(child.keys) >= self.order:
                self._split_child(node, index)
                if key >= node.keys[index]:
                    index += 1
                child = node.children[index]
            node = child
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            node.values[index].append(row_id)
        else:
            node.keys.insert(index, key)
            node.values.insert(index, [row_id])

    # -- lookup ----------------------------------------------------------------

    def _find_leaf(self, key) -> _Node:
        node = self._root
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def search(self, key) -> list[int]:
        """Row ids for an exact key (empty list when absent)."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def range_search(
        self,
        lo=None,
        hi=None,
        *,
        lo_open: bool = False,
        hi_open: bool = False,
    ) -> list[int]:
        """Row ids for keys in the interval; None bounds are unbounded."""
        out: list[int] = []
        if lo is None:
            leaf = self._leftmost_leaf()
            index = 0
        else:
            leaf = self._find_leaf(lo)
            if lo_open:
                index = bisect.bisect_right(leaf.keys, lo)
            else:
                index = bisect.bisect_left(leaf.keys, lo)
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if hi is not None:
                    if hi_open and key >= hi:
                        return out
                    if not hi_open and key > hi:
                        return out
                out.extend(leaf.values[index])
                index += 1
            leaf = leaf.next_leaf
            index = 0
        return out

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def remove(self, key, row_id: int) -> bool:
        """Remove one (key, row_id) pair; returns True when found.

        Underflow is tolerated (nodes may shrink below half-full); for an
        analytic workload index this keeps the structure simple while
        remaining correct.
        """
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        ids = leaf.values[index]
        if row_id not in ids:
            return False
        ids.remove(row_id)
        if not ids:
            leaf.keys.pop(index)
            leaf.values.pop(index)
        self._n_entries -= 1
        return True

    def keys(self) -> list:
        """All keys in ascending order (testing aid)."""
        out = []
        leaf = self._leftmost_leaf()
        while leaf is not None:
            out.extend(leaf.keys)
            leaf = leaf.next_leaf
        return out
