"""Physical column representation and boundary/physical conversion.

Columns hold values physically as numpy arrays (int64 for exact numerics,
temporals, and booleans; float64 for approximate numerics; object for
strings).  The functions here convert between that physical form and the
boundary (Python) form defined in :mod:`repro.types.values`.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from decimal import Decimal

import numpy as np

from repro.errors import ConversionError
from repro.types.datatypes import DataType, TypeKind
from repro.types.values import (
    cast_value,
    date_to_days,
    days_to_date,
    micros_to_timestamp,
    seconds_to_time,
    time_to_seconds,
    timestamp_to_micros,
)


def physical_dtype(dt: DataType):
    """numpy dtype of the physical array for a SQL type."""
    return dt.numpy_dtype


def to_physical_scalar(value, dt: DataType):
    """Convert one boundary value to its physical form (None stays None)."""
    if value is None:
        return None
    kind = dt.kind
    if kind is TypeKind.DECIMAL:
        quantized = cast_value(value, dt)
        return int(quantized.scaleb(dt.scale))
    if kind is TypeKind.DATE:
        return date_to_days(cast_value(value, dt))
    if kind is TypeKind.TIME:
        return time_to_seconds(cast_value(value, dt))
    if kind is TypeKind.TIMESTAMP:
        return timestamp_to_micros(cast_value(value, dt))
    if kind is TypeKind.BOOLEAN:
        return int(cast_value(value, dt))
    if dt.is_string:
        return cast_value(value, dt)
    if dt.is_integer:
        return cast_value(value, dt)
    if dt.is_approximate:
        return cast_value(value, dt)
    raise ConversionError("cannot store values of type %s" % dt)


def to_boundary_scalar(value, dt: DataType):
    """Convert one physical value back to its boundary form."""
    if value is None:
        return None
    kind = dt.kind
    if kind is TypeKind.DECIMAL:
        return Decimal(int(value)).scaleb(-dt.scale)
    if kind is TypeKind.DATE:
        return days_to_date(int(value))
    if kind is TypeKind.TIME:
        return seconds_to_time(int(value))
    if kind is TypeKind.TIMESTAMP:
        return micros_to_timestamp(int(value))
    if kind is TypeKind.BOOLEAN:
        return bool(value)
    if dt.is_integer:
        return int(value)
    if dt.is_approximate:
        return float(value)
    return value


def to_physical(values, dt: DataType) -> tuple[np.ndarray, np.ndarray | None]:
    """Convert a sequence of boundary values into ``(array, null_mask)``.

    NULL slots hold 0 (or "" for strings) in the array; the mask is None
    when there are no NULLs.
    """
    values = list(values)
    n = len(values)
    nulls = np.fromiter((v is None for v in values), dtype=bool, count=n)
    dtype = physical_dtype(dt)
    filler = "" if dtype == object else 0
    converted = [
        filler if v is None else to_physical_scalar(v, dt) for v in values
    ]
    if dtype == object:
        array = np.empty(n, dtype=object)
        array[:] = converted
    else:
        array = np.array(converted, dtype=dtype)
    return array, (nulls if nulls.any() else None)


def to_boundary(array: np.ndarray, nulls: np.ndarray | None, dt: DataType) -> list:
    """Convert a physical array (+ null mask) back to boundary values."""
    out = []
    for i, v in enumerate(array.tolist()):
        if nulls is not None and nulls[i]:
            out.append(None)
        else:
            out.append(to_boundary_scalar(v, dt))
    return out


@dataclass
class ColumnVector:
    """A runtime vector of physical values with an optional null mask.

    This is the unit that flows between query operators: operators work on
    physical numpy arrays and only convert to boundary values at the result
    set edge.
    """

    dtype: DataType
    values: np.ndarray
    nulls: np.ndarray | None = None

    def __post_init__(self):
        if self.nulls is not None and not self.nulls.any():
            self.nulls = None

    def __len__(self) -> int:
        return int(self.values.size)

    @classmethod
    def from_boundary(cls, values, dt: DataType) -> "ColumnVector":
        array, nulls = to_physical(values, dt)
        return cls(dtype=dt, values=array, nulls=nulls)

    def to_boundary(self) -> list:
        return to_boundary(self.values, self.nulls, self.dtype)

    def take(self, indices: np.ndarray) -> "ColumnVector":
        """Gather rows by position."""
        values = self.values[indices]
        nulls = self.nulls[indices] if self.nulls is not None else None
        return ColumnVector(self.dtype, values, nulls)

    def filter(self, mask: np.ndarray) -> "ColumnVector":
        """Keep rows where mask is True."""
        values = self.values[mask]
        nulls = self.nulls[mask] if self.nulls is not None else None
        return ColumnVector(self.dtype, values, nulls)

    def null_mask(self) -> np.ndarray:
        """Boolean mask of NULL rows (materialised even when None)."""
        if self.nulls is None:
            return np.zeros(len(self), dtype=bool)
        return self.nulls

    @classmethod
    def concat(cls, vectors: list["ColumnVector"]) -> "ColumnVector":
        """Concatenate several vectors of the same type."""
        if not vectors:
            raise ValueError("cannot concatenate zero vectors")
        dt = vectors[0].dtype
        values = np.concatenate([v.values for v in vectors])
        if any(v.nulls is not None for v in vectors):
            nulls = np.concatenate([v.null_mask() for v in vectors])
        else:
            nulls = None
        return cls(dt, values, nulls)

    def datetime_fields(self) -> np.ndarray | None:
        """For temporal columns, decode to numpy datetime64 for calculations."""
        if self.dtype.kind is TypeKind.DATE:
            return self.values.astype("datetime64[D]")
        if self.dtype.kind is TypeKind.TIMESTAMP:
            return self.values.astype("datetime64[us]")
        return None
