"""A row-store SQL database: the baseline engine behind the appliance.

Reuses the SQL front end (parser + binder) but executes everything through
the row-at-a-time engine (:mod:`repro.engine.row_engine`) over
:class:`~repro.storage.rowtable.RowTable` storage with secondary B-tree
indexes — i.e. "row-organized tables with secondary indexing" from the
paper's 10-50x claim (II.B.7).  The supported SQL surface covers the shapes
the workload generators emit: filtered scans, star joins, GROUP BY
aggregation, ORDER BY / FETCH FIRST, and the full DML/DDL statement mix.
"""

from __future__ import annotations

from repro.database.result import Result
from repro.engine.aggregate import AggregateSpec
from repro.engine.expression import ColumnRef, Expr
from repro.engine.operators import SimplePredicate
from repro.engine.row_engine import (
    RowFilter,
    RowGroupBy,
    RowHashJoin,
    RowLimit,
    RowOperator,
    RowProject,
    RowScan,
    RowSort,
    RowSource,
)
from repro.engine.sort import SortKey
from repro.errors import (
    DuplicateObjectError,
    SQLError,
    UnknownObjectError,
    UnsupportedFeatureError,
)
from repro.sql import ast
from repro.sql.binder import ExpressionBinder, Scope, ScopeColumn
from repro.sql.dialects import get_dialect, resolve_type
from repro.sql.parser import parse_statement
from repro.sql.planner import _conjuncts, _default_name, _simple_predicate
from repro.storage.column import to_boundary_scalar
from repro.storage.rowtable import RowTable
from repro.storage.table import TableSchema


class _RenamingScan(RowOperator):
    """Wrap a RowScan, renaming bare column names to qualified keys."""

    def __init__(self, scan: RowScan, alias: str):
        self.scan = scan
        self.alias = alias

    def rows(self):
        prefix = self.alias + "."
        for row in self.scan.rows():
            yield {prefix + k: v for k, v in row.items()}


class RowDatabase:
    """A miniature row-store DBMS sharing the dialect-aware SQL front end."""

    def __init__(self, dialect: str = "db2", auto_index_keys: bool = True):
        self.dialect = get_dialect(dialect)
        self.tables: dict[str, RowTable] = {}
        self.auto_index_keys = auto_index_keys
        self.statement_count = 0
        self.rows_examined = 0

    # -- catalogue ---------------------------------------------------------------

    def table(self, name: str) -> RowTable:
        table = self.tables.get(name.upper())
        if table is None:
            raise UnknownObjectError("no table %s" % name.upper())
        return table

    def create_index(self, table: str, column: str) -> None:
        self.table(table).create_index(column.upper())

    # -- execution ------------------------------------------------------------------

    def execute(self, sql: str) -> Result:
        self.statement_count += 1
        node = parse_statement(sql)
        if isinstance(node, ast.Select):
            return self._execute_select(node)
        if isinstance(node, ast.Insert):
            return self._execute_insert(node)
        if isinstance(node, ast.Update):
            return self._execute_update(node)
        if isinstance(node, ast.Delete):
            return self._execute_delete(node)
        if isinstance(node, ast.CreateTable):
            return self._execute_create(node)
        if isinstance(node, ast.DropTable):
            return self._execute_drop(node)
        if isinstance(node, ast.TruncateTable):
            self.table(node.name.name).truncate()
            return Result(message="truncated")
        if isinstance(node, ast.ExplainStatement):
            return Result(columns=["PLAN"], rows=[("row-store plan",)], rowcount=1)
        raise UnsupportedFeatureError(
            "row database does not support %s" % type(node).__name__
        )

    # -- DDL / DML ---------------------------------------------------------------------

    def _execute_create(self, node: ast.CreateTable) -> Result:
        name = node.name.name.upper()
        if name in self.tables:
            raise DuplicateObjectError("table %s exists" % name)
        columns = tuple(
            (c.name.upper(), resolve_type(c.type_name, c.length, c.precision, c.scale))
            for c in node.columns
        )
        table = RowTable(TableSchema(name, columns))
        self.tables[name] = table
        if self.auto_index_keys:
            for c in node.columns:
                if c.primary_key or c.unique:
                    table.create_index(c.name.upper())
        return Result(message="table %s created" % name)

    def _execute_drop(self, node: ast.DropTable) -> Result:
        name = node.name.name.upper()
        if name not in self.tables:
            if node.if_exists:
                return Result(message="did not exist")
            raise UnknownObjectError("no table %s" % name)
        del self.tables[name]
        return Result(message="table %s dropped" % name)

    def _binder_for_constants(self) -> ExpressionBinder:
        return ExpressionBinder(Scope([]), self.dialect, None)

    def _execute_insert(self, node: ast.Insert) -> Result:
        table = self.table(node.table.name)
        names = table.schema.column_names
        targets = [c.upper() for c in node.columns] if node.columns else names
        binder = self._binder_for_constants()
        rows = []
        if node.rows is None:
            select_result = self._execute_select(node.select)
            raw_rows = [list(r) for r in select_result.rows]
        else:
            raw_rows = []
            for ast_row in node.rows:
                row = []
                for expr_node in ast_row:
                    expr = binder.bind(expr_node)
                    row.append(to_boundary_scalar(expr.eval_row({}), expr.dtype))
                raw_rows.append(row)
        for raw in raw_rows:
            by_name = dict(zip(targets, raw))
            rows.append(tuple(by_name.get(c) for c in names))
        count = table.insert_rows(rows)
        return Result(rowcount=count)

    def _match_ids(self, table: RowTable, alias: str, where) -> list[int]:
        scope, binder = self._table_scope(table, alias)
        pushed, residual = self._split_where(where, scope, binder, alias)
        scan = RowScan(table, pushed=pushed, residual=residual)
        names = table.schema.column_names
        matched = []
        prefix = alias + "."
        for row_id, raw in table.scan():
            row = {prefix + n: v for n, v in zip(names, raw)}
            keep = True
            for pred in pushed:
                if not pred.eval_row_value(row[prefix + pred.column]):
                    keep = False
                    break
            if keep and residual is not None and not residual.eval_row(row):
                keep = False
            if keep:
                matched.append(row_id)
            self.rows_examined += 1
        return matched

    def _execute_update(self, node: ast.Update) -> Result:
        table = self.table(node.table.name)
        alias = (node.table.alias or node.table.name).upper()
        scope, binder = self._table_scope(table, alias)
        ids = self._match_ids(table, alias, node.where)
        assignments = [
            (c.upper(), binder.bind(e)) for c, e in node.assignments
        ]
        names = table.schema.column_names
        prefix = alias + "."
        for row_id in ids:
            raw = table.fetch(row_id)
            row = {prefix + n: v for n, v in zip(names, raw)}
            updates = {}
            for cname, expr in assignments:
                value = expr.eval_row(row)
                dtype = table.schema.column_type(cname)
                updates[cname] = (
                    None if value is None else to_boundary_scalar(value, expr.dtype)
                )
            table.update_row(row_id, updates)
        return Result(rowcount=len(ids))

    def _execute_delete(self, node: ast.Delete) -> Result:
        table = self.table(node.table.name)
        alias = (node.table.alias or node.table.name).upper()
        ids = self._match_ids(table, alias, node.where)
        return Result(rowcount=table.delete_ids(ids))

    # -- SELECT ---------------------------------------------------------------------------

    def _table_scope(self, table: RowTable, alias: str):
        columns = [
            ScopeColumn("%s.%s" % (alias, n.upper()), n.upper(), alias, dt)
            for n, dt in table.schema.columns
        ]
        scope = Scope(columns)
        binder = ExpressionBinder(scope, self.dialect, None)
        return scope, binder

    def _split_where(self, where, scope, binder, *aliases_with_index):
        pushed: list[SimplePredicate] = []
        residual_parts: list[Expr] = []
        equi_edges = []
        for conjunct in _conjuncts(where):
            simple = _simple_predicate(conjunct, scope, binder, self.dialect)
            if simple is not None:
                column, pred = simple
                pushed.append((column.qualifier, pred))
                continue
            bound = binder.bind(conjunct)
            edge = self._equi(bound)
            if edge is not None:
                equi_edges.append(edge)
            else:
                residual_parts.append(bound)
        residual = None
        if residual_parts:
            from repro.engine.expression import Logical

            residual = (
                residual_parts[0]
                if len(residual_parts) == 1
                else Logical("AND", residual_parts)
            )
        if aliases_with_index:
            # single-table mode: flatten pushed list
            flat = [p for _, p in pushed]
            return flat, residual
        return pushed, equi_edges, residual

    @staticmethod
    def _equi(bound):
        from repro.engine.expression import Compare

        if (
            isinstance(bound, Compare)
            and bound.op == "="
            and isinstance(bound.left, ColumnRef)
            and isinstance(bound.right, ColumnRef)
            and bound.left.name.split(".")[0] != bound.right.name.split(".")[0]
        ):
            return (bound.left.name, bound.right.name)
        return None

    def _execute_select(self, node: ast.Select) -> Result:
        if node.set_op is not None or node.connect_by:
            raise UnsupportedFeatureError("row database supports plain SELECT blocks")
        if node.ctes:
            return self._execute_with_ctes(node)
        refs = []
        for item in node.from_items:
            refs.extend(self._flatten_from(item))
        if not refs:
            raise UnsupportedFeatureError("row database requires a FROM clause")
        join_conditions = [cond for _, cond in refs if cond is not None]
        scope_columns = []
        alias_tables = {}
        for (ref, _) in refs:
            alias = (ref.alias or ref.name).upper()
            table = self.table(ref.name)
            alias_tables[alias] = table
            scope_columns.extend(
                ScopeColumn("%s.%s" % (alias, n.upper()), n.upper(), alias, dt)
                for n, dt in table.schema.columns
            )
        scope = Scope(scope_columns)
        binder = ExpressionBinder(scope, self.dialect, None)
        pushed_pairs, equi_edges, residual = self._split_where(node.where, scope, binder)
        residual_parts = [] if residual is None else [residual]
        for cond in join_conditions:
            for conjunct in _conjuncts(cond):
                bound = binder.bind(conjunct)
                edge = self._equi(bound)
                if edge is not None:
                    equi_edges.append(edge)
                else:
                    residual_parts.append(bound)
        if residual_parts:
            from repro.engine.expression import Logical

            residual = (
                residual_parts[0]
                if len(residual_parts) == 1
                else Logical("AND", residual_parts)
            )
        # Build scan per alias with its pushed predicates.
        pushed_by_alias: dict[str, list[SimplePredicate]] = {}
        for qualifier, pred in pushed_pairs:
            pushed_by_alias.setdefault(qualifier, []).append(pred)
        operators: dict[str, RowOperator] = {}
        scans: dict[str, RowScan] = {}
        for alias, table in alias_tables.items():
            scan = RowScan(table, pushed=pushed_by_alias.get(alias, []))
            scans[alias] = scan
            operators[alias] = _RenamingScan(scan, alias)
        # Join chain (hash joins in edge order; cross join if unconnected).
        op, joined = self._join_chain(operators, equi_edges)
        if residual is not None:
            op = RowFilter(op, residual)
        # Aggregation and output.
        out_binder = ExpressionBinder(scope, self.dialect, None, allow_aggregates=True)
        items = self._expand_stars(node.items, scope)
        bound_items = []
        for index, item in enumerate(items):
            expr = out_binder.bind(item.expr)
            bound_items.append(((item.alias or _default_name(item.expr, index)).upper(), expr))
        group_exprs = [out_binder.bind(g) if not isinstance(g, ast.NumberLit)
                       else bound_items[int(g.text) - 1][1]
                       for g in node.group_by]
        having = out_binder.bind(node.having) if node.having is not None else None
        if out_binder.aggregates or group_exprs:
            op, bound_items, having = self._apply_grouping(
                op, bound_items, group_exprs, out_binder, having
            )
        if having is not None:
            op = RowFilter(op, having)
        keys = ["__C%d" % i for i in range(len(bound_items))]
        op = RowProject(op, [(k, e) for k, (_, e) in zip(keys, bound_items)])
        if node.distinct:
            op = _RowDistinct(op, keys)
        if node.order_by:
            op = RowSort(op, self._order_keys(node, bound_items, keys))
        from repro.sql.planner import _const_int

        limit = _const_int(node.limit)
        offset = _const_int(node.offset) or 0
        if limit is not None or offset:
            op = RowLimit(op, limit, offset)
        rows = op.run()
        for scan in scans.values():
            self.rows_examined += scan.rows_examined
        names = [n for n, _ in bound_items]
        dtypes = [e.dtype for _, e in bound_items]
        out_rows = [
            tuple(
                to_boundary_scalar(row[k], dt) if row[k] is not None else None
                for k, dt in zip(keys, dtypes)
            )
            for row in rows
        ]
        return Result(columns=names, rows=out_rows, rowcount=len(out_rows), dtypes=dtypes)

    def _execute_with_ctes(self, node: ast.Select) -> Result:
        """WITH support by materialising each CTE as a temporary table."""
        created = []
        try:
            for name, cte_select, column_names in node.ctes:
                result = self._execute_select(cte_select)
                names = column_names or result.columns
                columns = tuple(
                    (n.upper(), dt) for n, dt in zip(names, result.dtypes)
                )
                table = RowTable(TableSchema(name.upper(), columns))
                table.insert_rows([list(r) for r in result.rows])
                if name.upper() in self.tables:
                    raise DuplicateObjectError("CTE name %s collides" % name)
                self.tables[name.upper()] = table
                created.append(name.upper())
            body = ast.Select(
                items=node.items,
                distinct=node.distinct,
                from_items=node.from_items,
                where=node.where,
                group_by=node.group_by,
                having=node.having,
                order_by=node.order_by,
                limit=node.limit,
                limit_syntax=node.limit_syntax,
                offset=node.offset,
            )
            return self._execute_select(body)
        finally:
            for name in created:
                self.tables.pop(name, None)

    def _flatten_from(self, item):
        if isinstance(item, ast.TableRef):
            return [(item, None)]
        if isinstance(item, ast.Join):
            if item.kind != "inner" or item.using is not None:
                raise UnsupportedFeatureError("row database joins are inner ON joins")
            right = self._flatten_from(item.right)
            if len(right) != 1:
                raise UnsupportedFeatureError("row database joins must be left-deep")
            return self._flatten_from(item.left) + [(right[0][0], item.condition)]
        raise UnsupportedFeatureError("unsupported FROM item in row database")

    def _join_chain(self, operators: dict[str, RowOperator], edges):
        aliases = list(operators)
        current_alias = aliases[0]
        op = operators[current_alias]
        joined = {current_alias}
        remaining = set(aliases[1:])
        pending = list(edges)
        while remaining:
            progressed = False
            for edge in list(pending):
                left_alias = edge[0].split(".")[0]
                right_alias = edge[1].split(".")[0]
                if left_alias in joined and right_alias in remaining:
                    op = RowHashJoin(op, operators[right_alias], edge[0], edge[1])
                    joined.add(right_alias)
                    remaining.discard(right_alias)
                    pending.remove(edge)
                    progressed = True
                elif right_alias in joined and left_alias in remaining:
                    op = RowHashJoin(op, operators[left_alias], edge[1], edge[0])
                    joined.add(left_alias)
                    remaining.discard(left_alias)
                    pending.remove(edge)
                    progressed = True
            if not progressed:
                raise UnsupportedFeatureError("row database requires connected joins")
        # Leftover (redundant) equality edges act as filters.
        if pending:
            from repro.engine.expression import Compare, Logical

            conditions = [
                Compare("=", ColumnRef(a), ColumnRef(b)) for a, b in pending
            ]
            condition = conditions[0] if len(conditions) == 1 else Logical("AND", conditions)
            op = RowFilter(op, condition)
        return op, joined

    def _apply_grouping(self, op, bound_items, group_exprs, binder, having):
        from repro.sql.planner import _expr_signature, _rewrite_groups

        keys = [("__KEY%d" % i, expr) for i, expr in enumerate(group_exprs)]
        group_op = RowGroupBy(op, keys=keys, aggregates=binder.aggregates)
        signatures = {
            _expr_signature(expr): ("__KEY%d" % i, expr.dtype)
            for i, expr in enumerate(group_exprs)
        }
        agg_aliases = {s.alias for s in binder.aggregates}
        new_items = [
            (name, _rewrite_groups(expr, signatures, agg_aliases))
            for name, expr in bound_items
        ]
        if having is not None:
            having = _rewrite_groups(having, signatures, agg_aliases)
        return group_op, new_items, having

    def _expand_stars(self, items, scope):
        out = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                for column in scope.columns_of(item.expr.qualifier):
                    out.append(
                        ast.SelectItem(
                            ast.Identifier(
                                ([column.qualifier] if column.qualifier else [])
                                + [column.name]
                            ),
                            alias=column.name,
                        )
                    )
            else:
                out.append(item)
        return out

    def _order_keys(self, node, bound_items, keys):
        order = []
        names = [n for n, _ in bound_items]
        for item in node.order_by:
            if isinstance(item.expr, ast.NumberLit):
                index = int(item.expr.text) - 1
                expr = ColumnRef(keys[index], bound_items[index][1].dtype)
            elif (
                isinstance(item.expr, ast.Identifier)
                and len(item.expr.parts) == 1
                and item.expr.parts[0].upper() in names
            ):
                index = names.index(item.expr.parts[0].upper())
                expr = ColumnRef(keys[index], bound_items[index][1].dtype)
            else:
                raise UnsupportedFeatureError(
                    "row database ORDER BY needs ordinals or output names"
                )
            order.append(SortKey(expr, item.ascending, item.nulls_first))
        return order


class _RowDistinct(RowOperator):
    def __init__(self, child: RowOperator, keys: list[str]):
        self.child = child
        self.keys = keys

    def rows(self):
        seen = set()
        for row in self.child.rows():
            key = tuple(row[k] for k in self.keys)
            if key not in seen:
                seen.add(key)
                yield row
