"""The simulated-time cost model for cluster-scale comparisons.

The paper's Table 1 compares systems on hardware we do not have (FPGA
appliances, multi-terabyte SSD clusters).  This model converts *measured
engine work* (wall-clock seconds of the Python engines, plus bytes
scanned) into simulated per-query seconds under an explicit hardware
profile:

* the appliance's FPGAs filter/decompress at wire speed, so its
  row-engine CPU time is credited with ``scan_speedup``;
* its HDDs are slower per byte than dashDB's SSDs (``io_seconds_per_mb``);
* both sides pay a fixed per-query startup (compile + dispatch).

The calibration constants are *not* fitted to reproduce the paper's exact
numbers; they encode the qualitative hardware facts from Table 1's
hardware rows (FPGA offload, HDD vs SSD), and the experiment reports the
resulting shape (who wins, skew of avg vs median).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SystemProfile:
    """Hardware/engine profile for cost conversion."""

    name: str
    #: Divide measured engine CPU seconds by this (FPGA offload credit).
    scan_speedup: float = 1.0
    #: Sequential I/O cost per MB scanned beyond cache.
    io_seconds_per_mb: float = 0.0
    #: Fixed per-statement overhead (compile, dispatch).
    per_query_overhead_s: float = 0.002
    #: Intra-query DOP the profiled system runs at: CPU work divides across
    #: cores (ideal morsel scaling); I/O and startup do not.
    parallelism: int = 1

    def query_seconds(
        self,
        engine_wall_s: float,
        scanned_mb: float = 0.0,
        parallelism: int | None = None,
    ) -> float:
        """Simulated seconds for one statement.

        ``parallelism`` overrides the profile's DOP for one call (e.g. to
        cost the same measurement at several configured widths).
        """
        dop = max(1, parallelism if parallelism is not None else self.parallelism)
        return (
            self.per_query_overhead_s
            + engine_wall_s / self.scan_speedup / dop
            + scanned_mb * self.io_seconds_per_mb
        )


#: dashDB Local node (Table 1 Tests 1-2): SSD-backed, no offload engine —
#: its engine time is the vectorised columnar engine's, taken as-is.
DASHDB_PROFILE = SystemProfile(
    name="dashdb-local",
    scan_speedup=1.0,
    io_seconds_per_mb=0.000_2,  # SSD streaming
)

#: Netezza-class appliance (Table 1 baseline): the FPGA offload makes brute
#: scans cheaper than a pure software row engine (credit factor), but data
#: comes off HDDs and every row still flows through a row-at-a-time core.
#: Calibration note: the Python row engine is itself generous to the
#: appliance (B-tree indexes over in-memory lists, no buffer management),
#: so the FPGA credit is kept modest; EXPERIMENTS.md discusses this.
APPLIANCE_PROFILE = SystemProfile(
    name="appliance",
    scan_speedup=2.0,
    io_seconds_per_mb=0.002,  # HDD streaming
)

#: The unnamed cloud warehouse (Test 4): columnar but without BLU's
#: operate-on-compressed / SIMD / skipping; same AWS hardware as dashDB.
CLOUDWH_PROFILE = SystemProfile(
    name="cloud-warehouse",
    scan_speedup=1.0,
    io_seconds_per_mb=0.000_6,  # EBS at 1800 IOPs
)

#: Effective scan bandwidth on the shared Test 4 hardware: both systems
#: move bytes at the same rate — dashDB moves *compressed* bytes (it
#: operates on compressed data, II.B.2) while the baseline must move the
#: *uncompressed* working set (decode-then-filter).  This is the physical
#: mechanism behind Test 4's gap.  The constant is scaled to the Python
#: engines' time base (their wall clocks run ~two orders of magnitude
#: slower than real silicon, so the per-MB charge is inflated identically
#: to keep CPU and bandwidth terms comparable).
SCAN_SECONDS_PER_MB = 0.3


def speedup_stats(dashdb_times: list[float], baseline_times: list[float]) -> dict:
    """Per-query speedups plus the avg/median summary Table 1 reports."""
    if len(dashdb_times) != len(baseline_times) or not dashdb_times:
        raise ValueError("need matching, non-empty timing lists")
    speedups = sorted(
        b / d if d > 0 else float("inf")
        for d, b in zip(dashdb_times, baseline_times)
    )
    n = len(speedups)
    median = (
        speedups[n // 2]
        if n % 2
        else (speedups[n // 2 - 1] + speedups[n // 2]) / 2.0
    )
    return {
        "n": n,
        "avg": sum(speedups) / n,
        "median": median,
        "min": speedups[0],
        "max": speedups[-1],
    }
