"""The unnamed "popular cloud data warehouse" baseline of Test 4.

Also an MPP shared-nothing column store with a memory cache (the paper's
words) — so it shares dashDB's storage layout — but *without* the seven
BLU techniques that Test 4 isolates: predicates are evaluated on decoded
values (no operate-on-compressed / software-SIMD), synopses are ignored
(no data skipping), and the buffer pool runs plain LRU.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.costmodel import CLOUDWH_PROFILE, SystemProfile
from repro.database.database import Database
from repro.database.result import Result


@dataclass
class TimedResult:
    result: Result
    seconds: float  # simulated


class CloudWarehouse:
    """dashDB's storage without dashDB's engine techniques."""

    def __init__(
        self,
        profile: SystemProfile = CLOUDWH_PROFILE,
        bufferpool_pages: int = 1024,
    ):
        self.database = Database(
            name="CLOUDWH",
            bufferpool_pages=bufferpool_pages,
            bufferpool_policy="lru",
            scan_options={"use_skipping": False, "use_compressed_eval": False},
        )
        self.profile = profile
        self.total_seconds = 0.0
        self._session = self.database.connect("db2")

    def execute(self, sql: str) -> TimedResult:
        from repro.baselines.costmodel import SCAN_SECONDS_PER_MB

        t0 = time.perf_counter()
        result = self._session.execute(sql)
        wall = time.perf_counter() - t0
        # No operate-on-compressed: the engine streams the *uncompressed*
        # working set through the scan pipeline.
        _, raw_bytes = self.database.last_query_bytes()
        seconds = self.profile.query_seconds(wall) + (
            raw_bytes / 1e6
        ) * SCAN_SECONDS_PER_MB
        self.total_seconds += seconds
        return TimedResult(result=result, seconds=seconds)
