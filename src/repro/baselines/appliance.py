"""The Netezza-class appliance baseline of Table 1.

A row-store SQL engine (:class:`~repro.baselines.rowdb.RowDatabase`) whose
measured work is converted to simulated seconds by the appliance hardware
profile: FPGA scan offload divides the row-engine CPU time, HDD streaming
charges per byte examined.  Statements execute for real (results are
compared against dashDB's for correctness); only the *clock* is modelled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.costmodel import APPLIANCE_PROFILE, SystemProfile
from repro.baselines.rowdb import RowDatabase
from repro.database.result import Result

#: Average row footprint used to convert rows examined into MB streamed.
ROW_BYTES_ESTIMATE = 96


@dataclass
class TimedResult:
    result: Result
    seconds: float  # simulated


class ApplianceSystem:
    """Row engine + appliance cost profile."""

    def __init__(
        self,
        dialect: str = "db2",
        profile: SystemProfile = APPLIANCE_PROFILE,
    ):
        self.engine = RowDatabase(dialect=dialect)
        self.profile = profile
        self.total_seconds = 0.0

    def execute(self, sql: str) -> TimedResult:
        examined_before = self.engine.rows_examined
        t0 = time.perf_counter()
        result = self.engine.execute(sql)
        wall = time.perf_counter() - t0
        examined = self.engine.rows_examined - examined_before
        scanned_mb = examined * ROW_BYTES_ESTIMATE / 1e6
        seconds = self.profile.query_seconds(wall, scanned_mb)
        self.total_seconds += seconds
        return TimedResult(result=result, seconds=seconds)

    def create_index(self, table: str, column: str) -> None:
        self.engine.create_index(table, column)
