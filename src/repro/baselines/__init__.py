"""Baseline systems and the simulated-time cost model.

* :mod:`repro.baselines.rowdb` — a row-store SQL database (row-at-a-time
  interpreter over :class:`~repro.storage.rowtable.RowTable` with secondary
  B-tree indexes): the execution engine of the appliance baseline.
* :mod:`repro.baselines.appliance` — the Netezza-class appliance of Table 1
  (row engine + FPGA scan offload + HDD I/O, via the cost model).
* :mod:`repro.baselines.cloudwh` — the unnamed "popular cloud data
  warehouse" of Test 4: columnar layout but none of BLU's seven techniques.
* :mod:`repro.baselines.costmodel` — translates measured engine work into
  simulated seconds per hardware profile.
"""

from repro.baselines.appliance import ApplianceSystem
from repro.baselines.cloudwh import CloudWarehouse
from repro.baselines.costmodel import APPLIANCE_PROFILE, DASHDB_PROFILE, SystemProfile
from repro.baselines.rowdb import RowDatabase

__all__ = [
    "APPLIANCE_PROFILE",
    "ApplianceSystem",
    "CloudWarehouse",
    "DASHDB_PROFILE",
    "RowDatabase",
    "SystemProfile",
]
