"""Schema-on-read external tables (the paper's Future Work, section VI).

The paper lists three storage-side future directions: "Improve support for
Schema on Read", "Support for common Big Data storage formats, such as
Parquet", and "Support for Big Data Analytics on JSON data".  This package
implements all three:

* :mod:`repro.external.formats` — readers for delimited text (CSV), JSON
  lines, and a Parquet-style columnar file format ("parquet-lite": column
  chunks with per-chunk min/max statistics and dictionary encoding).
* :mod:`repro.external.table` — ``CREATE EXTERNAL TABLE``-style
  registration: files on the clustered filesystem become queryable
  relations whose schema is applied *at read time*.
* :mod:`repro.external.json_functions` — JSON_VALUE / JSON_EXISTS /
  JSON_ARRAY_LENGTH scalar functions for analytics over JSON columns.
"""

from repro.external.formats import (
    ParquetLiteFile,
    read_csv,
    read_json_lines,
    write_csv,
    write_json_lines,
    write_parquet_lite,
)
from repro.external.json_functions import register_json_functions
from repro.external.table import ExternalTable, register_external_table

__all__ = [
    "ExternalTable",
    "ParquetLiteFile",
    "read_csv",
    "read_json_lines",
    "register_external_table",
    "register_json_functions",
    "write_csv",
    "write_json_lines",
    "write_parquet_lite",
]
