"""JSON analytics scalar functions (Future Work: "Big Data Analytics on
JSON data").

JSON documents travel through SQL as VARCHAR values; the functions follow
the SQL/JSON flavour:

* ``JSON_VALUE(doc, '$.path.to.field')`` — extract a scalar (NULL when the
  path is absent or the document is malformed).
* ``JSON_EXISTS(doc, '$.path')`` — does the path resolve?
* ``JSON_ARRAY_LENGTH(doc, '$.path')`` — length of an array at the path.

Paths support dotted fields and ``[n]`` array subscripts.
"""

from __future__ import annotations

import json
import re

from repro.sql.functions import FunctionRegistry, simple
from repro.types.datatypes import BIGINT, BOOLEAN, varchar_type

_PATH_TOKEN = re.compile(r"\.([A-Za-z_][A-Za-z0-9_]*)|\[(\d+)\]")


def _resolve(doc_text, path):
    if doc_text is None or path is None:
        return None, False
    try:
        node = json.loads(str(doc_text))
    except (json.JSONDecodeError, TypeError):
        return None, False
    path = str(path).strip()
    if not path.startswith("$"):
        return None, False
    pos = 1
    for match in _PATH_TOKEN.finditer(path, 1):
        if match.start() != pos:
            return None, False
        pos = match.end()
        field, index = match.group(1), match.group(2)
        if field is not None:
            if not isinstance(node, dict) or field not in node:
                return None, False
            node = node[field]
        else:
            i = int(index)
            if not isinstance(node, list) or i >= len(node):
                return None, False
            node = node[i]
    if pos != len(path):
        return None, False
    return node, True


def _json_value(values, dtypes):
    node, found = _resolve(values[0], values[1])
    if not found or node is None:
        return None
    if isinstance(node, bool):
        return "true" if node else "false"
    if isinstance(node, (dict, list)):
        return json.dumps(node)
    return str(node)


def _json_exists(values, dtypes):
    if values[0] is None or values[1] is None:
        return None
    _, found = _resolve(values[0], values[1])
    return int(found)


def _json_array_length(values, dtypes):
    node, found = _resolve(values[0], values[1] if len(values) > 1 else "$")
    if not found or not isinstance(node, list):
        return None
    return len(node)


def register_json_functions(registry: FunctionRegistry) -> None:
    registry.register(
        "JSON_VALUE", simple("JSON_VALUE", 2, 2, varchar_type(), _json_value)
    )
    registry.register(
        "JSON_EXISTS", simple("JSON_EXISTS", 2, 2, BOOLEAN, _json_exists)
    )
    registry.register(
        "JSON_ARRAY_LENGTH",
        simple("JSON_ARRAY_LENGTH", 1, 2, BIGINT, _json_array_length),
    )


def install_default() -> None:
    """Install into the shared ANSI registry (visible to all dialects)."""
    from repro.sql.dialects import _ANSI_FNS

    register_json_functions(_ANSI_FNS)


install_default()
