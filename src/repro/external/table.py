"""External tables: schema applied at read time ("schema on read").

An :class:`ExternalTable` binds a file on the clustered filesystem to a
declared schema.  Registration puts it in the catalog like a nickname, so
the planner treats it as an ordinary relation; the schema conversion
(strings -> typed values, malformed cells -> NULL or error) happens on
every scan — the defining property of schema-on-read systems the paper's
intro credits to the Hadoop world.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.expression import Batch
from repro.errors import ConversionError, FederationError
from repro.sql.binder import ScopeColumn
from repro.storage.column import ColumnVector
from repro.storage.filesystem import ClusterFileSystem
from repro.types.datatypes import DataType
from repro.types.values import cast_value

from repro.external.formats import (
    ParquetLiteFile,
    read_csv,
    read_json_lines,
    read_parquet_lite,
)

_FORMATS = ("csv", "jsonl", "parquet-lite")


@dataclass
class ExternalTable:
    """A file + a read-time schema.

    Args:
        name: catalog name.
        fs: the clustered filesystem holding the file.
        path: file path on the FS.
        file_format: "csv" | "jsonl" | "parquet-lite".
        columns: declared (name, DataType) pairs applied at read time.
        on_error: "null" (malformed cell reads as NULL — permissive
            schema-on-read) or "fail" (raise on first malformed cell).
    """

    name: str
    fs: ClusterFileSystem
    path: str
    file_format: str
    columns: tuple[tuple[str, DataType], ...]
    on_error: str = "null"

    def __post_init__(self):
        if self.file_format not in _FORMATS:
            raise FederationError("unknown external format %r" % self.file_format)
        if self.on_error not in ("null", "fail"):
            raise FederationError("on_error must be 'null' or 'fail'")
        self.name = self.name.upper()
        self.columns = tuple((c.upper(), dt) for c, dt in self.columns)
        self.scans = 0
        self.cells_nulled = 0

    # -- reading ------------------------------------------------------------

    def _raw_rows(self) -> list[list]:
        if self.file_format == "csv":
            header, rows = read_csv(self.fs, self.path)
            index = {h.upper(): i for i, h in enumerate(header)}
            ordered = []
            for row in rows:
                ordered.append(
                    [
                        row[index[c]] if c in index and index[c] < len(row) else None
                        for c, _ in self.columns
                    ]
                )
            return ordered
        if self.file_format == "jsonl":
            records = read_json_lines(self.fs, self.path)
            return [
                [_json_cell(record, c) for c, _ in self.columns]
                for record in records
            ]
        pq = read_parquet_lite(self.fs, self.path)
        wanted = [c for c, _ in self.columns]
        return [list(r) for r in pq.read_rows(wanted)]

    def _apply_schema(self, raw_rows: list[list]) -> list[list]:
        """The read-time schema application (the 'schema on read' moment)."""
        typed = []
        for row in raw_rows:
            out = []
            for value, (cname, dtype) in zip(row, self.columns):
                if value is None:
                    out.append(None)
                    continue
                try:
                    out.append(cast_value(value, dtype))
                except ConversionError:
                    if self.on_error == "fail":
                        raise
                    self.cells_nulled += 1
                    out.append(None)
            typed.append(out)
        return typed

    def read_typed_rows(self) -> list[list]:
        self.scans += 1
        return self._apply_schema(self._raw_rows())

    # -- planner integration (same contract as federation connectors) -----------

    def fetch_batch(self, remote_table: str, alias: str):
        rows = self.read_typed_rows()
        columns = {}
        scope_columns = []
        for i, (cname, dtype) in enumerate(self.columns):
            key = "%s.%s" % (alias, cname)
            columns[key] = ColumnVector.from_boundary([r[i] for r in rows], dtype)
            scope_columns.append(ScopeColumn(key, cname, alias, dtype))
        return Batch.from_columns(columns), scope_columns

    def table_names(self) -> list[str]:
        return [self.name]


def _json_cell(record: dict, column: str):
    """Case-insensitive top-level field lookup."""
    if column in record:
        return record[column]
    lowered = column.lower()
    for key, value in record.items():
        if key.lower() == lowered:
            return value
    return None


def register_external_table(database, table: ExternalTable):
    """Expose an external table to SQL: SELECT ... FROM <name>.

    Uses the nickname machinery (the planner already knows how to turn a
    connector fetch into a relation), which matches how real systems expose
    Hadoop-format externals through their federation layer.
    """
    return database.catalog.create_nickname(table.name, table, table.name)
