"""External file formats: CSV, JSON lines, and parquet-lite.

Files live on the simulated clustered filesystem
(:class:`~repro.storage.filesystem.ClusterFileSystem`).  Text formats store
their payload as strings; parquet-lite stores a columnar structure with
per-chunk statistics, so external scans over it can skip chunks the same
way internal scans skip extents.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field

from repro.errors import ConversionError
from repro.storage.filesystem import ClusterFileSystem

# --------------------------------------------------------------------------
# Delimited text
# --------------------------------------------------------------------------


def write_csv(fs: ClusterFileSystem, path: str, rows, header: list[str],
              delimiter: str = ",") -> int:
    """Write rows of boundary values as delimited text; returns bytes."""
    out = io.StringIO()
    out.write(delimiter.join(header) + "\n")
    for row in rows:
        rendered = []
        for value in row:
            if value is None:
                rendered.append("")
            else:
                text = str(value)
                if delimiter in text or '"' in text:
                    text = '"%s"' % text.replace('"', '""')
                rendered.append(text)
        out.write(delimiter.join(rendered) + "\n")
    payload = out.getvalue()
    fs.write_file(path, payload, len(payload.encode()))
    return len(payload)


def read_csv(fs: ClusterFileSystem, path: str, delimiter: str = ",") -> tuple[list[str], list[list[str]]]:
    """Read delimited text: returns (header, rows-of-strings).

    Empty fields read as None (schema applied later — that is the point of
    schema-on-read).
    """
    payload = fs.read_file(path)
    if not isinstance(payload, str):
        raise ConversionError("%s does not hold delimited text" % path)
    lines = payload.splitlines()
    if not lines:
        return [], []
    header = _split_line(lines[0], delimiter)
    rows = []
    for line in lines[1:]:
        if not line:
            continue
        fields = _split_line(line, delimiter)
        rows.append([None if f == "" else f for f in fields])
    return [h or "" for h in header], rows


def _split_line(line: str, delimiter: str) -> list[str]:
    fields = []
    current = []
    in_quotes = False
    i = 0
    while i < len(line):
        ch = line[i]
        if in_quotes:
            if ch == '"':
                if i + 1 < len(line) and line[i + 1] == '"':
                    current.append('"')
                    i += 1
                else:
                    in_quotes = False
            else:
                current.append(ch)
        elif ch == '"':
            in_quotes = True
        elif ch == delimiter:
            fields.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    fields.append("".join(current))
    return fields


# --------------------------------------------------------------------------
# JSON lines
# --------------------------------------------------------------------------


def write_json_lines(fs: ClusterFileSystem, path: str, records: list[dict]) -> int:
    payload = "\n".join(json.dumps(r, default=str) for r in records)
    fs.write_file(path, payload, len(payload.encode()))
    return len(payload)


def read_json_lines(fs: ClusterFileSystem, path: str) -> list[dict]:
    payload = fs.read_file(path)
    if not isinstance(payload, str):
        raise ConversionError("%s does not hold JSON lines" % path)
    records = []
    for i, line in enumerate(payload.splitlines()):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ConversionError("bad JSON on line %d of %s" % (i + 1, path)) from exc
    return records


# --------------------------------------------------------------------------
# parquet-lite: columnar chunks with statistics
# --------------------------------------------------------------------------

CHUNK_ROWS = 4096


@dataclass
class ColumnChunk:
    """One column's values for one row group, with skip statistics."""

    values: list
    min_value: object = None
    max_value: object = None
    null_count: int = 0
    distinct_hint: int = 0

    @classmethod
    def build(cls, values: list) -> "ColumnChunk":
        live = [v for v in values if v is not None]
        return cls(
            values=list(values),
            min_value=min(live) if live else None,
            max_value=max(live) if live else None,
            null_count=len(values) - len(live),
            distinct_hint=len(set(map(str, live))),
        )

    def may_match_range(self, lo, hi) -> bool:
        """Chunk-level skipping: can any value fall inside [lo, hi]?"""
        if self.min_value is None:
            return False
        if lo is not None and self.max_value < lo:
            return False
        if hi is not None and self.min_value > hi:
            return False
        return True


@dataclass
class ParquetLiteFile:
    """A columnar file: named columns split into row groups of chunks."""

    columns: list[str]
    row_groups: list[dict[str, ColumnChunk]] = field(default_factory=list)

    @property
    def n_rows(self) -> int:
        if not self.row_groups:
            return 0
        first = self.columns[0]
        return sum(len(g[first].values) for g in self.row_groups)

    def read_rows(self, wanted: list[str] | None = None,
                  range_filter: tuple[str, object, object] | None = None):
        """Yield row tuples, applying chunk skipping for a range filter.

        Args:
            wanted: column subset (None = all).
            range_filter: optional (column, lo, hi) used for *chunk-level*
                elimination; surviving rows are still returned unfiltered
                (exact filtering is the engine's job).
        """
        wanted = wanted or self.columns
        for group in self.row_groups:
            if range_filter is not None:
                column, lo, hi = range_filter
                if column in group and not group[column].may_match_range(lo, hi):
                    continue
            chunks = [group[c].values for c in wanted]
            yield from zip(*chunks)

    def chunks_scanned(self, range_filter: tuple[str, object, object] | None = None) -> int:
        if range_filter is None:
            return len(self.row_groups)
        column, lo, hi = range_filter
        return sum(
            1
            for g in self.row_groups
            if column not in g or g[column].may_match_range(lo, hi)
        )


def write_parquet_lite(
    fs: ClusterFileSystem,
    path: str,
    columns: list[str],
    rows: list[tuple],
    chunk_rows: int = CHUNK_ROWS,
) -> ParquetLiteFile:
    """Build a parquet-lite file from rows and store it on the cluster FS."""
    pq = ParquetLiteFile(columns=[c.upper() for c in columns])
    for start in range(0, len(rows), chunk_rows):
        group_rows = rows[start : start + chunk_rows]
        group = {}
        for i, column in enumerate(pq.columns):
            group[column] = ColumnChunk.build([r[i] for r in group_rows])
        pq.row_groups.append(group)
    nbytes = sum(
        64 + sum(len(str(v)) + 1 for v in chunk.values)
        for g in pq.row_groups
        for chunk in g.values()
    )
    fs.write_file(path, pq, nbytes)
    return pq


def read_parquet_lite(fs: ClusterFileSystem, path: str) -> ParquetLiteFile:
    payload = fs.read_file(path)
    if not isinstance(payload, ParquetLiteFile):
        raise ConversionError("%s is not a parquet-lite file" % path)
    return payload
