"""MLlib-style algorithms over RDDs (paper II.D: MLlib, GLM).

GLM covers the gaussian (identity link) and binomial (logit link) families
via iteratively reweighted least squares; k-means is Lloyd's algorithm.
Both consume RDDs of ``(features, label)`` / feature vectors, so they run
over collocated dashDB data through the integration layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AnalyticsError


@dataclass
class GLM:
    """A fitted generalised linear model."""

    family: str
    coefficients: np.ndarray  # [intercept, w1, ..., wk]
    iterations: int
    converged: bool

    def predict(self, features) -> np.ndarray:
        x = _design_matrix(np.asarray(features, dtype=float))
        eta = x @ self.coefficients
        if self.family == "binomial":
            return 1.0 / (1.0 + np.exp(-eta))
        return eta

    def classify(self, features) -> np.ndarray:
        if self.family != "binomial":
            raise AnalyticsError("classify requires the binomial family")
        return (self.predict(features) >= 0.5).astype(int)


def _design_matrix(x: np.ndarray) -> np.ndarray:
    if x.ndim == 1:
        x = x[:, None]
    return np.hstack([np.ones((x.shape[0], 1)), x])


def train_glm(
    data,
    family: str = "gaussian",
    max_iterations: int = 50,
    tolerance: float = 1e-8,
) -> GLM:
    """Fit a GLM from an RDD (or list) of ``(features, label)`` pairs."""
    pairs = data.collect() if hasattr(data, "collect") else list(data)
    if not pairs:
        raise AnalyticsError("GLM needs at least one observation")
    x = _design_matrix(np.asarray([p[0] for p in pairs], dtype=float))
    y = np.asarray([p[1] for p in pairs], dtype=float)
    if family == "gaussian":
        beta, *_ = np.linalg.lstsq(x, y, rcond=None)
        return GLM("gaussian", beta, iterations=1, converged=True)
    if family != "binomial":
        raise AnalyticsError("unsupported GLM family %r" % family)
    beta = np.zeros(x.shape[1])
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        eta = np.clip(x @ beta, -30.0, 30.0)  # separable data would overflow
        mu = 1.0 / (1.0 + np.exp(-eta))
        w = np.clip(mu * (1.0 - mu), 1e-9, None)
        z = eta + (y - mu) / w
        wx = x * w[:, None]
        try:
            new_beta = np.linalg.solve(x.T @ wx, x.T @ (w * z))
        except np.linalg.LinAlgError as exc:
            raise AnalyticsError("IRLS normal equations are singular") from exc
        if np.max(np.abs(new_beta - beta)) < tolerance:
            beta = new_beta
            converged = True
            break
        beta = new_beta
    return GLM("binomial", beta, iterations=iteration, converged=converged)


@dataclass
class KMeansModel:
    centers: np.ndarray
    iterations: int
    inertia: float

    def predict(self, points) -> np.ndarray:
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts[:, None]
        distances = ((pts[:, None, :] - self.centers[None, :, :]) ** 2).sum(axis=2)
        return distances.argmin(axis=1)


def train_kmeans(
    data,
    k: int,
    max_iterations: int = 50,
    seed: int = 7,
) -> KMeansModel:
    """Lloyd's algorithm over an RDD (or list) of feature vectors."""
    points = data.collect() if hasattr(data, "collect") else list(data)
    pts = np.asarray(points, dtype=float)
    if pts.ndim == 1:
        pts = pts[:, None]
    if len(pts) < k:
        raise AnalyticsError("k=%d exceeds the number of points %d" % (k, len(pts)))
    rng = np.random.default_rng(seed)
    centers = pts[rng.choice(len(pts), size=k, replace=False)].astype(float)
    assignment = np.zeros(len(pts), dtype=int)
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        distances = ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_assignment = distances.argmin(axis=1)
        if iteration > 1 and np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment
        for center_index in range(k):
            members = pts[assignment == center_index]
            if len(members):
                centers[center_index] = members.mean(axis=0)
    inertia = float(
        ((pts - centers[assignment]) ** 2).sum()
    )
    return KMeansModel(centers=centers, iterations=iteration, inertia=inertia)
