"""SQL stored procedures for Spark (paper II.D.1).

"SQL Stored Procedure interfaces to submit or cancel Spark applications"
and "further prepackaged Stored Procedures which allow to run ready to use
analytic algorithms like GLM from within SQL".

Installed onto a Database (or every shard coordinator) with
:func:`install_spark_procedures`; applications are registered Python
callables (the deployed-notebook model of the paper's one-click deploy).
"""

from __future__ import annotations

from repro.database.result import Result
from repro.errors import SparkSubmitError, UnknownObjectError
from repro.spark.dispatcher import SparkDispatcher
from repro.spark.mllib import train_glm


class SparkAppRegistry:
    """Deployed applications callable by name (one-click deployment)."""

    def __init__(self):
        self._apps: dict[str, object] = {}

    def deploy(self, name: str, main_fn) -> None:
        self._apps[name.upper()] = main_fn

    def resolve(self, name: str):
        fn = self._apps.get(name.upper())
        if fn is None:
            raise UnknownObjectError("no deployed Spark application %s" % name.upper())
        return fn

    def names(self) -> list[str]:
        return sorted(self._apps)


def install_spark_procedures(database, dispatcher: SparkDispatcher, registry: SparkAppRegistry):
    """Register SYSPROC-style Spark procedures on a database."""

    def spark_submit(db, session, args) -> Result:
        if not args:
            raise SparkSubmitError("SPARK_SUBMIT(app_name) requires an argument")
        app_name = str(args[0])
        user = str(args[1]) if len(args) > 1 else "default"
        main_fn = registry.resolve(app_name)
        app = dispatcher.submit(user, app_name, main_fn)
        return Result(
            columns=["APP_ID", "STATE"],
            rows=[(app.app_id, app.state)],
            rowcount=1,
        )

    def spark_cancel(db, session, args) -> Result:
        if not args:
            raise SparkSubmitError("SPARK_CANCEL(app_id) requires an argument")
        app_id = str(args[0])
        user = str(args[1]) if len(args) > 1 else "default"
        dispatcher.cancel(user, app_id)
        return Result(message="application %s cancelled" % app_id)

    def spark_status(db, session, args) -> Result:
        if not args:
            raise SparkSubmitError("SPARK_STATUS(app_id) requires an argument")
        user = str(args[1]) if len(args) > 1 else "default"
        state = dispatcher.status(user, str(args[0]))
        return Result(columns=["STATE"], rows=[(state,)], rowcount=1)

    def idax_glm(db, session, args) -> Result:
        """CALL IDAX_GLM(table, label_col, feature_col, ...) — the
        prepackaged in-database GLM of papers II.C.4 / II.D.1."""
        if len(args) < 3:
            raise SparkSubmitError(
                "IDAX_GLM(table, label_column, feature_columns...) requires arguments"
            )
        table, label = str(args[0]), str(args[1])
        features = [str(a) for a in args[2:]]
        columns = ", ".join(features + [label])
        result = db.execute("SELECT %s FROM %s" % (columns, table), session)
        pairs = [
            ([float(v) for v in row[:-1]], float(row[-1]))
            for row in result.rows
            if all(v is not None for v in row)
        ]
        model = train_glm(pairs, family="gaussian")
        rows = [("INTERCEPT", float(model.coefficients[0]))]
        rows += [
            (feature.upper(), float(coef))
            for feature, coef in zip(features, model.coefficients[1:])
        ]
        return Result(columns=["TERM", "COEFFICIENT"], rows=rows, rowcount=len(rows))

    database.register_procedure("SPARK_SUBMIT", spark_submit)
    database.register_procedure("SYSPROC.SPARK_SUBMIT", spark_submit)
    database.register_procedure("SPARK_CANCEL", spark_cancel)
    database.register_procedure("SYSPROC.SPARK_CANCEL", spark_cancel)
    database.register_procedure("SPARK_STATUS", spark_status)
    database.register_procedure("IDAX_GLM", idax_glm)
    database.register_procedure("IDAX.GLM", idax_glm)
