"""The Spark Dispatcher: per-user cluster managers and app submission.

Paper II.D.1 / Fig. 6: "The main controller for each request to Spark is
the Spark Dispatcher.  The Dispatcher takes care that for each user a
different Spark Cluster Manager gets created and that Spark only gets the
memory configured" — user isolation without extra security configuration,
because "the Spark jobs of different users could only get the data
according to the database privileges".

Submission interfaces (paper list): a REST-style API (``rest_request``),
SQL stored procedures (installed by :mod:`repro.spark.procedures`), and the
``spark_submit`` client wrapper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import SparkSubmitError
from repro.spark.rdd import SparkContext

_app_ids = itertools.count(1)


@dataclass
class SparkApp:
    """One submitted application."""

    app_id: str
    name: str
    user: str
    state: str = "RUNNING"  # RUNNING -> FINISHED | FAILED | KILLED
    result: object = None
    error: str = ""


class SparkClusterManager:
    """One user's private cluster manager with a fixed memory budget."""

    def __init__(self, user: str, memory_limit_bytes: int, default_parallelism: int):
        self.user = user
        self.memory_limit_bytes = memory_limit_bytes
        self.default_parallelism = default_parallelism
        self.apps: dict[str, SparkApp] = {}

    def new_context(self, app_name: str) -> SparkContext:
        return SparkContext(app_name, self.default_parallelism)

    def run(self, app_name: str, main_fn) -> SparkApp:
        """Execute ``main_fn(spark_context)`` as an application."""
        app = SparkApp(app_id="app-%04d" % next(_app_ids), name=app_name, user=self.user)
        self.apps[app.app_id] = app
        context = self.new_context(app_name)
        try:
            app.result = main_fn(context)
            app.state = "FINISHED"
        except Exception as exc:  # lint-ok: broad-except (the Spark driver surfaces any app failure as app.state = FAILED + error text, matching spark-submit; it must not raise)
            app.state = "FAILED"
            app.error = str(exc)
        return app

    def kill(self, app_id: str) -> None:
        app = self.apps.get(app_id)
        if app is None:
            raise SparkSubmitError("no application %s" % app_id)
        if app.state == "RUNNING":
            app.state = "KILLED"


class SparkDispatcher:
    """Routes requests to per-user cluster managers (creating on demand)."""

    def __init__(self, total_memory_bytes: int, default_parallelism: int = 4,
                 per_user_fraction: float = 0.25):
        self.total_memory_bytes = total_memory_bytes
        self.default_parallelism = default_parallelism
        self.per_user_fraction = per_user_fraction
        self.managers: dict[str, SparkClusterManager] = {}

    def manager_for(self, user: str) -> SparkClusterManager:
        if user not in self.managers:
            self.managers[user] = SparkClusterManager(
                user,
                int(self.total_memory_bytes * self.per_user_fraction),
                self.default_parallelism,
            )
        return self.managers[user]

    def submit(self, user: str, app_name: str, main_fn) -> SparkApp:
        return self.manager_for(user).run(app_name, main_fn)

    def cancel(self, user: str, app_id: str) -> None:
        self.manager_for(user).kill(app_id)

    def status(self, user: str, app_id: str) -> str:
        app = self.manager_for(user).apps.get(app_id)
        if app is None:
            raise SparkSubmitError("no application %s for user %s" % (app_id, user))
        return app.state

    def apps_of(self, user: str) -> list[SparkApp]:
        """Isolation: a user can only ever see their own applications."""
        return list(self.manager_for(user).apps.values())

    # -- REST-style interface ----------------------------------------------------

    def rest_request(self, method: str, path: str, user: str, body: dict | None = None) -> dict:
        """A miniature of the dashDB Spark REST API (paper II.D.1)."""
        body = body or {}
        if method == "POST" and path == "/apps":
            main_fn = body.get("main_fn")
            if main_fn is None:
                raise SparkSubmitError("POST /apps requires a main_fn")
            app = self.submit(user, body.get("name", "rest-app"), main_fn)
            return {"app_id": app.app_id, "state": app.state, "result": app.result}
        if method == "GET" and path.startswith("/apps/"):
            return {"state": self.status(user, path.split("/")[-1])}
        if method == "DELETE" and path.startswith("/apps/"):
            self.cancel(user, path.split("/")[-1])
            return {"state": "KILLED"}
        if method == "GET" and path == "/apps":
            return {"apps": [a.app_id for a in self.apps_of(user)]}
        raise SparkSubmitError("unsupported request %s %s" % (method, path))


def spark_submit(dispatcher: SparkDispatcher, user: str, app_name: str, main_fn) -> SparkApp:
    """The ``spark_submit`` client wrapper over the REST interface."""
    response = dispatcher.rest_request(
        "POST", "/apps", user, {"name": app_name, "main_fn": main_fn}
    )
    app = dispatcher.manager_for(user).apps[response["app_id"]]
    return app
