"""A small DataFrame API over RDDs of row dicts (Spark SQL flavour)."""

from __future__ import annotations

from repro.errors import SparkJobError
from repro.spark.rdd import RDD


class SparkDataFrame:
    """Rows are dicts; transformations stay lazy through the backing RDD."""

    def __init__(self, rdd: RDD, columns: list[str]):
        self.rdd = rdd
        self.columns = list(columns)

    # -- transformations --------------------------------------------------------

    def select(self, *names: str) -> "SparkDataFrame":
        missing = [n for n in names if n not in self.columns]
        if missing:
            raise SparkJobError("unknown columns %s" % missing)
        wanted = list(names)
        return SparkDataFrame(
            self.rdd.map(lambda row, w=wanted: {k: row[k] for k in w}), wanted
        )

    def with_column(self, name: str, fn) -> "SparkDataFrame":
        def add(row, name=name, fn=fn):
            out = dict(row)
            out[name] = fn(row)
            return out

        columns = self.columns + ([name] if name not in self.columns else [])
        return SparkDataFrame(self.rdd.map(add), columns)

    def where(self, fn) -> "SparkDataFrame":
        return SparkDataFrame(self.rdd.filter(fn), self.columns)

    filter = where

    def join(self, other: "SparkDataFrame", on: str) -> "SparkDataFrame":
        left = self.rdd.map(lambda row, k=on: (row[k], row))
        right = other.rdd.map(lambda row, k=on: (row[k], row))

        def merge(kv):
            _, (l, r) = kv
            merged = dict(r)
            merged.update(l)
            return merged

        columns = self.columns + [c for c in other.columns if c not in self.columns]
        return SparkDataFrame(left.join(right).map(merge), columns)

    def group_by(self, *keys: str) -> "GroupedFrame":
        return GroupedFrame(self, list(keys))

    # -- actions -----------------------------------------------------------------

    def collect(self) -> list[dict]:
        return self.rdd.collect()

    def count(self) -> int:
        return self.rdd.count()

    def take(self, n: int) -> list[dict]:
        return self.rdd.take(n)

    def to_rows(self) -> list[tuple]:
        return [tuple(row[c] for c in self.columns) for row in self.collect()]


class GroupedFrame:
    """Result of ``group_by``: supports agg with named reducers."""

    _AGGS = {"sum", "count", "min", "max", "avg"}

    def __init__(self, frame: SparkDataFrame, keys: list[str]):
        self.frame = frame
        self.keys = keys

    def agg(self, **aggregates: str) -> SparkDataFrame:
        """e.g. ``g.agg(total="sum:amount", n="count")``."""
        specs = []
        for alias, spec in aggregates.items():
            if ":" in spec:
                func, column = spec.split(":", 1)
            else:
                func, column = spec, None
            func = func.lower()
            if func not in self._AGGS:
                raise SparkJobError("unknown aggregate %r" % func)
            specs.append((alias, func, column))
        keys = self.keys

        def to_state(row):
            key = tuple(row[k] for k in keys)
            state = []
            for _, func, column in specs:
                value = row[column] if column else None
                if func == "count":
                    state.append(1)
                elif func == "avg":
                    state.append((value if value is not None else 0.0,
                                  0 if value is None else 1))
                else:
                    state.append(value)
            return (key, state)

        def combine(a, b):
            out = []
            for (alias, func, column), x, y in zip(specs, a, b):
                if func == "count":
                    out.append(x + y)
                elif func == "sum":
                    out.append((x or 0) + (y or 0))
                elif func == "min":
                    out.append(x if (y is None or (x is not None and x <= y)) else y)
                elif func == "max":
                    out.append(x if (y is None or (x is not None and x >= y)) else y)
                else:  # avg: (sum, count)
                    out.append((x[0] + y[0], x[1] + y[1]))
            return out

        def finalise(kv):
            key, state = kv
            row = dict(zip(keys, key))
            for (alias, func, _), value in zip(specs, state):
                if func == "avg":
                    total, count = value
                    row[alias] = total / count if count else None
                else:
                    row[alias] = value
            return row

        rdd = self.frame.rdd.map(to_state).reduce_by_key(combine).map(finalise)
        return SparkDataFrame(rdd, keys + [alias for alias, _, _ in specs])
