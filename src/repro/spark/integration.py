"""dashDB <-> Spark integration: collocated fetch with pushdown.

Paper II.D.2 / Fig. 7: "for each database node an own Apache Spark cluster
is available which fetches the database data collocated" and "to optimize
the transfer an additional where clause could be pushed to the database to
transfer only the data really needed".  This module builds RDDs whose
partitions map 1:1 onto the cluster's shards:

* **collocated** mode reads each shard's slice directly on its node (one
  local transfer per shard);
* **remote** mode routes every row through the coordinator (the naive
  JDBC-to-one-endpoint pattern), which the locality benchmark compares
  against.

Transfer accounting (rows and estimated bytes, local vs. remote) feeds the
Figure-7 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.mpp import Cluster
from repro.errors import SparkError
from repro.spark.dataframe import SparkDataFrame
from repro.spark.rdd import RDD, SparkContext

_ROW_BYTES_ESTIMATE = 64


@dataclass
class TransferStats:
    rows_local: int = 0
    rows_remote: int = 0
    bytes_local: int = 0
    bytes_remote: int = 0

    @property
    def remote_fraction(self) -> float:
        total = self.rows_local + self.rows_remote
        return self.rows_remote / total if total else 0.0


class DashDBSparkContext(SparkContext):
    """A SparkContext wired to a dashDB Local cluster."""

    def __init__(self, cluster: Cluster, app_name: str = "dashdb-spark", user: str = "spark"):
        # Colocation (paper II.D): Spark tasks share the cluster's worker
        # pool instead of competing with it.  Safe because table_rdd
        # materialises shard SQL eagerly on the calling thread — Spark
        # tasks themselves never re-enter the scatter path.
        super().__init__(
            app_name,
            default_parallelism=max(2, len(cluster.live_nodes())),
            pool=cluster.pool,
        )
        self.cluster = cluster
        self.user = user
        self.transfer = TransferStats()

    def table_rdd(
        self,
        table_name: str,
        columns: list[str] | None = None,
        where: str | None = None,
        collocated: bool = True,
    ) -> RDD:
        """An RDD over a cluster table, one partition per shard.

        Args:
            table_name: a distributed or replicated cluster table.
            columns: projection (default: all columns).
            where: SQL predicate text pushed into each shard's scan
                ("an additional where clause could be pushed to the
                database"); evaluated on compressed data shard-side.
            collocated: fetch each shard slice locally (True) or drag every
                row through the coordinator (False).
        """
        name = table_name.upper()
        if name not in self.cluster.tables:
            raise SparkError("no cluster table %s" % name)
        projection = ", ".join(columns) if columns else "*"
        sql = "SELECT %s FROM %s" % (projection, name)
        if where:
            sql += " WHERE %s" % where
        replicated = self.cluster.tables[name].replicated
        partitions: list[list] = []
        shard_ids = sorted(self.cluster.shards)
        if replicated:
            shard_ids = shard_ids[:1]  # one copy suffices
        for sid in shard_ids:
            shard = self.cluster.shards[sid]
            session = shard.engine.connect("db2")
            result = shard.engine.execute(sql, session)
            rows = [dict(zip(result.columns, r)) for r in result.rows]
            partitions.append(rows)
            nbytes = len(rows) * _ROW_BYTES_ESTIMATE
            if collocated:
                self.transfer.rows_local += len(rows)
                self.transfer.bytes_local += nbytes
            else:
                # Remote: shard -> coordinator -> Spark (double transfer).
                self.transfer.rows_remote += len(rows)
                self.transfer.bytes_remote += 2 * nbytes
        return self.from_partitions(partitions)

    def table_df(
        self,
        table_name: str,
        columns: list[str] | None = None,
        where: str | None = None,
        collocated: bool = True,
    ) -> SparkDataFrame:
        rdd = self.table_rdd(table_name, columns, where, collocated)
        name = table_name.upper()
        schema = self.cluster.shards[0].engine.catalog.get_table(name).table.schema
        column_names = [c.upper() for c in (columns or schema.column_names)]
        return SparkDataFrame(rdd, column_names)

    def write_table(self, df: SparkDataFrame, table_name: str) -> int:
        """Persist a DataFrame back into the warehouse (object-store /
        streaming ingestion path of paper II.D.3)."""
        rows = df.collect()
        if not rows:
            return 0
        session = self.cluster.connect("db2")
        values = []
        for row in rows:
            rendered = []
            for column in df.columns:
                value = row[column]
                if value is None:
                    rendered.append("NULL")
                elif isinstance(value, str):
                    rendered.append("'%s'" % value.replace("'", "''"))
                else:
                    rendered.append(str(value))
            values.append("(%s)" % ", ".join(rendered))
        columns = ", ".join(df.columns)
        session.execute(
            "INSERT INTO %s (%s) VALUES %s" % (table_name, columns, ", ".join(values))
        )
        return len(rows)
