"""RDDs: partitioned, lazily evaluated, lineage-tracked collections.

The execution model follows Spark's published semantics: transformations
build a lineage graph without computing anything; actions hand the graph to
the :class:`~repro.spark.scheduler.DAGScheduler`, which splits it into
stages at shuffle (wide-dependency) boundaries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import SparkJobError

_rdd_ids = itertools.count(1)


class RDD:
    """A resilient distributed dataset (lineage node)."""

    def __init__(self, context, dep=None, op=None, fn=None, n_partitions=None, data=None):
        self.rdd_id = next(_rdd_ids)
        self.context = context
        self.dep = dep  # parent RDD or None for sources
        self.op = op or "source"
        self.fn = fn
        self.data = data  # source only: list of partitions
        if n_partitions is not None:
            self.n_partitions = n_partitions
        elif dep is not None:
            self.n_partitions = dep.n_partitions
        elif data is not None:
            self.n_partitions = len(data)
        else:
            raise SparkJobError("RDD needs a source or a parent")

    # -- narrow transformations ----------------------------------------------

    def map(self, fn) -> "RDD":
        return RDD(self.context, dep=self, op="map", fn=fn)

    def flat_map(self, fn) -> "RDD":
        return RDD(self.context, dep=self, op="flat_map", fn=fn)

    def filter(self, fn) -> "RDD":
        return RDD(self.context, dep=self, op="filter", fn=fn)

    def map_partitions(self, fn) -> "RDD":
        return RDD(self.context, dep=self, op="map_partitions", fn=fn)

    # -- wide transformations (shuffles) -----------------------------------------

    def group_by_key(self, n_partitions: int | None = None) -> "RDD":
        return RDD(
            self.context,
            dep=self,
            op="group_by_key",
            n_partitions=n_partitions or self.n_partitions,
        )

    def reduce_by_key(self, fn, n_partitions: int | None = None) -> "RDD":
        return RDD(
            self.context,
            dep=self,
            op="reduce_by_key",
            fn=fn,
            n_partitions=n_partitions or self.n_partitions,
        )

    def repartition(self, n_partitions: int) -> "RDD":
        return RDD(self.context, dep=self, op="repartition", n_partitions=n_partitions)

    def distinct(self) -> "RDD":
        return (
            self.map(lambda x: (x, None))
            .reduce_by_key(lambda a, b: a)
            .map(lambda kv: kv[0])
        )

    def join(self, other: "RDD") -> "RDD":
        """Inner join of two key-value RDDs (a wide co-group)."""
        left = self.map(lambda kv: (kv[0], ("L", kv[1])))
        right = other.map(lambda kv: (kv[0], ("R", kv[1])))
        tagged = left.union(right)

        def emit(kv):
            key, values = kv
            lefts = [v for tag, v in values if tag == "L"]
            rights = [v for tag, v in values if tag == "R"]
            return [(key, (l, r)) for l in lefts for r in rights]

        return tagged.group_by_key().flat_map(emit)

    def union(self, other: "RDD") -> "RDD":
        return _UnionRDD(self.context, self, other)

    # -- actions -----------------------------------------------------------------

    def collect(self) -> list:
        partitions = self.context.scheduler.run(self)
        return [item for part in partitions for item in part]

    def count(self) -> int:
        return len(self.collect())

    def take(self, n: int) -> list:
        return self.collect()[:n]

    def reduce(self, fn):
        items = self.collect()
        if not items:
            raise SparkJobError("reduce of an empty RDD")
        out = items[0]
        for item in items[1:]:
            out = fn(out, item)
        return out

    def sum(self):
        return sum(self.collect())

    def collect_partitions(self) -> list[list]:
        return self.context.scheduler.run(self)


class _UnionRDD(RDD):
    """Union keeps both parents (the only multi-parent lineage node)."""

    def __init__(self, context, left: RDD, right: RDD):
        self.rdd_id = next(_rdd_ids)
        self.context = context
        self.dep = left
        self.dep2 = right
        self.op = "union"
        self.fn = None
        self.data = None
        self.n_partitions = left.n_partitions + right.n_partitions


class SparkContext:
    """Entry point: creates source RDDs and owns the scheduler."""

    def __init__(self, app_name: str = "app", default_parallelism: int = 4,
                 tracer=None, pool=None):
        from repro.spark.scheduler import DAGScheduler

        self.app_name = app_name
        self.default_parallelism = default_parallelism
        self.scheduler = DAGScheduler(tracer=tracer, pool=pool)

    def parallelize(self, items, n_partitions: int | None = None) -> RDD:
        items = list(items)
        n = n_partitions or self.default_parallelism
        n = max(1, min(n, max(len(items), 1)))
        size = -(-len(items) // n) if items else 1
        partitions = [items[i * size : (i + 1) * size] for i in range(n)]
        return RDD(self, data=partitions)

    def from_partitions(self, partitions: list[list]) -> RDD:
        return RDD(self, data=[list(p) for p in partitions])
