"""The DAG scheduler: stage splitting at shuffle boundaries.

Walks an RDD's lineage, groups consecutive narrow transformations into
stages, and materialises a shuffle (hash partitioning by key) between
stages — Spark's execution model in miniature.  Metrics (stages, tasks,
shuffled records) are recorded for tests and the locality benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SparkJobError
from repro.parallel import WorkerPool

_WIDE_OPS = {"group_by_key", "reduce_by_key", "repartition"}


@dataclass
class JobMetrics:
    stages: int = 0
    tasks: int = 0
    shuffled_records: int = 0
    input_records: int = 0
    #: Per-stage records: {"kind": "narrow"|"shuffle"|"source", "op": ...,
    #: "tasks": int, "records": int}, in execution order.
    stage_metrics: list = field(default_factory=list)


class DAGScheduler:
    """Executes lineage graphs; one instance per SparkContext.

    Args:
        tracer: optional :class:`~repro.monitor.tracer.Tracer`; when given
            (and enabled), each job runs under a ``spark.job`` span with one
            child span per stage.
        pool: optional :class:`~repro.parallel.pool.WorkerPool` shared with
            an embedding engine (the dashDB integration passes the cluster
            scatter pool).  The default pool resolves its width from
            ``REPRO_PARALLELISM`` and runs inline (serial) at width 1.
            Ready tasks of a stage — one per partition — run concurrently;
            partition results always gather in partition order, so job
            output is identical at any width.
    """

    def __init__(self, tracer=None, pool: WorkerPool | None = None):
        self.last_metrics = JobMetrics()
        self.tracer = tracer
        self.pool = pool if pool is not None else WorkerPool(name="spark")

    def run(self, rdd) -> list[list]:
        self.last_metrics = JobMetrics()
        if self.tracer is not None and self.tracer.enabled:
            with self.tracer.span("spark.job", op=rdd.op) as job:
                result = self._compute(rdd)
                self.tracer.record(
                    "spark.stages",
                    0.0,
                    parent=job,
                    stages=self.last_metrics.stages,
                    tasks=self.last_metrics.tasks,
                    shuffled_records=self.last_metrics.shuffled_records,
                )
            return result
        return self._compute(rdd)

    def _note_stage(self, kind: str, op: str, tasks: int, records: int) -> None:
        self.last_metrics.stage_metrics.append(
            {"kind": kind, "op": op, "tasks": tasks, "records": records}
        )

    # -- recursive lineage evaluation ------------------------------------------

    def _compute(self, rdd) -> list[list]:
        op = rdd.op
        if op == "source":
            self.last_metrics.stages += 1
            self.last_metrics.tasks += rdd.n_partitions
            records = sum(len(p) for p in rdd.data)
            self.last_metrics.input_records += records
            self._note_stage("source", op, rdd.n_partitions, records)
            return [list(p) for p in rdd.data]
        if op == "union":
            left = self._compute(rdd.dep)
            right = self._compute(rdd.dep2)
            return left + right
        parent = self._compute(rdd.dep)
        if op in _WIDE_OPS:
            return self._shuffle(rdd, parent)
        # Narrow op: per-partition tasks, pipelined within the parent stage.
        # All ready tasks dispatch onto the worker pool; gather order is
        # partition order, so output is independent of the pool width.
        self.last_metrics.tasks += len(parent)
        self._note_stage("narrow", op, len(parent), sum(len(p) for p in parent))
        fn = rdd.fn
        if op == "map":
            task = lambda part: [fn(x) for x in part]
        elif op == "filter":
            task = lambda part: [x for x in part if fn(x)]
        elif op == "flat_map":
            task = lambda part: [y for x in part for y in fn(x)]
        elif op == "map_partitions":
            task = lambda part: list(fn(part))
        else:
            raise SparkJobError("unknown RDD op %r" % op)
        return self.pool.map(task, parent, label="spark:%s" % op)

    def _shuffle(self, rdd, parent: list[list]) -> list[list]:
        """Hash-partition parent output by key into the child's partitions."""
        self.last_metrics.stages += 1
        n_out = rdd.n_partitions
        buckets: list[list] = [[] for _ in range(n_out)]
        records = 0
        if rdd.op == "repartition":
            i = 0
            for part in parent:
                for item in part:
                    buckets[i % n_out].append(item)
                    i += 1
            records = i
        else:
            for part in parent:
                for key, value in part:
                    buckets[hash(key) % n_out].append((key, value))
                    records += 1
        self.last_metrics.shuffled_records += records
        self.last_metrics.tasks += n_out
        self._note_stage("shuffle", rdd.op, n_out, records)
        if rdd.op == "repartition":
            return buckets
        # Reduce tasks (one per output partition) run on the worker pool;
        # within a bucket the records keep their arrival order, so grouping
        # and reduction are deterministic at any pool width.
        if rdd.op == "group_by_key":
            def group_bucket(bucket):
                groups: dict = {}
                for key, value in bucket:
                    groups.setdefault(key, []).append(value)
                return list(groups.items())

            return self.pool.map(group_bucket, buckets, label="spark:group")

        def reduce_bucket(bucket):
            groups: dict = {}
            for key, value in bucket:
                if key in groups:
                    groups[key] = rdd.fn(groups[key], value)
                else:
                    groups[key] = value
            return list(groups.items())

        return self.pool.map(reduce_bucket, buckets, label="spark:reduce")
