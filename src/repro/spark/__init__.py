"""Mini-Spark: the integrated analytics engine of paper section II.D.

A faithful-in-structure reimplementation of the Spark execution model
(partitioned RDDs, lazy transformations, narrow/wide dependencies, stage
splitting at shuffle boundaries) plus the dashDB-specific integration the
paper contributes: a per-user Dispatcher, collocated per-shard data fetch
with predicate pushdown, stored-procedure / REST-style submission, and
prepackaged analytics (GLM).
"""

from repro.spark.dataframe import SparkDataFrame
from repro.spark.dispatcher import SparkApp, SparkClusterManager, SparkDispatcher
from repro.spark.integration import DashDBSparkContext, TransferStats
from repro.spark.mllib import GLM, KMeansModel, train_glm, train_kmeans
from repro.spark.rdd import RDD, SparkContext
from repro.spark.scheduler import DAGScheduler, JobMetrics

__all__ = [
    "DAGScheduler",
    "DashDBSparkContext",
    "GLM",
    "JobMetrics",
    "KMeansModel",
    "RDD",
    "SparkApp",
    "SparkClusterManager",
    "SparkContext",
    "SparkDataFrame",
    "SparkDispatcher",
    "TransferStats",
    "train_glm",
    "train_kmeans",
]
