"""``repro-verify`` — one front door for the verification toolbox.

Subcommands map onto the four verification surfaces (see the README
verification matrix):

* ``repro-verify lint [paths...]``  — reprolint, per-file invariant rules
* ``repro-verify flow [paths...]``  — reproflow, interprocedural protocol
  analysis
* ``repro-verify plan``             — plan-verifier sweep over a demo
  in-memory database (every planned statement must verify clean)
* ``repro-verify mc --all``         — explicit-state model checker +
  lock-order analysis
* ``repro-verify mutate``           — repromutate, callgraph-guided
  mutation analysis scoring the battery's kill rate
* ``repro-verify impact <spec>``    — test files statically reaching
  ``<module>::<symbol>``

``--json`` before the subcommand switches every tool to its JSON report;
each tool also accepts its own flags after the subcommand name
(``repro-verify mc --scenario commit-vs-checkpoint``).  Exit status is
non-zero whenever the selected tool found a problem, so any subcommand
can gate CI directly.
"""

from __future__ import annotations

import argparse
import json
import sys

#: The statements the ``plan`` sweep compiles and verifies.  Deliberately
#: spans every operator family the verifier has rules for: scans with
#: pushdown, joins, grouped and global aggregation, sort/limit, DISTINCT
#: and expression projection.
PLAN_SWEEP_CORPUS = (
    "SELECT a, b FROM t WHERE a > 10",
    "SELECT a + b AS s, d FROM t WHERE c = 'v1'",
    "SELECT c, SUM(a) AS total, COUNT(*) AS n FROM t GROUP BY c",
    "SELECT MAX(d) FROM t",
    "SELECT DISTINCT c FROM t",
    "SELECT a FROM t ORDER BY b DESC FETCH FIRST 5 ROWS ONLY",
    "SELECT t.a, dim.w FROM t JOIN dim ON t.c = dim.c WHERE dim.w > 20",
    "SELECT c, COUNT(*) AS n FROM t GROUP BY c ORDER BY n DESC",
)


def _plan_sweep(as_json: bool) -> int:
    """Plan the demo corpus against an in-memory engine and verify every
    operator tree statically — the smoke-test twin of the full sweep in
    ``tests/test_verify_plan.py``."""
    from repro.database import Database
    from repro.sql.parser import parse_statement
    from repro.verify.plan import verify_plan

    db = Database()
    session = db.connect("db2")
    session.execute(
        "CREATE TABLE t (a INT, b INT, c VARCHAR(4), d DECIMAL(8,2))"
    )
    session.execute("CREATE TABLE dim (c VARCHAR(4) PRIMARY KEY, w INT)")
    session.execute(
        "INSERT INTO t VALUES "
        + ", ".join(
            "(%d, %d, 'v%d', %d.50)" % (i, i * 3 % 17, i % 4, i)
            for i in range(64)
        )
    )
    session.execute(
        "INSERT INTO dim VALUES "
        + ", ".join("('v%d', %d)" % (i, i * 10) for i in range(4))
    )

    report = []
    failed = False
    for sql in PLAN_SWEEP_CORPUS:
        db.last_scans = []
        planned = db._planner(session).plan(parse_statement(sql))
        issues = verify_plan(planned, database=db)
        report.append({
            "sql": sql,
            "issues": [
                {"operator": i.operator, "code": i.code, "message": i.message}
                for i in issues
            ],
        })
        if issues:
            failed = True

    if as_json:
        print(json.dumps(
            {"statements": report,
             "failed": sum(1 for r in report if r["issues"])},
            indent=2,
        ))
    else:
        for entry in report:
            status = "ok" if not entry["issues"] else "ISSUES"
            print("%-8s %s" % (status, entry["sql"]))
            for issue in entry["issues"]:
                print("         [%s] %s: %s" % (
                    issue["code"], issue["operator"], issue["message"]
                ))
        print(
            "repro-verify plan: %d statement(s), %d with issues"
            % (len(report), sum(1 for r in report if r["issues"])),
            file=sys.stderr,
        )
    return 1 if failed else 0


#: Subcommand -> one-line purpose, also the dispatch table order.
COMMANDS = {
    "lint": "reprolint per-file invariant rules",
    "flow": "reproflow interprocedural protocol analysis",
    "plan": "plan-verifier sweep over a demo database",
    "mc": "model checker + lock-order analysis",
    "mutate": "callgraph-guided mutation analysis",
    "impact": "test files statically reaching a symbol",
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Split at the subcommand token by hand: everything after it belongs to
    # the delegated tool verbatim (argparse.REMAINDER chokes when the first
    # passthrough token looks like an option, e.g. `mc --list`).
    command = None
    rest: list[str] = []
    head = argv
    for i, token in enumerate(argv):
        if token in COMMANDS:
            head, command, rest = argv[:i], token, argv[i + 1:]
            break

    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="verification toolbox front door (lint / flow / plan / "
                    "mc / mutate / impact); arguments after the subcommand "
                    "are passed to the tool (see `repro-verify <cmd> "
                    "--help`)",
    )
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the selected tool's JSON report")
    parser.add_argument(
        "command", choices=sorted(COMMANDS),
        metavar="{%s}" % ",".join(COMMANDS),
        help="; ".join("%s: %s" % kv for kv in COMMANDS.items()),
    )
    args = parser.parse_args(head + ([command] if command else []))

    if args.as_json and "--json" not in rest:
        rest.append("--json")

    if args.command == "lint":
        from repro.verify.lint import main as lint_main

        return lint_main(rest)
    if args.command == "flow":
        from repro.verify.flow import main as flow_main

        return flow_main(rest)
    if args.command == "mc":
        from repro.verify.mc.__main__ import main as mc_main

        return mc_main(rest)
    if args.command == "mutate":
        from repro.verify.mutate.__main__ import main as mutate_main

        return mutate_main(rest)
    if args.command == "impact":
        from repro.verify.mutate.__main__ import impact_main

        return impact_main(rest)
    return _plan_sweep(args.as_json)


if __name__ == "__main__":
    # Re-import under the canonical module name so shared registries
    # (lint rules) are the ones library imports populated.
    from repro.verify.cli import main as _canonical_main

    raise SystemExit(_canonical_main())
