"""The repo-specific reprolint rules.

Each rule statically enforces one of the engine's cross-cutting glue
invariants (the regimes PRs 1–3 introduced but nothing checked):

* ``wall-clock`` — engine/cluster/durability/database/storage code charges
  the *simulated* clock; reading the machine clock there silently breaks
  deterministic benchmarks and the cost model.
* ``unseeded-random`` — all randomness outside :mod:`repro.util.rng` must
  derive from an explicit seed, or differential runs stop reproducing.
* ``lock-discipline`` — attributes mutated inside callables submitted to a
  :class:`~repro.parallel.pool.WorkerPool` (or an executor) must be
  guarded by a declared lock (a ``with <...lock...>:`` block) or appear in
  the module/class ``_THREAD_CONFINED`` registry.
* ``broad-except`` — ``except Exception:`` / bare ``except:`` handlers
  that do not re-raise silently swallow engine bugs; the intentional ones
  (torn-tail tolerance) must carry a justified suppression.
* ``stale-suppression`` — a ``lint-ok`` comment naming a rule that no
  longer fires on its line is itself a finding (full runs only; the
  detection lives in the framework since it needs every rule's output).
* ``durability-logging`` — demoted to a registered no-op: reproflow's
  interprocedural ``write-protocol`` rule (``python -m repro.verify.flow``)
  now enforces mutation ⇒ WAL append + version bump + touched-table
  recording across helper boundaries, so the per-function check would
  only double-report.
* ``lock-order`` — lexically nested lock acquisitions must follow the
  declared global lock order (see :mod:`repro.verify.mc.lockorder`); an
  inversion is half of an ABBA deadlock.
* ``raw-lock`` — engine code under ``repro/`` must create locks through
  ``sanitizer.make_lock``; a bare ``threading.Lock()`` is invisible to the
  lockset sanitizer and the model checker.
"""

from __future__ import annotations

import ast

from repro.verify.lint import FileContext, rule

# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _imported_names(tree: ast.Module, module: str) -> set[str]:
    """Names bound by ``from <module> import X [as Y]`` at any level."""
    bound: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                bound.add(alias.asname or alias.name)
    return bound


def _module_imported(tree: ast.Module, module: str) -> set[str]:
    """Aliases under which ``import <module>`` binds the module."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return aliases


# ---------------------------------------------------------------------------
# wall-clock
# ---------------------------------------------------------------------------

#: time-module functions that read the machine clock.
_TIME_FNS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "thread_time",
    "thread_time_ns",
}
#: datetime accessors that read the machine clock.
_DATETIME_FNS = {"now", "today", "utcnow"}


@rule(
    "wall-clock",
    "engine/cluster/durability code must charge the sim clock, "
    "not read the machine clock",
)
def check_wall_clock(ctx: FileContext):
    if ctx.in_package("verify"):
        # Verification tooling measures *real* wall time by design
        # (mutation budgets, subprocess timeouts); only the simulated
        # engine subsystems must charge the sim clock.  Matters because
        # in_package matches basenames too: verify/mutate/engine.py
        # would otherwise collide with the engine/ scope.
        return
    if not ctx.in_package(
        "engine", "cluster", "durability", "database", "storage"
    ):
        return
    time_aliases = _module_imported(ctx.tree, "time")
    from_time = _imported_names(ctx.tree, "time") & _TIME_FNS
    datetime_aliases = _module_imported(ctx.tree, "datetime")
    from_datetime = _imported_names(ctx.tree, "datetime")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        parts = name.split(".")
        if len(parts) == 2 and parts[0] in time_aliases and parts[1] in _TIME_FNS:
            yield node.lineno, (
                "wall-clock read %s() in sim-clock-charged code "
                "(charge a SimClock instead)" % name
            )
        elif len(parts) == 1 and parts[0] in from_time:
            yield node.lineno, (
                "wall-clock read %s() in sim-clock-charged code "
                "(charge a SimClock instead)" % name
            )
        elif (
            len(parts) == 3
            and parts[0] in datetime_aliases
            and parts[1] in ("datetime", "date")
            and parts[2] in _DATETIME_FNS
        ):
            yield node.lineno, (
                "wall-clock read %s() in sim-clock-charged code "
                "(route through the engine clock)" % name
            )
        elif (
            len(parts) == 2
            and parts[0] in from_datetime
            and parts[0] in ("datetime", "date")
            and parts[1] in _DATETIME_FNS
        ):
            yield node.lineno, (
                "wall-clock read %s() in sim-clock-charged code "
                "(route through the engine clock)" % name
            )


# ---------------------------------------------------------------------------
# unseeded-random
# ---------------------------------------------------------------------------

#: stdlib ``random`` module functions drawing from the global state.
_STDLIB_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "sample",
    "shuffle", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "seed", "getrandbits", "triangular",
}


def _is_none(node: ast.AST | None) -> bool:
    return node is None or (
        isinstance(node, ast.Constant) and node.value is None
    )


@rule(
    "unseeded-random",
    "randomness outside util/rng must derive from an explicit seed",
)
def check_unseeded_random(ctx: FileContext):
    if ctx.module.endswith("repro/util/rng.py"):
        return
    random_aliases = _module_imported(ctx.tree, "random")
    from_random = _imported_names(ctx.tree, "random") & _STDLIB_RANDOM_FNS
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        parts = name.split(".")
        # numpy global-state access: np.random.random(), numpy.random.X().
        if len(parts) >= 3 and parts[-2] == "random" and parts[0] in (
            "np", "numpy"
        ):
            fn = parts[-1]
            if fn in ("Generator", "SeedSequence", "BitGenerator"):
                continue
            if fn in ("default_rng", "RandomState"):
                if not node.args or _is_none(node.args[0]):
                    yield node.lineno, (
                        "%s() without a seed: derive the generator via "
                        "repro.util.rng.derive_rng" % name
                    )
                continue
            yield node.lineno, (
                "np.random.%s uses numpy's global RNG state: derive a "
                "generator via repro.util.rng.derive_rng" % fn
            )
        # stdlib global-state access: random.random(), shuffle(), ...
        elif (
            len(parts) == 2
            and parts[0] in random_aliases
            and parts[1] in _STDLIB_RANDOM_FNS
        ):
            yield node.lineno, (
                "%s() uses the stdlib global RNG: derive a generator via "
                "repro.util.rng.derive_rng" % name
            )
        elif len(parts) == 1 and parts[0] in from_random:
            yield node.lineno, (
                "%s() uses the stdlib global RNG: derive a generator via "
                "repro.util.rng.derive_rng" % name
            )


# ---------------------------------------------------------------------------
# broad-except
# ---------------------------------------------------------------------------


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names = []
    if isinstance(handler.type, ast.Tuple):
        names = [dotted_name(e) for e in handler.type.elts]
    else:
        names = [dotted_name(handler.type)]
    return any(n in ("Exception", "BaseException") for n in names)


@rule(
    "broad-except",
    "broad except handlers must re-raise or carry a justified suppression",
)
def check_broad_except(ctx: FileContext):
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad(node):
            continue
        if any(isinstance(sub, ast.Raise) for sub in ast.walk(node)):
            continue
        what = "bare except:" if node.type is None else "except %s:" % (
            dotted_name(node.type)
            if not isinstance(node.type, ast.Tuple) else "(...)"
        )
        yield node.lineno, (
            "%s swallows errors without re-raising; narrow the type or "
            "justify with a lint-ok suppression" % what
        )


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------

#: container methods that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard",
}


def _thread_confined(tree: ast.Module) -> set[str]:
    """Attribute names registered thread-confined via ``_THREAD_CONFINED``
    set/tuple literals (module- or class-level)."""
    confined: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            if any(t.id == "_THREAD_CONFINED" for t in targets) and isinstance(
                node.value, (ast.Set, ast.Tuple, ast.List)
            ):
                for elt in node.value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(
                        elt.value, str
                    ):
                        confined.add(elt.value)
    return confined


def _local_names(fn: ast.FunctionDef | ast.Lambda) -> set[str]:
    """Names bound inside the callable (params + assignments + loops)."""
    args = fn.args
    local = {
        a.arg
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
    }
    if args.vararg:
        local.add(args.vararg.arg)
    if args.kwarg:
        local.add(args.kwarg.arg)
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            local.add(sub.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    local.add(node.target.id)
            elif isinstance(node, ast.For):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        local.add(sub.id)
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None:
                    for sub in ast.walk(node.optional_vars):
                        if isinstance(sub, ast.Name):
                            local.add(sub.id)
            elif isinstance(node, ast.comprehension):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        local.add(sub.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local.add(node.name)
    return local


def _root_name(node: ast.AST) -> str | None:
    """The base Name of an attribute/subscript chain (``a`` in ``a.b[0].c``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _submitted_callables(tree: ast.Module):
    """Callables handed to ``<pool>.map(fn, ...)`` / ``<executor>.submit(fn, ...)``.

    Name references resolve against every function/lambda definition with
    that name in the module (a deliberate over-approximation: a morsel
    callable shadowing another's name is its own smell).
    """
    defs: dict[str, list] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            defs.setdefault(node.name, []).append(node)
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    defs.setdefault(target.id, []).append(node.value)
    seen: list = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        if node.func.attr not in ("map", "submit") or not node.args:
            continue
        candidate = node.args[0]
        if isinstance(candidate, ast.Lambda):
            seen.append((candidate, "<lambda>"))
        elif isinstance(candidate, ast.Name):
            for found in defs.get(candidate.id, []):
                seen.append((found, candidate.id))
    return seen


def _guarded_by_lock(path: list[ast.AST]) -> bool:
    """True when any enclosing ``with`` context manager names a lock."""
    for ancestor in path:
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                name = dotted_name(item.context_expr)
                if isinstance(item.context_expr, ast.Call):
                    name = dotted_name(item.context_expr.func)
                if name is not None and "lock" in name.rsplit(".", 1)[-1].lower():
                    return True
    return False


def _mutations(fn: ast.FunctionDef | ast.Lambda, local: set[str]):
    """Yield (lineno, attr-or-target, kind) for shared-state mutations."""

    def walk(node: ast.AST, path: list[ast.AST]):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)) \
                and node is not fn:
            return  # nested callables are analyzed on their own submission
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                root = _root_name(target)
                if root is None or root in local:
                    continue
                if isinstance(target, ast.Attribute):
                    if not _guarded_by_lock(path):
                        yield node.lineno, "%s.%s" % (root, target.attr), "write"
                elif isinstance(target, ast.Subscript):
                    if not _guarded_by_lock(path):
                        yield node.lineno, "%s[...]" % root, "store"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_METHODS:
                root = _root_name(node.func.value)
                if root is not None and root not in local:
                    if not _guarded_by_lock(path):
                        yield node.lineno, "%s.%s()" % (root, node.func.attr), "call"
        for child in ast.iter_child_nodes(node):
            yield from walk(child, path + [node])

    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        yield from walk(stmt, [])


@rule(
    "lock-discipline",
    "shared state mutated in pool-submitted callables needs a declared "
    "lock or a _THREAD_CONFINED registration",
)
def check_lock_discipline(ctx: FileContext):
    confined = _thread_confined(ctx.tree)
    reported: set[tuple[int, str]] = set()
    for fn, label in _submitted_callables(ctx.tree):
        local = _local_names(fn)
        for lineno, target, kind in _mutations(fn, local):
            attr = target.split(".")[-1].rstrip("()")
            if attr in confined or target in confined:
                continue
            key = (lineno, target)
            if key in reported:
                continue
            reported.add(key)
            yield lineno, (
                "%s of %s inside pool-submitted callable %r has no "
                "guarding lock (use 'with <lock>:' or register the field "
                "in _THREAD_CONFINED)" % (kind, target, label)
            )


# ---------------------------------------------------------------------------
# durability-logging (demoted)
# ---------------------------------------------------------------------------

#: ColumnTable methods that mutate durable table state.  Retained for
#: reference/tests; the interprocedural analyzer owns the live check.
_TABLE_MUTATORS = {"insert_rows", "apply_deletes", "truncate"}


@rule(
    "durability-logging",
    "superseded by reproflow's interprocedural `write-protocol` rule "
    "(python -m repro.verify.flow src)",
)
def check_durability_logging(ctx: FileContext):
    """Demoted to a registered no-op.

    The per-function check went blind the moment a mutation or its WAL
    hook moved into a helper, and double-reported whatever reproflow's
    transitive ``write-protocol`` rule already caught.  The rule name
    stays registered so ``--rule durability-logging`` and existing
    ``lint-ok: durability-logging`` suppressions keep working; the actual
    enforcement — mutation implies WAL append + version bump +
    touched-table recording, checked over the project call graph — lives
    in :mod:`repro.verify.flow.protocols`.
    """
    return iter(())


# ---------------------------------------------------------------------------
# stale-suppression (framework-hosted)
# ---------------------------------------------------------------------------


@rule(
    "stale-suppression",
    "lint-ok comment names a rule that no longer fires on its line "
    "(full runs only)",
)
def check_stale_suppression(ctx: FileContext):
    """Registered for ``--list-rules`` and suppression routing only.

    The actual detection is :func:`repro.verify.lint._check_stale_suppressions`
    in the framework: staleness of a suppression for rule *R* is only
    decidable after *R* itself has run over the file, so the check has to
    sit downstream of the whole registry rather than inside any one rule.
    It also only runs on full sweeps — under ``--rule`` selection an
    unselected rule never got the chance to fire, and every suppression
    of it would be falsely flagged.
    """
    return iter(())


# ---------------------------------------------------------------------------
# lock-order
# ---------------------------------------------------------------------------


@rule(
    "lock-order",
    "nested lock acquisitions must follow the declared global lock order",
)
def check_lock_order(ctx: FileContext):
    from repro.verify.mc import lockorder

    for edge in lockorder.static_edges_for_source(ctx.source, ctx.path):
        message = lockorder.rank_violation(edge.outer, edge.inner)
        if message is None:
            continue
        try:
            line = int(edge.site.rsplit(":", 1)[1])
        except (IndexError, ValueError):
            line = 1
        yield line, message


# ---------------------------------------------------------------------------
# raw-lock
# ---------------------------------------------------------------------------


@rule(
    "raw-lock",
    "engine code must create locks via sanitizer.make_lock, not "
    "threading.Lock/RLock",
)
def check_raw_lock(ctx: FileContext):
    # Scope: engine source under repro/, except repro/verify/ itself (the
    # sanitizer and the model checker implement the tracking and must own
    # raw primitives).
    if "repro/" not in ctx.module or "repro/verify/" in ctx.module:
        return
    aliases = _module_imported(ctx.tree, "threading")
    from_threading = _imported_names(ctx.tree, "threading") & {"Lock", "RLock"}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        parts = name.split(".")
        if (
            len(parts) == 2
            and parts[0] in aliases
            and parts[1] in ("Lock", "RLock")
        ) or (len(parts) == 1 and parts[0] in from_threading):
            yield node.lineno, (
                "%s() bypasses sanitizer.make_lock: the lockset sanitizer "
                "and the model checker cannot track this lock" % name
            )
