"""The model-checking scenario registry: small concurrent engine workloads.

Each scenario builds a *fresh* engine (statelessness is what makes replay
deterministic), declares two-or-three threads of real engine work, and an
oracle over the final state.  The explorer runs the scenario under every
interleaving (up to the preemption bound and budget); any interleaving
that deadlocks, raises, or fails the oracle is a counterexample whose
schedule replays exactly.

Crash scenarios additionally model failover: a crash pseudo-thread is
enabled at every explored state, and its body crash-restarts the engine
and checks WAL prefix consistency — recovery must reproduce exactly the
durably committed transactions, wherever the crash landed.
"""

from __future__ import annotations

from repro.database import Database
from repro.durability import DurabilityManager
from repro.durability.wal import committed_transactions
from repro.errors import SQLError, TransactionConflictError
from repro.mvcc import ANCIENT_TXID, visible_rows
from repro.sql.parser import parse_statement
from repro.storage.filesystem import ClusterFileSystem


class Scenario:
    """Base class: subclasses define name/description and the four hooks."""

    name = "scenario"
    description = ""
    #: True adds the crash pseudo-thread (exploring crash-at-every-state).
    crashes = False

    def setup(self) -> dict:
        raise NotImplementedError

    def thread_specs(self, state: dict) -> list:
        raise NotImplementedError

    def crash(self, state: dict) -> None:
        """Crash body (recovery + oracle), for ``crashes = True``."""

    def check(self, state: dict) -> None:
        """Final-state oracle for runs that completed without crashing."""


def _make_db(group_commit: int = 1, parallelism: int | None = None) -> dict:
    fs = ClusterFileSystem()
    manager = DurabilityManager(fs, path="db", group_commit=group_commit)
    db = Database(name="MC", durability=manager, parallelism=parallelism)
    return {"db": db, "fs": fs, "manager": manager}


def _rows(db, sql: str):
    return db.connect().query(sql)


def _count(db, table: str) -> int:
    return int(_rows(db, "SELECT COUNT(*) FROM %s" % table)[0][0])


def _durable_insert_counts(manager) -> dict:
    """Rows per table in the durable, committed portion of the WAL."""
    counts: dict[str, int] = {}
    for _txid, ops in committed_transactions(manager.wal.records()):
        for record in ops:
            if record.kind == "insert":
                (_schema, table), payload = record.payload
                counts[table] = counts.get(table, 0) + len(payload)
    return counts


class ConcurrentInsertCommit(Scenario):
    """Two sessions insert into their own tables concurrently.

    Oracles: both rows land; the statement counter advances by exactly two
    (no lost update); and each WAL transaction carries only its own
    session's ops (the cross-session op-attribution bug this scenario was
    built to catch: a shared statement buffer let one session's commit
    claim — or one session's abort drop — another session's redo ops).
    """

    name = "concurrent-insert-commit"
    description = "two sessions insert+commit; WAL attribution + counters"

    def setup(self) -> dict:
        state = _make_db()
        session = state["db"].connect()
        session.execute("CREATE TABLE TA (A INT)")
        session.execute("CREATE TABLE TB (A INT)")
        state["statements_before"] = state["db"].statement_count
        return state

    def thread_specs(self, state: dict) -> list:
        db = state["db"]

        def insert(table):
            def body():
                db.connect().execute(
                    "INSERT INTO %s VALUES (1)" % table
                )
            return body

        return [("sessA", insert("TA")), ("sessB", insert("TB"))]

    def check(self, state: dict) -> None:
        db = state["db"]
        # Read the counter first: the count queries below advance it too.
        advanced = db.statement_count - state["statements_before"]
        assert advanced == 2, (
            "statement counter advanced %d times for 2 statements" % advanced
        )
        assert _count(db, "TA") == 1, "TA lost its insert"
        assert _count(db, "TB") == 1, "TB lost its insert"
        state["manager"].flush()
        for txid, ops in committed_transactions(state["manager"].wal.records()):
            tables = {
                record.payload[0][1]
                for record in ops
                if record.kind == "insert"
            }
            assert len(tables) <= 1, (
                "txn %d mixes ops of tables %s: cross-session attribution"
                % (txid, sorted(tables))
            )


class InsertVsAbort(Scenario):
    """A successful insert races a failing statement (which aborts).

    With a shared statement buffer, the failing session's ``abort()``
    could clear the other session's buffered redo ops, silently committing
    an *empty* transaction — committed data lost after restart.  The
    oracle restarts from durable state alone and requires the insert back.
    """

    name = "insert-vs-abort"
    description = "commit races an aborting statement; no lost redo ops"

    def setup(self) -> dict:
        state = _make_db()
        state["db"].connect().execute("CREATE TABLE TA (A INT)")
        return state

    def thread_specs(self, state: dict) -> list:
        db = state["db"]

        def good():
            db.connect().execute("INSERT INTO TA VALUES (1)")

        def bad():
            try:
                db.connect().execute("INSERT INTO NOPE VALUES (1)")
            except SQLError:
                pass  # expected: unknown table -> statement aborts

        return [("sessA", good), ("sessB", bad)]

    def check(self, state: dict) -> None:
        db = state["db"]
        db.reopen(clean=True)
        assert _count(db, "TA") == 1, (
            "committed insert missing after clean restart (lost redo ops)"
        )


class CommitVsCheckpoint(Scenario):
    """An insert+commit races a fuzzy checkpoint.

    Whatever the interleaving, a clean restart must land on exactly the
    committed state: the checkpoint/WAL hand-off (truncate-through-LSN)
    must never drop the commit or apply it twice.
    """

    name = "commit-vs-checkpoint"
    description = "insert+commit races a fuzzy checkpoint; restart exact"

    def setup(self) -> dict:
        state = _make_db()
        session = state["db"].connect()
        session.execute("CREATE TABLE TA (A INT)")
        session.execute("INSERT INTO TA VALUES (0)")
        return state

    def thread_specs(self, state: dict) -> list:
        db = state["db"]

        def insert():
            db.connect().execute("INSERT INTO TA VALUES (1)")

        def checkpoint():
            db.checkpoint()

        return [("sessA", insert), ("ckpt", checkpoint)]

    def check(self, state: dict) -> None:
        db = state["db"]
        assert _count(db, "TA") == 2
        db.reopen(clean=True)
        assert _count(db, "TA") == 2, (
            "checkpoint/WAL hand-off lost or duplicated a committed insert"
        )


class GroupCommitCrash(Scenario):
    """Failover during group commit: crash enabled at every state.

    Two sessions commit under ``group_commit=4`` (commits buffer in the
    volatile WAL tail until a flush).  The crash pseudo-thread kills the
    engine at an arbitrary explored state; recovery must reproduce exactly
    the durably-flushed committed transactions — no lost durable commit,
    no resurrected unflushed one (WAL prefix consistency).
    """

    name = "group-commit-crash"
    description = "crash at any state during group commit; prefix-exact recovery"
    crashes = True

    def setup(self) -> dict:
        state = _make_db(group_commit=4)
        session = state["db"].connect()
        session.execute("CREATE TABLE TA (A INT)")
        session.execute("CREATE TABLE TB (A INT)")
        state["manager"].flush()  # schema is durable; the race is the DML
        return state

    def thread_specs(self, state: dict) -> list:
        db = state["db"]

        def insert(table):
            def body():
                db.connect().execute(
                    "INSERT INTO %s VALUES (1)" % table
                )
            return body

        return [("sessA", insert("TA")), ("sessB", insert("TB"))]

    def crash(self, state: dict) -> None:
        db = state["db"]
        db.reopen(clean=False)
        expected = _durable_insert_counts(state["manager"])
        for table in ("TA", "TB"):
            want = expected.get(table, 0)
            got = _count(db, table)
            assert got == want, (
                "recovered %s has %d row(s), durable WAL commits say %d"
                % (table, got, want)
            )

    def check(self, state: dict) -> None:
        db = state["db"]
        assert _count(db, "TA") == 1
        assert _count(db, "TB") == 1
        db.reopen(clean=True)
        assert _count(db, "TA") == 1 and _count(db, "TB") == 1


class Dop2MorselMerge(Scenario):
    """A DOP-2 morsel split/merge through the real worker pool.

    One session splits an aggregate into two morsel tasks (run as model
    threads under the checker), merging partial sums.  Oracles: the merged
    total is exact, gather order is submission order, and the pool's
    shared accumulators count the run once (no lost update under the
    stats lock).
    """

    name = "dop2-morsel-merge"
    description = "two morsel tasks race through the pool; exact merged sum"

    def setup(self) -> dict:
        state = _make_db(parallelism=2)
        session = state["db"].connect()
        session.execute("CREATE TABLE T (A INT)")
        session.execute("INSERT INTO T VALUES (1), (2), (3), (4)")
        state["tasks_before"] = state["db"].pool.tasks_total
        return state

    def thread_specs(self, state: dict) -> list:
        db = state["db"]

        def morsel(predicate):
            return int(_rows(
                db, "SELECT SUM(A) FROM T WHERE %s" % predicate
            )[0][0])

        def run():
            parts = db.pool.map(
                morsel, ["A <= 2", "A > 2"], label="mc-morsel"
            )
            state["parts"] = parts
            state["total"] = sum(parts)

        return [("coordinator", run)]

    def check(self, state: dict) -> None:
        assert state.get("parts") == [3, 7], (
            "morsel gather out of submission order: %r" % (state.get("parts"),)
        )
        assert state.get("total") == 10
        pool = state["db"].pool
        delta = pool.tasks_total - state["tasks_before"]
        assert delta >= 2, (
            "pool accumulators saw %d new task(s) for one DOP-2 run" % delta
        )


class SnapshotReadVsCommit(Scenario):
    """A pinned snapshot read races a concurrent insert+commit.

    The reader pins one MVCC snapshot and runs the same COUNT twice while
    the writer commits in between (under some interleavings).  Oracles:
    the two pinned reads agree (repeatable snapshot — the committing
    writer can never leak into an older snapshot mid-flight), both match
    the version-visibility oracle :func:`~repro.mvcc.txn.visible_rows`
    computed over the same snapshot, and a fresh read at the end sees the
    commit.
    """

    name = "snapshot-read-vs-commit"
    description = "pinned snapshot read races a commit; repeatable reads"

    def setup(self) -> dict:
        state = _make_db()
        state["db"].connect().execute("CREATE TABLE T (A INT)")
        state["db"].connect().execute("INSERT INTO T VALUES (0)")
        return state

    def thread_specs(self, state: dict) -> list:
        db = state["db"]
        count_stmt = "SELECT COUNT(*) FROM T"

        def writer():
            db.connect().execute("INSERT INTO T VALUES (1)")

        def reader():
            snap = db.txn.snapshot()
            first = int(
                db.execute_ast(parse_statement(count_stmt), snapshot=snap)
                .rows[0][0]
            )
            second = int(
                db.execute_ast(parse_statement(count_stmt), snapshot=snap)
                .rows[0][0]
            )
            table = db.catalog.get_table("T").table
            state["reads"] = (first, second)
            state["oracle"] = len(visible_rows(table, snap))

        return [("writer", writer), ("reader", reader)]

    def check(self, state: dict) -> None:
        first, second = state["reads"]
        assert first == second, (
            "non-repeatable read on one snapshot: %d then %d" % (first, second)
        )
        assert first == state["oracle"], (
            "engine scan saw %d row(s), version-visibility oracle says %d"
            % (first, state["oracle"])
        )
        assert _count(state["db"], "T") == 2, "commit lost after the race"


class FirstCommitterWins(Scenario):
    """Two overlapping transactions increment the same row (read-modify-
    write through the core MVCC API, which — unlike SQL statements — does
    not serialize under the statement lock).

    Under first-committer-wins, both writers read the row under their own
    snapshot and try to replace it (tombstone + insert).  The second
    stamper of the shared version gets ``TransactionConflictError``
    (sqlstate 40001) and its transaction rolls back completely.  A *lost
    update* — both increments "succeed" but the final value reflects only
    one — is the bug this catches.  Fully serialized interleavings
    legitimately let both succeed.
    """

    name = "first-committer-wins"
    description = "overlapping updates of one row; no lost update, loser 40001"

    def setup(self) -> dict:
        state = _make_db()
        state["db"].connect().execute("CREATE TABLE T (A INT)")
        state["db"].connect().execute("INSERT INTO T VALUES (0)")
        state["wins"] = []
        state["conflicts"] = []
        return state

    def thread_specs(self, state: dict) -> list:
        db = state["db"]
        table = db.catalog.get_table("T").table

        def increment(who):
            def body():
                txn = db.txn.begin()
                try:
                    (value,) = txn.read(table)[0]
                    txn.delete(table, table.visible_mask(txn.snapshot))
                    txn.insert(table, [(value + 1,)])
                except TransactionConflictError:
                    state["conflicts"].append(who)  # delete aborted the txn
                else:
                    txn.commit()
                    state["wins"].append(who)
            return body

        return [("txnA", increment("A")), ("txnB", increment("B"))]

    def check(self, state: dict) -> None:
        db = state["db"]
        wins, conflicts = state["wins"], state["conflicts"]
        assert len(wins) + len(conflicts) == 2
        assert len(wins) >= 1, "both updates conflicted: no first committer"
        value = int(_rows(db, "SELECT A FROM T")[0][0])
        assert value == len(wins), (
            "row at %d after %d successful increment(s): lost update"
            % (value, len(wins))
        )
        assert _count(db, "T") == 1, "increments changed the row count"
        assert db.txn.stats["conflicts"] == len(conflicts)
        assert db.txn.report()["active"] == 0, "transaction leaked as active"


class CommitCrashVersions(Scenario):
    """Crash at any state while an insert and a delete commit (MVCC WAL).

    Commit records carry the writer's txid; recovery replays only durably
    committed transactions and restamps every surviving version ancient
    (txids are incarnation-local).  Oracles after the crash-restart: row
    counts equal the durable WAL's committed inserts minus deletes; no
    stamp from the dead incarnation survives (``xmin`` cleared, ``xmax``
    only 0/ANCIENT); and the SQL-visible count equals the
    version-visibility oracle on a fresh snapshot — an uncommitted
    writer's versions never resurrect.
    """

    name = "commit-crash-versions"
    description = "crash during MVCC commits; versions pruned + restamped"
    crashes = True

    def setup(self) -> dict:
        state = _make_db(group_commit=4)
        session = state["db"].connect()
        session.execute("CREATE TABLE TA (A INT)")
        session.execute("INSERT INTO TA VALUES (0)")
        state["manager"].flush()  # the base row is durable; the race is DML
        return state

    def thread_specs(self, state: dict) -> list:
        db = state["db"]

        def insert():
            db.connect().execute("INSERT INTO TA VALUES (1), (2)")

        def delete():
            db.connect().execute("DELETE FROM TA WHERE A = 0")

        return [("ins", insert), ("del", delete)]

    def _check_versions(self, state: dict) -> None:
        db = state["db"]
        table = db.catalog.get_table("TA").table
        for region in table.regions:
            assert region.xmin is None, "region xmin survived recovery"
            if region.xmax is not None:
                foreign = set(region.xmax.tolist()) - {0, ANCIENT_TXID}
                assert not foreign, (
                    "dead-incarnation xmax stamps survived: %s" % foreign
                )
        assert not any(table._tail_xmin), "tail xmin survived recovery"
        assert set(table._tail_xmax) <= {0, ANCIENT_TXID}
        snap = db.txn.snapshot()
        assert len(visible_rows(table, snap)) == _count(db, "TA"), (
            "version-visibility oracle disagrees with SQL count"
        )

    def crash(self, state: dict) -> None:
        db = state["db"]
        db.reopen(clean=False)
        # No checkpoint exists, so recovery rebuilds from the WAL alone:
        # the expected count is exactly the durable committed inserts
        # minus deletes (the setup row's insert is itself a WAL record).
        expected = 0
        for _txid, ops in committed_transactions(state["manager"].wal.records()):
            for record in ops:
                if record.kind == "insert":
                    expected += len(record.payload[1])
                elif record.kind == "delete":
                    expected -= len(record.payload[1][1])
        got = _count(db, "TA")
        assert got == expected, (
            "recovered TA has %d row(s), durable WAL commits say %d"
            % (got, expected)
        )
        self._check_versions(state)

    def check(self, state: dict) -> None:
        db = state["db"]
        assert _count(db, "TA") == 2  # (1), (2) in; (0) deleted
        db.reopen(clean=True)
        assert _count(db, "TA") == 2
        self._check_versions(state)


#: The registry, in documentation order.
SCENARIOS = [
    ConcurrentInsertCommit(),
    InsertVsAbort(),
    CommitVsCheckpoint(),
    GroupCommitCrash(),
    Dop2MorselMerge(),
    SnapshotReadVsCommit(),
    FirstCommitterWins(),
    CommitCrashVersions(),
]


def by_name(name: str) -> Scenario:
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    raise KeyError(
        "unknown scenario %r (have: %s)"
        % (name, ", ".join(s.name for s in SCENARIOS))
    )
