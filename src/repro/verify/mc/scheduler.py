"""The cooperative deterministic scheduler under the model checker.

CHESS-style explicit-state model checking (Musuvathi & Qadeer, 2007) needs
one thing above all: *the checker, not the OS, owns the interleaving*.
This module provides that substrate for the engine's real code.  Each
scenario thread runs as an ordinary Python thread, but is gated by a
per-thread semaphore so that **at most one model thread executes at any
moment**; a thread runs exactly from one instrumentation point to the
next, then parks and hands control back to the scheduler, which picks the
next thread according to the schedule under exploration.

The instrumentation points are the ones the engine already has:

* :class:`~repro.verify.sanitizer.TrackedLock` acquire/release (every
  engine lock is created through ``sanitizer.make_lock``);
* :func:`repro.verify.sanitizer.access` calls on shared fields (buffer
  pool frames, WAL append/commit/flush, metrics counters, worker-pool
  accumulators, statement counters);
* :meth:`~repro.parallel.pool.WorkerPool.map` task submission — under the
  checker, pool tasks run as model threads (see :meth:`run_pool_tasks`)
  instead of on a real executor, so morsel interleavings are explored too;
* an explicit ``crash`` operation, modelled as a pseudo-thread whose
  single step is enabled in every state — exploring it at every depth is
  exactly "inject a crash at any explored state".

Blocking never really happens: a thread announcing ``acquire`` is simply
*not schedulable* while the model says another thread holds the lock.
When every live thread is unschedulable the scheduler has proven a
deadlock and reports the wait-for edges.  A watchdog guards against the
one failure mode this design cannot rule out — a model thread blocking on
something the checker cannot see (an untracked raw lock) — and turns it
into a diagnosable :class:`MCInternalError` instead of a hang.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.verify import sanitizer


class MCInternalError(Exception):
    """The checker itself lost control (untracked blocking, bad replay)."""


class _Abort(BaseException):
    """Raised inside a model thread to unwind it (run teardown / crash).

    Derives from ``BaseException`` so engine ``except Exception`` handlers
    cannot swallow it mid-unwind.
    """


class PruneRun(Exception):
    """Raised by a chooser to cut the current run short (redundant state)."""


_mc_tls = threading.local()


#: Operation kinds whose pairwise dependence is lock identity.
_LOCK_KINDS = ("acquire", "release")


@dataclass(frozen=True)
class Op:
    """One visible operation a model thread is about to perform."""

    kind: str           # "start" | "acquire" | "release" | "access" | "join" | "crash"
    target: str = ""    # lock name, or "owner.field" for accesses
    write: bool = False
    site: str = ""
    obj: object = None  # the TrackedLock / children tuple; not part of identity

    @property
    def key(self) -> tuple:
        return (self.kind, self.target, self.write)

    def render(self) -> str:
        if self.kind == "access":
            return "%s %s%s" % (
                "write" if self.write else "read",
                self.target,
                " @%s" % self.site if self.site else "",
            )
        if self.kind in _LOCK_KINDS:
            return "%s %s" % (self.kind, self.target)
        return self.kind


def dependent(a: Op, b: Op) -> bool:
    """Can reordering ``a`` and ``b`` change the outcome?

    Crash is dependent with everything (it ends the world); lock ops
    conflict on the same lock; accesses conflict on the same field when at
    least one writes.  ``start``/``join`` are thread-internal.
    """
    if a.kind == "crash" or b.kind == "crash":
        return True
    if a.kind in _LOCK_KINDS and b.kind in _LOCK_KINDS:
        return a.target == b.target
    if a.kind == "access" and b.kind == "access":
        return a.target == b.target and (a.write or b.write)
    return False


class ModelThread:
    """One scenario thread under the scheduler's control."""

    def __init__(self, sched: "Scheduler", tid: int, name: str, fn,
                 is_crash: bool = False):
        self.sched = sched
        self.tid = tid
        self.name = name
        self.fn = fn
        self.is_crash = is_crash
        self.sem = threading.Semaphore(0)
        self.status = "new"       # new -> waiting <-> running -> done
        self.pending: Op | None = None
        self.abort = False
        self.aborted = False
        self.error: BaseException | None = None
        self.steps = 0
        self.thread = threading.Thread(
            target=self._main, name="mc:%s" % name, daemon=True
        )

    def _main(self) -> None:
        _mc_tls.current = self
        try:
            # Park immediately: a model thread performs no work before the
            # scheduler grants its first step.
            self.sched._yield(self, Op("start", "t%d" % self.tid))
            self.fn()
        except _Abort:
            self.aborted = True
        except BaseException as exc:  # lint-ok: broad-except (not a swallow: the exception is stored as the thread's outcome and re-surfaces as a counterexample)
            self.error = exc
        finally:
            _mc_tls.current = None
            self.sched._finish(self)

    def __repr__(self) -> str:
        return "ModelThread(%d, %r, %s)" % (self.tid, self.name, self.status)


@dataclass
class RunOutcome:
    """What one scheduled execution of a scenario did."""

    status: str                       # "ok" | "deadlock" | "pruned" | "error"
    steps: int = 0
    crashed: bool = False
    trace: list = field(default_factory=list)          # [(thread, op render)]
    schedule: list = field(default_factory=list)       # chosen tids, in order
    errors: list = field(default_factory=list)         # (thread name, exc)
    deadlock_detail: str = ""


class Scheduler:
    """Runs one scenario execution under one explicit schedule.

    The scheduler is single-use: construct, :meth:`run`, discard.  The
    ``chooser`` callback makes every scheduling decision; it receives the
    enabled threads (schedulable now) and all waiting threads (for sleep
    set bookkeeping) and returns the thread to step, or raises
    :class:`PruneRun`.
    """

    def __init__(self, watchdog: float = 20.0):
        self._mx = threading.Lock()
        self._wake = threading.Semaphore(0)
        self.threads: list[ModelThread] = []
        self._next_tid = 0
        # id(TrackedLock) -> [holder ModelThread, depth]
        self.locks: dict[int, list] = {}
        self.trace: list[tuple[str, str]] = []
        self.schedule: list[int] = []
        self.watchdog = watchdog
        self.crashed = False
        self._free_thread: ModelThread | None = None
        self._aborting = False
        self.on_step = None   # optional callback(thread, op) after each grant

    # -- hook interface (called from model threads via the sanitizer) -------

    def current(self) -> ModelThread | None:
        t = getattr(_mc_tls, "current", None)
        return t if t is not None and t.sched is self else None

    def governs_current_thread(self) -> bool:
        return self.current() is not None

    def before_acquire(self, lock, blocking: bool = True) -> None:
        t = self.current()
        self._yield(t, Op("acquire", lock.name, True, obj=lock))

    def before_release(self, lock) -> None:
        t = self.current()
        if t.abort or self._aborting:
            # The thread is unwinding (crash/teardown): never park or
            # re-raise here — the real lock below MUST be released, or the
            # post-crash free-run would block on it forever.
            return
        self._yield(t, Op("release", lock.name, True, obj=lock))

    def on_access(self, owner: str, fld: str, write: bool, site: str) -> None:
        t = self.current()
        self._yield(t, Op("access", "%s.%s" % (owner, fld), write, site))

    def run_pool_tasks(self, pool, fn, items, label) -> list:
        """WorkerPool.map under the checker: tasks become model threads.

        The calling model thread blocks on a ``join`` operation that is
        enabled once every child finished; results gather in submission
        order and the first child error (submission order) re-raises —
        the same contract as the real executor path.
        """
        parent = self.current()
        if self._free_thread is parent:
            # Post-crash free-run (recovery code): no exploration, inline.
            return [fn(item) for item in items]
        name = label or getattr(pool, "name", "pool")
        children = []
        results = [None] * len(items)

        def make_body(i, item):
            def body():
                results[i] = fn(item)
            return body

        for i, item in enumerate(items):
            children.append(
                self.spawn("%s[%d]" % (name, i), make_body(i, item))
            )
        self._yield(parent, Op("join", name, obj=tuple(children)))
        for child in children:
            if child.error is not None:
                raise child.error
        return results

    # -- thread lifecycle ----------------------------------------------------

    def spawn(self, name: str, fn, is_crash: bool = False) -> ModelThread:
        with self._mx:
            tid = self._next_tid
            self._next_tid += 1
            t = ModelThread(self, tid, name, fn, is_crash=is_crash)
            self.threads.append(t)
        t.thread.start()
        return t

    def _yield(self, t: ModelThread, op: Op) -> None:
        if self._free_thread is t:
            return  # crash body runs to completion without scheduling
        if self._aborting or t.abort:
            raise _Abort()
        with self._mx:
            t.pending = op
            t.status = "waiting"
        self._wake.release()
        t.sem.acquire()
        if self._aborting or t.abort:
            if op.kind == "release":
                # The thread parked at a release and was then aborted: let
                # the real release complete (leaking it would block the
                # post-crash free-run forever); the abort lands at the
                # thread's next instrumentation point instead.
                return
            raise _Abort()

    def _finish(self, t: ModelThread) -> None:
        with self._mx:
            t.status = "done"
        self._wake.release()

    # -- model state ---------------------------------------------------------

    def enabled(self, t: ModelThread) -> bool:
        op = t.pending
        if op is None:
            return False
        if op.kind == "acquire":
            entry = self.locks.get(id(op.obj))
            return entry is None or (
                entry[0] is t and getattr(op.obj, "reentrant", False)
            )
        if op.kind == "join":
            return all(c.status == "done" for c in op.obj)
        return True

    def _apply(self, t: ModelThread, op: Op) -> None:
        if op.kind == "acquire":
            entry = self.locks.get(id(op.obj))
            if entry is None:
                self.locks[id(op.obj)] = [t, 1]
            else:
                entry[1] += 1
        elif op.kind == "release":
            entry = self.locks.get(id(op.obj))
            if entry is not None:
                entry[1] -= 1
                if entry[1] <= 0:
                    del self.locks[id(op.obj)]

    def _grant(self, t: ModelThread) -> None:
        op = t.pending
        self.trace.append((t.name, op.render()))
        self.schedule.append(t.tid)
        t.steps += 1
        self._apply(t, op)
        if self.on_step is not None:
            self.on_step(t, op)
        if op.kind == "crash":
            self._begin_crash(t)
        with self._mx:
            t.pending = None
            # The scheduler flips the status before waking the thread so a
            # quiescence check can never observe a scheduled-but-not-yet-
            # running thread as parked.
            t.status = "running"
        t.sem.release()

    def _begin_crash(self, crash_thread: ModelThread) -> None:
        """The crash step: every other thread dies mid-flight, then the
        crash body (recover + oracle) runs to completion unscheduled."""
        for other in self.threads:
            if other is crash_thread:
                continue
            with self._mx:
                parked = other.status == "waiting"
                other.abort = True
            if parked:
                other.sem.release()
        self._await(lambda: all(
            o is crash_thread or o.status == "done" for o in self.threads
        ))
        self.locks.clear()
        self.crashed = True
        self._free_thread = crash_thread

    def _await(self, predicate) -> None:
        while True:
            with self._mx:
                if predicate():
                    return
                detail = ", ".join(
                    "%s=%s" % (t.name, t.status) for t in self.threads
                )
            if not self._wake.acquire(timeout=self.watchdog):
                self._aborting = True
                for t in self.threads:
                    t.sem.release()
                raise MCInternalError(
                    "model threads stuck (blocking outside tracked "
                    "instrumentation?): %s" % detail
                )

    def _quiescent(self) -> bool:
        return all(t.status in ("waiting", "done") for t in self.threads)

    def _abort_all(self) -> None:
        self._aborting = True
        for t in self.threads:
            with self._mx:
                parked = t.status == "waiting"
            if parked:
                t.sem.release()
        self._await(lambda: all(t.status == "done" for t in self.threads))

    def _deadlock_detail(self, waiting) -> str:
        lines = []
        for t in waiting:
            op = t.pending
            if op.kind == "acquire":
                entry = self.locks.get(id(op.obj))
                held_by = entry[0].name if entry is not None else "?"
                lines.append(
                    "%s waits for %s (held by %s)" % (t.name, op.target, held_by)
                )
            else:
                lines.append("%s waits at %s" % (t.name, op.render()))
        return "; ".join(lines)

    # -- driver --------------------------------------------------------------

    def run(self, thread_specs, chooser, crash_fn=None) -> RunOutcome:
        """Execute the scenario once under ``chooser``'s schedule.

        ``thread_specs`` is ``[(name, fn), ...]``; ``crash_fn``, when
        given, adds the crash pseudo-thread whose single explored step
        aborts every other thread and then runs ``crash_fn`` (recovery +
        oracle) in free-run mode.
        """
        hook_before = sanitizer.mc_hook()
        sanitizer.set_mc_hook(self)
        try:
            for name, fn in thread_specs:
                self.spawn(name, fn)
            if crash_fn is not None:
                def crash_body():
                    t = self.current()
                    self._yield(t, Op("crash", "crash"))
                    crash_fn()
                self.spawn("crash", crash_body, is_crash=True)
            steps = 0
            pruned = False
            while True:
                self._await(self._quiescent)
                waiting = [t for t in self.threads if t.status == "waiting"]
                if not waiting:
                    break
                enabled = [t for t in waiting if self.enabled(t)]
                if not enabled:
                    detail = self._deadlock_detail(waiting)
                    self._abort_all()
                    return RunOutcome(
                        status="deadlock", steps=steps, trace=list(self.trace),
                        schedule=list(self.schedule), deadlock_detail=detail,
                    )
                try:
                    t = chooser(enabled, waiting)
                except PruneRun:
                    pruned = True
                    self._abort_all()
                    break
                steps += 1
                self._grant(t)
            errors = [
                (t.name, t.error) for t in self.threads if t.error is not None
            ]
            status = "pruned" if pruned else ("error" if errors else "ok")
            return RunOutcome(
                status=status, steps=steps, crashed=self.crashed,
                trace=list(self.trace), schedule=list(self.schedule),
                errors=errors,
            )
        finally:
            sanitizer.set_mc_hook(hook_before)


def yield_point(label: str = "", write: bool = True) -> None:
    """Explicit preemption point for scenario/test harness code.

    Outside the checker this is a no-op, so harness objects can pepper
    their critical sections with named interleaving points.
    """
    hook = sanitizer.mc_hook()
    if hook is not None and hook.governs_current_thread():
        hook.on_access("harness", label or "yield", write, "yield_point")
