"""Bounded explicit-state exploration over the cooperative scheduler.

The explorer enumerates thread interleavings of one scenario by stateless
search: every schedule re-executes the scenario from a fresh state, and a
persistent decision stack (the CHESS replay technique) steers each run —
replay the committed prefix, extend greedily, then backtrack to the
deepest decision with an untried alternative.  Three reductions keep the
search tractable:

* **preemption bounding** — context switches away from a still-runnable
  thread are limited (default 2); switches at blocking/completion points
  are free.  Musuvathi & Qadeer's empirical claim (most concurrency bugs
  need very few preemptions) is what makes the bound useful rather than
  arbitrary;
* **sleep sets** — after a choice's subtree is fully explored, the choice
  moves into the state's sleep set; sibling subtrees do not re-run it
  until a *dependent* operation executes (the classic Godefroid
  partial-order reduction, driven by :func:`~repro.verify.mc.scheduler.dependent`);
* **state hashing** — each decision state is fingerprinted by per-thread
  progress hashes (which fold in the version of every field each read
  observed), the lock table, and per-field write counts.  A state whose
  (fingerprint, remaining-preemption-budget) was fully explored earlier is
  pruned: the DAG's diamonds collapse.

Every counterexample carries the exact schedule (the sequence of chosen
thread ids); :func:`replay` re-executes it deterministically, which is how
pinned-schedule regression tests replay a fixed interleaving forever.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field

from repro.verify import sanitizer
from repro.verify.mc.scheduler import (
    Op,
    PruneRun,
    RunOutcome,
    Scheduler,
    dependent,
)

#: Exploration budget (total scheduled steps across all runs of a scenario).
BUDGET_ENV_VAR = "REPRO_MC_BUDGET"

DEFAULT_PREEMPTION_BOUND = 2


def default_budget() -> int:
    env = os.environ.get(BUDGET_ENV_VAR)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                "%s must be an integer, got %r" % (BUDGET_ENV_VAR, env)
            ) from None
    return 5000


class OracleViolation(AssertionError):
    """A scenario oracle failed: the interleaving is a counterexample."""


@dataclass
class Counterexample:
    """One failing interleaving, replayable by its schedule."""

    scenario: str
    kind: str                 # "deadlock" | "oracle" | "error"
    message: str
    schedule: list[int]
    trace: list[tuple[str, str]]

    @property
    def schedule_id(self) -> str:
        return hashlib.sha1(
            repr(self.schedule).encode("ascii")
        ).hexdigest()[:12]

    def render(self) -> str:
        lines = [
            "counterexample in scenario %r (%s, schedule %s):"
            % (self.scenario, self.kind, self.schedule_id),
            "  %s" % self.message,
            "  interleaving (%d steps):" % len(self.trace),
        ]
        lines.extend("    %-18s %s" % (name, op) for name, op in self.trace)
        return "\n".join(lines)


@dataclass
class ExplorationReport:
    """What exploring one scenario did."""

    scenario: str
    schedules: int = 0            # complete (non-pruned) executions
    states: int = 0               # scheduled steps across all runs
    pruned_runs: int = 0          # runs cut by sleep-set / state-hash pruning
    completed: bool = False       # search space exhausted within budget
    budget: int = 0
    preemption_bound: int = 0
    counterexample: Counterexample | None = None
    races: int = 0                # Eraser candidate races seen along the way

    @property
    def ok(self) -> bool:
        return self.counterexample is None

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "schedules": self.schedules,
            "states": self.states,
            "pruned_runs": self.pruned_runs,
            "completed": self.completed,
            "budget": self.budget,
            "preemption_bound": self.preemption_bound,
            "races": self.races,
            "counterexample": None if self.counterexample is None else {
                "kind": self.counterexample.kind,
                "message": self.counterexample.message,
                "schedule": self.counterexample.schedule,
                "schedule_id": self.counterexample.schedule_id,
            },
        }


@dataclass
class _Decision:
    """One scheduling point on the persistent DFS stack."""

    chosen: int
    enabled: tuple[int, ...]
    pending: dict = field(default_factory=dict)   # tid -> Op (all waiting)
    prev: int | None = None
    sleep: set = field(default_factory=set)
    done: set = field(default_factory=set)
    preemptions_before: int = 0
    state_key: tuple = ()
    crash_tids: frozenset = frozenset()


class _StopRun(PruneRun):
    """Prune flavours, so stats can tell them apart."""

    def __init__(self, why: str):
        self.why = why


class _Hasher:
    """Incremental state fingerprint for one run.

    A thread's hash folds in, for every read it performed, the version of
    the field it observed — so two states only collide when every thread
    has both the same control progress *and* the same data lineage.
    """

    def __init__(self):
        self.thread_h: dict[int, int] = {}
        self.field_v: dict[str, tuple[int, int]] = {}  # target -> (version, writer)

    def note(self, t, op: Op) -> None:
        observed = 0
        if op.kind == "access":
            version, _writer = self.field_v.get(op.target, (0, -1))
            if op.write:
                self.field_v[op.target] = (version + 1, t.tid)
            observed = version
        self.thread_h[t.tid] = hash(
            (self.thread_h.get(t.tid, t.tid), op.key, observed)
        )


# The state fingerprint needs lock *names*; the scheduler's lock table is
# keyed by object id, so keep a tiny shadow map.
class _LockNames:
    def __init__(self):
        self.names: dict[int, str] = {}

    def note(self, op: Op) -> None:
        if op.kind in ("acquire", "release") and op.obj is not None:
            self.names[id(op.obj)] = op.target

    def name(self, lock_id: int) -> str:
        return self.names.get(lock_id, "?")


def _run_once(scenario, stack, closed, preemption_bound, budget, counters,
              schedule=None, watchdog=20.0):
    """Execute the scenario once, steering by the persistent stack (or an
    explicit ``schedule`` when replaying); returns (outcome, run_info)."""
    sanitizer.reset()
    state = scenario.setup()
    scheduler = Scheduler(watchdog=watchdog)
    hasher = _Hasher()
    lock_names = _LockNames()
    depth = 0
    prev_tid: int | None = None
    preemptions = 0
    new_frames: list[_Decision] = []

    def state_key():
        locks = tuple(sorted(
            (lock_names.name(lock_id), holder.tid, depth_)
            for lock_id, (holder, depth_) in scheduler.locks.items()
        ))
        return (
            hash((
                frozenset(hasher.thread_h.items()),
                frozenset(hasher.field_v.items()),
                locks,
            )),
            preemption_bound - preemptions,
        )

    def on_step(t, op):
        lock_names.note(op)
        hasher.note(t, op)

    scheduler.on_step = on_step

    def chooser(enabled, waiting):
        nonlocal depth, prev_tid, preemptions
        counters["states"] += 1
        if counters["states"] > budget:
            raise _StopRun("budget")
        by_tid = {t.tid: t for t in waiting}
        enabled_tids = sorted(t.tid for t in enabled)
        crash_tids = frozenset(
            t.tid for t in waiting if t.is_crash
        )
        pending = {t.tid: t.pending for t in waiting}

        if schedule is not None and depth < len(schedule):
            # Replay mode: follow the recorded schedule verbatim.
            tid = schedule[depth]
            if tid not in by_tid or by_tid[tid] not in enabled:
                raise _StopRun("divergent-replay")
            chosen = tid
        elif depth < len(stack):
            frame = stack[depth]
            chosen = frame.chosen
            if chosen not in enabled_tids:
                raise _StopRun("divergent-replay")
        else:
            if schedule is not None:
                # Past the end of an explicit schedule: default policy.
                chosen = _default_choice(
                    enabled_tids, set(), prev_tid, crash_tids,
                    preemptions, preemption_bound,
                )
                if chosen is None:
                    chosen = enabled_tids[0]
            else:
                key = state_key()
                if key in closed:
                    raise _StopRun("state-pruned")
                sleep = _propagate_sleep(
                    stack, new_frames, depth, pending
                )
                chosen = _default_choice(
                    enabled_tids, sleep, prev_tid, crash_tids,
                    preemptions, preemption_bound,
                )
                if chosen is None:
                    raise _StopRun("sleep-pruned")
                new_frames.append(_Decision(
                    chosen=chosen,
                    enabled=tuple(enabled_tids),
                    pending=pending,
                    prev=prev_tid,
                    sleep=sleep,
                    preemptions_before=preemptions,
                    state_key=key,
                    crash_tids=crash_tids,
                ))
        if (
            prev_tid is not None
            and chosen != prev_tid
            and prev_tid in enabled_tids
            and chosen not in crash_tids
        ):
            preemptions += 1
        depth += 1
        prev_tid = chosen
        return by_tid[chosen]

    crash_fn = None
    if getattr(scenario, "crashes", False):
        def crash_fn():
            scenario.crash(state)

    outcome = scheduler.run(scenario.thread_specs(state), chooser, crash_fn)
    return outcome, state, new_frames


def _default_choice(enabled_tids, sleep, prev_tid, crash_tids,
                    preemptions, bound):
    """Greedy schedule policy: keep running the previous thread; otherwise
    the lowest-id enabled thread not in the sleep set.  Returns None when
    every continuation is redundant (all enabled sleeping)."""
    candidates = [tid for tid in enabled_tids if tid not in sleep]
    if not candidates:
        return None
    if prev_tid in candidates:
        return prev_tid
    if prev_tid in enabled_tids and preemptions >= bound:
        # Switching away from a runnable thread would exceed the bound;
        # crash steps are exempt (they model an external event).
        for tid in candidates:
            if tid in crash_tids:
                return tid
        return None
    return candidates[0]


def _propagate_sleep(stack, new_frames, depth, pending):
    """Sleep set for the state at ``depth``: inherited members whose
    pending operation is independent of the step just executed."""
    frames = list(stack) + new_frames
    if depth == 0:
        return set()
    parent = frames[depth - 1]
    executed = parent.pending.get(parent.chosen)
    sleep = set()
    for tid in parent.sleep | parent.done:
        if tid == parent.chosen:
            continue
        op = pending.get(tid)
        prior = parent.pending.get(tid)
        probe = op if op is not None else prior
        if probe is None or executed is None:
            continue
        if not dependent(probe, executed):
            sleep.add(tid)
    return sleep


def _outcome_counterexample(scenario_name, outcome: RunOutcome, scenario,
                            state) -> Counterexample | None:
    if outcome.status == "deadlock":
        return Counterexample(
            scenario=scenario_name, kind="deadlock",
            message="deadlock: %s" % outcome.deadlock_detail,
            schedule=outcome.schedule, trace=outcome.trace,
        )
    if outcome.status == "error":
        name, exc = outcome.errors[0]
        kind = "oracle" if isinstance(exc, AssertionError) else "error"
        return Counterexample(
            scenario=scenario_name, kind=kind,
            message="%s in thread %s: %s" % (type(exc).__name__, name, exc),
            schedule=outcome.schedule, trace=outcome.trace,
        )
    if outcome.status == "ok" and not outcome.crashed:
        try:
            scenario.check(state)
        except AssertionError as exc:
            return Counterexample(
                scenario=scenario_name, kind="oracle",
                message=str(exc) or "oracle failed",
                schedule=outcome.schedule, trace=outcome.trace,
            )
    return None


def explore(scenario, budget: int | None = None,
            preemption_bound: int = DEFAULT_PREEMPTION_BOUND,
            watchdog: float = 20.0) -> ExplorationReport:
    """Explore ``scenario``'s interleavings; stop at the first
    counterexample, exhaustion (within bounds), or budget."""
    budget = budget if budget is not None else default_budget()
    report = ExplorationReport(
        scenario=scenario.name, budget=budget,
        preemption_bound=preemption_bound,
    )
    enabled_before = sanitizer.ENABLED
    if not enabled_before:
        sanitizer.enable()
    stack: list[_Decision] = []
    closed: set = set()
    counters = {"states": 0}
    try:
        while True:
            outcome, state, new_frames = _run_once(
                scenario, stack, closed, preemption_bound, budget, counters,
                watchdog=watchdog,
            )
            stack.extend(new_frames)
            report.states = counters["states"]
            report.races = max(report.races, len(sanitizer.report()))
            if outcome.status == "pruned":
                report.pruned_runs += 1
            else:
                report.schedules += 1
                ce = _outcome_counterexample(
                    scenario.name, outcome, scenario, state
                )
                if ce is not None:
                    report.counterexample = ce
                    return report
            if counters["states"] >= budget:
                return report
            # Backtrack to the deepest decision with a viable alternative.
            while stack:
                frame = stack[-1]
                frame.done.add(frame.chosen)
                frame.sleep = frame.sleep | {frame.chosen}
                alt = _next_alternative(frame, preemption_bound)
                if alt is not None:
                    frame.chosen = alt
                    break
                closed.add(frame.state_key)
                stack.pop()
            else:
                report.completed = True
                return report
    finally:
        if not enabled_before:
            sanitizer.disable()


def _next_alternative(frame: _Decision, bound: int) -> int | None:
    for tid in frame.enabled:
        if tid in frame.done or tid in frame.sleep:
            continue
        preemptive = (
            frame.prev is not None
            and tid != frame.prev
            and frame.prev in frame.enabled
            and tid not in frame.crash_tids
        )
        if preemptive and frame.preemptions_before >= bound:
            continue
        return tid
    return None


def replay(scenario, schedule: list[int],
           watchdog: float = 20.0) -> tuple[RunOutcome, Counterexample | None]:
    """Re-execute one exact schedule (then default policy past its end).

    Deterministic: the same schedule produces the same trace every time,
    which is what pinned-schedule regression tests rely on.
    """
    enabled_before = sanitizer.ENABLED
    if not enabled_before:
        sanitizer.enable()
    try:
        counters = {"states": 0}
        outcome, state, _ = _run_once(
            scenario, [], set(), preemption_bound=10 ** 9,
            budget=10 ** 9, counters=counters, schedule=list(schedule),
            watchdog=watchdog,
        )
        ce = _outcome_counterexample(scenario.name, outcome, scenario, state)
        return outcome, ce
    finally:
        if not enabled_before:
            sanitizer.disable()
