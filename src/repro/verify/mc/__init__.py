"""CHESS-style explicit-state model checking for the engine's concurrency.

``python -m repro.verify.mc --all`` replays the scenario registry
(:mod:`repro.verify.mc.scenarios`) under every thread interleaving up to a
preemption bound, using the engine's existing sanitizer instrumentation as
the scheduling points, and runs the static + runtime lock-order analysis
(:mod:`repro.verify.mc.lockorder`).  See the README's "Model checking &
lock order" section.
"""

from repro.verify.mc.explorer import (
    BUDGET_ENV_VAR,
    DEFAULT_PREEMPTION_BOUND,
    Counterexample,
    ExplorationReport,
    OracleViolation,
    default_budget,
    explore,
    replay,
)
from repro.verify.mc.lockorder import DECLARED_ORDER, LockOrderReport
from repro.verify.mc.scenarios import SCENARIOS, Scenario, by_name
from repro.verify.mc.scheduler import (
    MCInternalError,
    Op,
    RunOutcome,
    Scheduler,
    dependent,
    yield_point,
)

__all__ = [
    "BUDGET_ENV_VAR",
    "DEFAULT_PREEMPTION_BOUND",
    "Counterexample",
    "DECLARED_ORDER",
    "ExplorationReport",
    "LockOrderReport",
    "MCInternalError",
    "Op",
    "OracleViolation",
    "RunOutcome",
    "SCENARIOS",
    "Scenario",
    "Scheduler",
    "by_name",
    "default_budget",
    "dependent",
    "explore",
    "replay",
    "yield_point",
]
