"""Static + runtime lock-order analysis: prove deadlock-freedom by rank.

The engine's locks all come from :func:`repro.verify.sanitizer.make_lock`
with structured names (``"bufferpool"``, ``"database:DB:statement"``,
``"durability:db"``, ``"pool:db:stats"``, ``"metrics"``, ``"tracer"``).
The name's prefix before the first ``:`` is the lock's **class**, and the
repo declares one global acquisition order over classes (outermost
first)::

    database > txn > durability > table > pool > bufferpool > metrics > tracer

i.e. a thread holding a ``durability`` lock may acquire ``metrics`` but
never ``database``.  Two-phase observation feeds the checked graph:

* **static** — an AST walk over the source tree finds lexically nested
  ``with <lock>:`` scopes, resolving each lock expression to its class
  through the ``make_lock`` call that created the attribute (extending
  the extraction approach of :mod:`repro.verify.rules`);
* **runtime** — every :class:`~repro.verify.sanitizer.TrackedLock`
  acquisition taken while other tracked locks are held records a
  (held -> acquired) edge in :func:`sanitizer.lock_graph`; the model
  checker's scenario runs (and any REPRO_SANITIZE=1 test run) populate it
  with the *interprocedural* nestings the lexical walk cannot see.

The merged graph must be acyclic and must respect the declared ranks;
either failure is reported with the offending edges, which is a proof
obligation rather than a hope: an ABBA pair that never deadlocked in
testing still shows up as a cycle here.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass

from repro.verify import sanitizer

#: Declared global acquisition order, outermost class first.  A thread may
#: only acquire locks of a class strictly later in this tuple than every
#: lock it already holds (same-class nesting is allowed only for the same
#: reentrant lock instance).  ``txn`` (the MVCC transaction manager and
#: statement counter) ranks directly inside the statement lock; ``table``
#: (the per-table capture lock guarding seal/truncate vs. snapshot
#: capture) sits inside ``durability`` because recovery replays table
#: mutations — which may seal a region — while holding the durability
#: lock.  ``serving`` (the result/plan cache) sits between ``database``
#: and ``txn``: commit listeners take the cache lock under the statement
#: lock (database > serving), and cache validation reads the table-version
#: clock — a ``txn``-class lock — under the cache lock (serving > txn).
DECLARED_ORDER = (
    "database", "serving", "txn", "durability", "table", "pool",
    "bufferpool", "metrics", "tracer",
)

_RANK = {name: i for i, name in enumerate(DECLARED_ORDER)}


def lock_class(name: str) -> str:
    """``"pool:db:stats"`` -> ``"pool"``; unknown names map to themselves."""
    return name.split(":", 1)[0]


def declared_rank(name: str) -> int | None:
    """Rank of a lock (by its class) in the declared order; None = unranked."""
    return _RANK.get(lock_class(name))


def rank_violation(outer: str, inner: str) -> str | None:
    """Message when acquiring ``inner`` while holding ``outer`` contradicts
    the declared order; None when the edge is allowed (or unrankable)."""
    outer_cls = lock_class(outer)
    inner_cls = lock_class(inner)
    if outer_cls == "?" or inner_cls == "?":
        return None
    outer_rank = _RANK.get(outer_cls)
    inner_rank = _RANK.get(inner_cls)
    if outer_rank is None or inner_rank is None:
        return None
    if outer_cls == inner_cls:
        # Same-class nesting across *instances* is hierarchical (a
        # coordinator statement drives shard statements); ranks do not
        # apply — the instance-level cycle check catches ABBA pairs.
        return None
    if outer_rank > inner_rank:
        return (
            "acquired %s (rank %d) while holding %s (rank %d): contradicts "
            "declared order %s" % (
                inner, inner_rank, outer, outer_rank,
                " > ".join(DECLARED_ORDER),
            )
        )
    return None


@dataclass(frozen=True)
class LockEdge:
    """One observed outer -> inner acquisition edge."""

    outer: str      # full lock name (runtime) or class (static)
    inner: str
    source: str     # "static" | "runtime"
    site: str = ""  # file:line for static edges

    def render(self) -> str:
        where = " (%s)" % self.site if self.site else ""
        return "%s -> %s [%s]%s" % (self.outer, self.inner, self.source, where)


# ---------------------------------------------------------------------------
# static extraction
# ---------------------------------------------------------------------------


def _literal_prefix(node: ast.AST) -> str | None:
    """The lock-class prefix of a ``make_lock`` name argument.

    Handles plain strings and the repo's ``"pool:%s:stats" % name`` idiom
    (the class is the part of the format string before the first ``:``).
    """
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        node = node.left
    if isinstance(node, ast.JoinedStr) and node.values:
        node = node.values[0]
        if isinstance(node, ast.FormattedValue):
            return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return lock_class(node.value)
    return None


def _is_make_lock(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr == "make_lock"
    return isinstance(func, ast.Name) and func.id == "make_lock"


def lock_attr_classes(tree: ast.Module) -> dict[str, str]:
    """Map attribute names to lock classes via their make_lock assignment
    (``self._stats_lock = sanitizer.make_lock("pool:%s:stats" % ...)``)."""
    classes: dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not (isinstance(node.value, ast.Call) and _is_make_lock(node.value)):
            continue
        if not node.value.args:
            continue
        cls = _literal_prefix(node.value.args[0])
        if cls is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Attribute):
                classes[target.attr] = cls
            elif isinstance(target, ast.Name):
                classes[target.id] = cls
    return classes


def _lock_expr_class(expr: ast.AST, classes: dict[str, str]) -> str | None:
    """Resolve a ``with`` context expression to a lock class, or None when
    it is not a (recognisable) lock."""
    node = expr
    if isinstance(node, ast.Call):
        node = node.func
    name = None
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    if name is None:
        return None
    if name in classes:
        return classes[name]
    if "lock" in name.lower():
        return "?"  # lock-like but unclassified
    return None


def static_edges_for_source(
    source: str, path: str = "<memory>"
) -> list[LockEdge]:
    """Lexically nested lock scopes in one file, as class-level edges."""
    tree = ast.parse(source, filename=path)
    classes = lock_attr_classes(tree)
    edges: list[LockEdge] = []

    def walk(node: ast.AST, held: list[tuple[str, str]]):
        pushed = 0
        if isinstance(node, ast.With):
            for item in node.items:
                cls = _lock_expr_class(item.context_expr, classes)
                if cls is None:
                    continue
                attr = ast.dump(item.context_expr)
                for outer_cls, outer_attr in held:
                    if outer_attr == attr:
                        continue  # reentrant re-acquisition of the same lock
                    edges.append(LockEdge(
                        outer=outer_cls, inner=cls, source="static",
                        site="%s:%d" % (path, node.lineno),
                    ))
                held.append((cls, attr))
                pushed += 1
        for child in ast.iter_child_nodes(node):
            # Nested function/class bodies are separate acquisition scopes.
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                walk(child, [])
            else:
                walk(child, held)
        for _ in range(pushed):
            held.pop()

    walk(tree, [])
    return edges


def static_edges(paths=("src",)) -> list[LockEdge]:
    edges: list[LockEdge] = []
    for root in paths:
        if os.path.isfile(root):
            files = [root]
        else:
            files = []
            for dirpath, dirnames, filenames in os.walk(root):
                dirnames[:] = [
                    d for d in sorted(dirnames)
                    if d not in ("__pycache__", ".git")
                ]
                files.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames) if f.endswith(".py")
                )
        for file_path in files:
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
            edges.extend(static_edges_for_source(source, file_path))
    return edges


# ---------------------------------------------------------------------------
# runtime graph
# ---------------------------------------------------------------------------


def runtime_edges() -> list[LockEdge]:
    """The sanitizer's observed acquisition edges (full instance names)."""
    return [
        LockEdge(outer=outer, inner=inner, source="runtime")
        for (outer, inner) in sorted(sanitizer.lock_graph())
    ]


# ---------------------------------------------------------------------------
# analysis
# ---------------------------------------------------------------------------


@dataclass
class LockOrderReport:
    edges: list[LockEdge]
    violations: list[str]
    cycles: list[list[str]]

    @property
    def ok(self) -> bool:
        return not self.violations and not self.cycles

    def to_json(self) -> dict:
        return {
            "declared_order": list(DECLARED_ORDER),
            "edges": [e.render() for e in self.edges],
            "violations": list(self.violations),
            "cycles": [list(c) for c in self.cycles],
            "ok": self.ok,
        }

    def render(self) -> str:
        lines = ["lock order: %s" % " > ".join(DECLARED_ORDER)]
        lines.append("%d edge(s) observed" % len(self.edges))
        for violation in self.violations:
            lines.append("VIOLATION: %s" % violation)
        for cycle in self.cycles:
            lines.append("CYCLE: %s" % " -> ".join(cycle + [cycle[0]]))
        if self.ok:
            lines.append("lock acquisition graph is acyclic and rank-ordered")
        return "\n".join(lines)


def _find_cycles(adj: dict[str, set[str]]) -> list[list[str]]:
    cycles: list[list[str]] = []
    seen_cycles: set[tuple[str, ...]] = set()
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in adj}

    def visit(node, path):
        colour[node] = GREY
        path.append(node)
        for nxt in sorted(adj.get(node, ())):
            if colour.get(nxt, WHITE) == GREY:
                cycle = path[path.index(nxt):]
                canon = tuple(sorted(cycle))
                if canon not in seen_cycles:
                    seen_cycles.add(canon)
                    cycles.append(list(cycle))
            elif colour.get(nxt, WHITE) == WHITE:
                visit(nxt, path)
        path.pop()
        colour[node] = BLACK

    for node in sorted(adj):
        if colour[node] == WHITE:
            visit(node, [])
    return cycles


def analyze(edges: list[LockEdge]) -> LockOrderReport:
    """Rank-check and cycle-check the merged acquisition graph."""
    violations: list[str] = []
    adj: dict[str, set[str]] = {}
    for edge in edges:
        adj.setdefault(edge.outer, set()).add(edge.inner)
        adj.setdefault(edge.inner, set())
        message = rank_violation(edge.outer, edge.inner)
        if message is not None:
            violations.append(
                "%s [%s%s]" % (
                    message, edge.source,
                    " %s" % edge.site if edge.site else "",
                )
            )
    cycles = _find_cycles(adj)
    return LockOrderReport(edges=list(edges), violations=violations,
                           cycles=cycles)


def check(paths=("src",), include_runtime: bool = True) -> LockOrderReport:
    """The full analysis: static extraction merged with the runtime graph."""
    edges = static_edges(paths)
    if include_runtime:
        edges.extend(runtime_edges())
    return analyze(edges)
