"""CLI: explore the scenario registry and check the global lock order.

Examples::

    python -m repro.verify.mc --list
    python -m repro.verify.mc --all
    python -m repro.verify.mc --scenario commit-vs-checkpoint --budget 2000
    python -m repro.verify.mc --all --json
    python -m repro.verify.mc --lock-order          # static analysis only

Exit status is non-zero when any scenario produced a counterexample or
the lock-order analysis found a violation/cycle — CI's ``modelcheck`` leg
relies on that.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import repro
from repro.verify.mc import explorer, lockorder, scenarios


def _explore_one(scenario, args) -> dict:
    report = explorer.explore(
        scenario,
        budget=args.budget,
        preemption_bound=args.preemptions,
    )
    if not args.json:
        status = "ok" if report.ok else "COUNTEREXAMPLE"
        done = "exhausted" if report.completed else "budget"
        print(
            "%-28s %-15s schedules=%-5d states=%-6d pruned=%-5d (%s)"
            % (scenario.name, status, report.schedules, report.states,
               report.pruned_runs, done)
        )
        if report.counterexample is not None:
            print(report.counterexample.render())
    return report.to_json()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.mc",
        description="explicit-state model checker + lock-order analysis",
    )
    parser.add_argument("--all", action="store_true",
                        help="explore every registered scenario")
    parser.add_argument("--scenario", action="append", default=[],
                        help="explore one scenario by name (repeatable)")
    parser.add_argument("--list", action="store_true",
                        help="list registered scenarios and exit")
    parser.add_argument("--budget", type=int, default=None,
                        help="total scheduled steps per scenario "
                             "(default: $%s or %d)"
                             % (explorer.BUDGET_ENV_VAR, 5000))
    parser.add_argument("--preemptions", type=int,
                        default=explorer.DEFAULT_PREEMPTION_BOUND,
                        help="preemption bound (default %d)"
                             % explorer.DEFAULT_PREEMPTION_BOUND)
    parser.add_argument("--lock-order", action="store_true",
                        help="run only the static lock-order analysis")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON document instead of text")
    args = parser.parse_args(argv)

    if args.list:
        for scenario in scenarios.SCENARIOS:
            crash = " [crash]" if scenario.crashes else ""
            print("%-28s %s%s" % (scenario.name, scenario.description, crash))
        return 0

    out: dict = {"scenarios": [], "lock_order": None}
    failed = False

    if not args.lock_order:
        if args.all:
            targets = list(scenarios.SCENARIOS)
        elif args.scenario:
            targets = [scenarios.by_name(name) for name in args.scenario]
        else:
            parser.error("pick --all, --scenario NAME, --list or --lock-order")
        for scenario in targets:
            report_json = _explore_one(scenario, args)
            out["scenarios"].append(report_json)
            if report_json["counterexample"] is not None:
                failed = True

    # The lock-order analysis always runs: scenario exploration has just
    # populated the runtime acquisition graph, so static and dynamic edges
    # merge (with --lock-order alone, the static graph is checked).
    src_root = os.path.dirname(os.path.abspath(repro.__file__))
    lock_report = lockorder.check(paths=(src_root,))
    out["lock_order"] = lock_report.to_json()
    if not lock_report.ok:
        failed = True
    if args.json:
        print(json.dumps(out, indent=2))
    else:
        print(lock_report.render())
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
