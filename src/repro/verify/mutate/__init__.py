"""repromutate — callgraph-guided mutation analysis.

Scores the verification matrix by injecting repo-specific faults
(dropped WAL appends, swapped MVCC stamps, off-by-one morsel ranges,
deleted lock acquires, …) and checking that the statically-selected
test battery kills them.  See DESIGN.md note 16.
"""

from repro.verify.mutate.engine import (
    BUDGET_ENV_VAR,
    DEFAULT_TARGET_PATHS,
    Mutant,
    MutantResult,
    MutationReport,
    MutationRun,
    compare_baseline,
    generate_mutants,
    mutate_source,
)
from repro.verify.mutate.impact import (
    ImpactMap,
    TestAwareIndex,
    load_project_sources,
    resolve_symbol_spec,
)
from repro.verify.mutate.operators import (
    ALL_OPERATORS,
    DEFAULT_OPERATOR_NAMES,
    OPERATORS_BY_NAME,
    Operator,
    resolve_operators,
)

__all__ = [
    "BUDGET_ENV_VAR",
    "DEFAULT_TARGET_PATHS",
    "Mutant",
    "MutantResult",
    "MutationReport",
    "MutationRun",
    "compare_baseline",
    "generate_mutants",
    "mutate_source",
    "ImpactMap",
    "TestAwareIndex",
    "load_project_sources",
    "resolve_symbol_spec",
    "ALL_OPERATORS",
    "DEFAULT_OPERATOR_NAMES",
    "OPERATORS_BY_NAME",
    "Operator",
    "resolve_operators",
]
