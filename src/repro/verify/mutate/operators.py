"""repromutate mutation operators.

Each operator models a bug class this engine has actually shipped (or
nearly shipped — see the PR history in CHANGES.md): dropped WAL appends
and commit-clock bumps, swapped ``xmin``/``xmax`` stamps, off-by-one
morsel ranges, deleted lock acquisitions, commuted aggregate merges,
inverted predicate comparisons and dropped ``finally`` releases — plus
the three classic generic operators (boundary, boolean, constant).

An operator exposes two methods over a parsed module:

* ``find(tree, module)`` returns the ordered list of mutation targets —
  a pure function of the AST, so the same source always yields the same
  targets in the same order (mutant generation is deterministic and
  clock/RNG-free by construction);
* ``apply(tree, ordinal)`` re-locates target ``ordinal`` on a *fresh*
  parse of the same source and mutates the tree in place.  The engine
  then ``ast.unparse``s the mutated tree, so a witness diff against the
  unparsed pristine tree shows exactly the mutated statement.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

# ---------------------------------------------------------------------------
# target bookkeeping
# ---------------------------------------------------------------------------


@dataclass
class Target:
    """One mutable site: the node plus enough context to splice it."""

    node: ast.AST
    lineno: int
    col: int
    description: str
    #: for statement-level mutations: (parent node, body field, index)
    parent: tuple[ast.AST, str, int] | None = None


def _walk_with_parents(tree: ast.AST):
    """Yield ``(node, parent, field, index)`` over every node, where the
    parent triple addresses the node inside a statement list (or
    ``(parent, field, None)`` for non-list fields)."""
    stack: list[tuple[ast.AST, ast.AST | None, str | None, int | None]] = [
        (tree, None, None, None)
    ]
    while stack:
        node, parent, field, index = stack.pop()
        yield node, parent, field, index
        for name, value in reversed(list(ast.iter_fields(node))):
            if isinstance(value, list):
                for i, item in enumerate(reversed(value)):
                    if isinstance(item, ast.AST):
                        stack.append((item, node, name, len(value) - 1 - i))
            elif isinstance(value, ast.AST):
                stack.append((value, node, name, None))


def _sort_targets(targets: list[Target]) -> list[Target]:
    targets.sort(key=lambda t: (t.lineno, t.col, t.description))
    return targets


def _drop_statement(target: Target) -> None:
    """Remove a statement from its parent body, leaving ``pass`` behind
    when the body would otherwise be empty (keeps the module parseable)."""
    assert target.parent is not None
    parent, field, index = target.parent
    body = getattr(parent, field)
    stmt = body[index]
    body.remove(stmt)
    if not body:
        body.append(ast.copy_location(ast.Pass(), stmt))


class Operator:
    """Base class: subclasses set ``name``/``description`` and implement
    :meth:`find` and :meth:`mutate`."""

    name: str = ""
    description: str = ""

    def find(self, tree: ast.Module, module: str) -> list[Target]:
        raise NotImplementedError

    def mutate(self, target: Target) -> None:
        raise NotImplementedError

    def apply(self, tree: ast.Module, module: str, ordinal: int) -> bool:
        targets = self.find(tree, module)
        if ordinal >= len(targets):
            return False
        self.mutate(targets[ordinal])
        return True


# ---------------------------------------------------------------------------
# repo-specific operators
# ---------------------------------------------------------------------------


def _call_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Expr)
        and isinstance(node.value, ast.Call)
        and isinstance(node.value.func, ast.Attribute)
    ):
        return node.value.func.attr
    return None


class DropWalAppend(Operator):
    """Delete a ``log_*`` WAL-append statement — the bug class the
    write-protocol rule and PR 9's ``Cluster._insert_rows`` fix exist
    for: a mutation that commits without leaving a redo record."""

    name = "drop-wal"
    description = "delete a log_* WAL-append statement"

    def find(self, tree, module):
        out = []
        for node, parent, field, index in _walk_with_parents(tree):
            attr = _call_attr(node)
            if attr is not None and attr.startswith("log_") and index is not None:
                out.append(Target(node, node.lineno, node.col_offset,
                                  "drop %s(...)" % attr,
                                  (parent, field, index)))
        return _sort_targets(out)

    def mutate(self, target):
        _drop_statement(target)


class DropCommitHook(Operator):
    """Delete a ``_note_commit`` / ``note_table`` statement: the commit
    clock stops bumping (stale serving caches) or abort loses its
    rollback registration."""

    name = "drop-commit-hook"
    description = "delete a _note_commit/note_table commit-hook statement"

    _ATTRS = ("_note_commit", "note_table")

    def find(self, tree, module):
        out = []
        for node, parent, field, index in _walk_with_parents(tree):
            attr = _call_attr(node)
            if attr in self._ATTRS and index is not None:
                out.append(Target(node, node.lineno, node.col_offset,
                                  "drop %s(...)" % attr,
                                  (parent, field, index)))
        return _sort_targets(out)

    def mutate(self, target):
        _drop_statement(target)


class SwapVersionStamp(Operator):
    """Swap a single ``xmin``/``xmax`` attribute occurrence — a creator
    stamp read where the deleter stamp belongs (or vice versa) makes
    exactly the wrong rows visible."""

    name = "swap-xmin-xmax"
    description = "swap one xmin/xmax version-stamp occurrence"

    _SWAP = {"xmin": "xmax", "xmax": "xmin",
             "xmin_hi": "xmax_hi", "xmax_hi": "xmin_hi"}

    def find(self, tree, module):
        out = []
        for node, _, _, _ in _walk_with_parents(tree):
            if isinstance(node, ast.Attribute) and node.attr in self._SWAP:
                out.append(Target(node, node.lineno, node.col_offset,
                                  "%s -> %s" % (node.attr,
                                                self._SWAP[node.attr])))
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg in self._SWAP:
                        out.append(Target(kw, node.lineno, node.col_offset,
                                          "%s= -> %s=" % (kw.arg,
                                                          self._SWAP[kw.arg])))
        return _sort_targets(out)

    def mutate(self, target):
        node = target.node
        if isinstance(node, ast.Attribute):
            node.attr = self._SWAP[node.attr]
        else:
            node.arg = self._SWAP[node.arg]


class OffByOneRange(Operator):
    """Shrink an arithmetic bound by one inside ``range``/``min``/``max``
    calls and slice bounds — the morsel-range bug class: a span that
    silently drops (or double-counts) its last row."""

    name = "off-by-one"
    description = "subtract 1 from a range/min/max/slice bound expression"

    _BOUND_CALLS = ("range", "min", "max")

    def find(self, tree, module):
        out = []
        for node, _, _, _ in _walk_with_parents(tree):
            candidates: list[ast.AST] = []
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                    and node.func.id in self._BOUND_CALLS:
                candidates = list(node.args)
            elif isinstance(node, ast.Slice):
                candidates = [b for b in (node.lower, node.upper) if b is not None]
            for arg in candidates:
                if isinstance(arg, ast.BinOp) and isinstance(
                    arg.op, (ast.Add, ast.Sub)
                ):
                    out.append(Target(arg, arg.lineno, arg.col_offset,
                                      "bound expression minus 1"))
        return _sort_targets(out)

    def mutate(self, target):
        node = target.node
        clone = ast.BinOp(
            left=ast.BinOp(left=node.left, op=node.op, right=node.right),
            op=ast.Sub(),
            right=ast.Constant(value=1),
        )
        ast.copy_location(clone, node)
        ast.fix_missing_locations(clone)
        node.left, node.op, node.right = clone.left, clone.op, clone.right


def _with_names(node: ast.With) -> list[str]:
    names = []
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        parts = []
        while isinstance(expr, ast.Attribute):
            parts.append(expr.attr)
            expr = expr.value
        if isinstance(expr, ast.Name):
            parts.append(expr.id)
        names.extend(parts)
    return names


class DropLockAcquire(Operator):
    """Unwrap a ``with <lock>:`` block — the guarded section still runs,
    just without mutual exclusion; exactly the race the sanitizer and the
    model checker exist to catch."""

    name = "drop-lock"
    description = "unwrap a with-lock block (body runs unguarded)"

    def find(self, tree, module):
        out = []
        for node, parent, field, index in _walk_with_parents(tree):
            if not isinstance(node, ast.With) or index is None:
                continue
            if any("lock" in name.lower() for name in _with_names(node)):
                out.append(Target(node, node.lineno, node.col_offset,
                                  "drop lock acquisition, keep body",
                                  (parent, field, index)))
        return _sort_targets(out)

    def mutate(self, target):
        assert target.parent is not None
        parent, field, index = target.parent
        body = getattr(parent, field)
        with_node = body[index]
        body[index:index + 1] = list(with_node.body)


class DropFinallyRelease(Operator):
    """Delete a release/close/unlink/clear call from a ``finally`` block:
    the resource leaks exactly on the error path."""

    name = "drop-finally"
    description = "delete a release/close call from a finally block"

    _RELEASE_HINTS = ("release", "close", "unlink", "shutdown", "clear",
                      "discard")

    def find(self, tree, module):
        out = []
        for node, _, _, _ in _walk_with_parents(tree):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for i, stmt in enumerate(node.finalbody):
                attr = _call_attr(stmt)
                if attr is not None and any(
                    hint in attr for hint in self._RELEASE_HINTS
                ):
                    out.append(Target(stmt, stmt.lineno, stmt.col_offset,
                                      "drop %s(...) from finally" % attr,
                                      (node, "finalbody", i)))
        return _sort_targets(out)

    def mutate(self, target):
        _drop_statement(target)


class CommuteMerge(Operator):
    """Commute a partial-aggregate merge inside merge-flavoured functions
    (``merge``/``merge_*``/``add_morsel``/``combine*``): reverse the fold
    order of a loop, or flip ``a.merge(b)`` into ``b.merge(a)``.  The
    combiners are only deterministic because merges run in morsel order."""

    name = "commute-merge"
    description = "commute a merge fold (reverse loop or swap receiver/arg)"

    _FN_HINTS = ("merge", "add_morsel", "combine")

    def _merge_functions(self, tree):
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and any(
                hint in node.name for hint in self._FN_HINTS
            ):
                yield node

    def find(self, tree, module):
        out = []
        for fn in self._merge_functions(tree):
            for node in ast.walk(fn):
                if isinstance(node, ast.For):
                    out.append(Target(node, node.lineno, node.col_offset,
                                      "reverse merge fold order"))
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "merge"
                    and len(node.args) == 1
                    and isinstance(node.args[0], (ast.Name, ast.Attribute))
                    and isinstance(node.func.value, (ast.Name, ast.Attribute))
                ):
                    out.append(Target(node, node.lineno, node.col_offset,
                                      "swap merge receiver and argument"))
        return _sort_targets(out)

    def mutate(self, target):
        node = target.node
        if isinstance(node, ast.For):
            node.iter = ast.copy_location(
                ast.Call(func=ast.Name(id="reversed", ctx=ast.Load()),
                         args=[node.iter], keywords=[]),
                node.iter,
            )
            ast.fix_missing_locations(node.iter)
        else:
            receiver, argument = node.func.value, node.args[0]
            node.func.value, node.args[0] = argument, receiver


class InvertPredicate(Operator):
    """Negate one comparison in predicate-evaluation code (expression,
    fused-kernel, SIMD and column modules): the filter keeps exactly the
    rows it should drop."""

    name = "invert-predicate"
    description = "negate one comparison in predicate-evaluation modules"

    _MODULE_HINTS = ("expression", "fused", "simd", "predicate", "column")
    _NEGATE = {ast.Eq: ast.NotEq, ast.NotEq: ast.Eq, ast.Lt: ast.GtE,
               ast.GtE: ast.Lt, ast.Gt: ast.LtE, ast.LtE: ast.Gt}

    def find(self, tree, module):
        if not any(hint in module for hint in self._MODULE_HINTS):
            return []
        out = []
        for node, _, _, _ in _walk_with_parents(tree):
            if (
                isinstance(node, ast.Compare)
                and len(node.ops) == 1
                and type(node.ops[0]) in self._NEGATE
            ):
                out.append(Target(node, node.lineno, node.col_offset,
                                  "negate %s comparison"
                                  % type(node.ops[0]).__name__))
        return _sort_targets(out)

    def mutate(self, target):
        node = target.node
        node.ops[0] = self._NEGATE[type(node.ops[0])]()


# ---------------------------------------------------------------------------
# generic operators
# ---------------------------------------------------------------------------


class Boundary(Operator):
    """Classic boundary mutation: ``<`` ↔ ``<=`` and ``>`` ↔ ``>=``."""

    name = "boundary"
    description = "swap strict and non-strict comparison (< <-> <=, > <-> >=)"

    _SWAP = {ast.Lt: ast.LtE, ast.LtE: ast.Lt, ast.Gt: ast.GtE, ast.GtE: ast.Gt}

    def find(self, tree, module):
        out = []
        for node, _, _, _ in _walk_with_parents(tree):
            if (
                isinstance(node, ast.Compare)
                and len(node.ops) == 1
                and type(node.ops[0]) in self._SWAP
            ):
                out.append(Target(node, node.lineno, node.col_offset,
                                  "%s boundary swap"
                                  % type(node.ops[0]).__name__))
        return _sort_targets(out)

    def mutate(self, target):
        node = target.node
        node.ops[0] = self._SWAP[type(node.ops[0])]()


class BooleanFlip(Operator):
    """``and`` ↔ ``or``, and ``not x`` → ``x``."""

    name = "boolean"
    description = "flip and/or, strip a not"

    def find(self, tree, module):
        out = []
        for node, _, _, _ in _walk_with_parents(tree):
            if isinstance(node, ast.BoolOp):
                out.append(Target(node, node.lineno, node.col_offset,
                                  "and <-> or"))
            elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
                out.append(Target(node, node.lineno, node.col_offset,
                                  "strip not"))
        return _sort_targets(out)

    def mutate(self, target):
        node = target.node
        if isinstance(node, ast.BoolOp):
            node.op = ast.Or() if isinstance(node.op, ast.And) else ast.And()
        else:
            # `not x` -> `not not x` (== bool(x)): the polarity flips back
            # to the operand's truthiness while the mutation stays in
            # place on the UnaryOp node (the node's expression slot in its
            # parent never has to be rewired).
            inner = ast.UnaryOp(op=ast.Not(), operand=node.operand)
            ast.copy_location(inner, node)
            ast.fix_missing_locations(inner)
            node.operand = inner


class ConstantTweak(Operator):
    """Add one to a small integer constant."""

    name = "constant"
    description = "replace small integer constant c with c + 1"

    _LIMIT = 4096

    def find(self, tree, module):
        out = []
        for node, _, _, _ in _walk_with_parents(tree):
            if (
                isinstance(node, ast.Constant)
                and type(node.value) is int
                and abs(node.value) <= self._LIMIT
            ):
                out.append(Target(node, node.lineno, node.col_offset,
                                  "%d -> %d" % (node.value, node.value + 1)))
        return _sort_targets(out)

    def mutate(self, target):
        target.node.value = target.node.value + 1


# ---------------------------------------------------------------------------
# catalog
# ---------------------------------------------------------------------------

#: Every operator, in catalog (and report) order.  Repo-specific first.
ALL_OPERATORS: tuple[Operator, ...] = (
    DropWalAppend(),
    DropCommitHook(),
    SwapVersionStamp(),
    OffByOneRange(),
    DropLockAcquire(),
    DropFinallyRelease(),
    CommuteMerge(),
    InvertPredicate(),
    Boundary(),
    BooleanFlip(),
    ConstantTweak(),
)

OPERATORS_BY_NAME: dict[str, Operator] = {op.name: op for op in ALL_OPERATORS}

#: The operator set CI runs by default: every repo-specific operator plus
#: the generic trio.
DEFAULT_OPERATOR_NAMES: tuple[str, ...] = tuple(op.name for op in ALL_OPERATORS)


def resolve_operators(names: list[str] | None) -> list[Operator]:
    """Map operator names to instances; None means the full catalog."""
    if not names:
        return list(ALL_OPERATORS)
    unknown = [n for n in names if n not in OPERATORS_BY_NAME]
    if unknown:
        raise ValueError(
            "unknown mutation operator(s): %s (known: %s)"
            % (", ".join(sorted(unknown)), ", ".join(OPERATORS_BY_NAME))
        )
    return [OPERATORS_BY_NAME[n] for n in names]
