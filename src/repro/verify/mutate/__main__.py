"""CLI for repromutate (``python -m repro.verify.mutate`` /
``repro-verify mutate``) plus the ``repro-verify impact`` query.

Exit status of ``mutate``: 0 when the run is healthy, 1 when the kill
rate regresses against ``--baseline`` (or, without a baseline, when any
selected test could not even be attempted due to an operator bug).  A
surviving mutant alone is *not* an error — survivors are the product,
reported for triage; CI gates on the baseline comparison instead.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.verify.mutate.engine import (
    BUDGET_ENV_VAR,
    DEFAULT_MAX_MUTANTS,
    DEFAULT_MAX_TESTS,
    DEFAULT_TARGET_PATHS,
    MutationRun,
    compare_baseline,
)
from repro.verify.mutate.impact import (
    ImpactMap,
    load_project_sources,
    resolve_symbol_spec,
)
from repro.verify.mutate.operators import ALL_OPERATORS


def _print_report(report, stream=sys.stdout) -> None:
    counts = report.counts()
    print("repromutate: seed=%d budget=%.0fs wall=%.1fs"
          % (report.seed, report.budget, report.wall_seconds), file=stream)
    print("  mutants: %d  killed=%d survived=%d timeout=%d unreached=%d "
          "skipped=%d" % (len(report.results), counts["killed"],
                          counts["survived"], counts["timeout"],
                          counts["unreached"], counts["skipped"]),
          file=stream)
    rate = report.kill_rate
    print("  kill rate (reached): %s"
          % ("n/a" if rate is None else "%.2f" % rate), file=stream)
    print("  per operator:", file=stream)
    for name, stats in report.per_operator().items():
        op_rate = stats["kill_rate"]
        print("    %-16s sampled=%-3d killed=%-3d survived=%-3d "
              "unreached=%-3d rate=%s"
              % (name, stats["sampled"], stats["killed"], stats["survived"],
                 stats["unreached"],
                 "n/a" if op_rate is None else "%.2f" % op_rate),
              file=stream)
    survivors = report.survivors()
    if survivors:
        print("  surviving mutants (test gaps):", file=stream)
        for result in survivors:
            mutant = result.mutant
            print("    %s — %s" % (mutant.mid, mutant.description),
                  file=stream)
            print("      ran: %s" % ", ".join(result.tests), file=stream)
            for line in result.diff.splitlines():
                print("      | %s" % line, file=stream)
    unreached = report.unreached()
    if unreached:
        print("  unreached mutants (no test file statically reaches the "
              "symbol):", file=stream)
        for result in unreached:
            mutant = result.mutant
            print("    %s — %s::%s" % (
                mutant.mid, mutant.module, mutant.symbol or "<module>",
            ), file=stream)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-verify mutate",
        description="callgraph-guided mutation analysis: inject "
                    "repo-specific faults, run only the test files that "
                    "statically reach each one, score the kill rate",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for per-operator mutant sampling "
                             "(default 0)")
    parser.add_argument("--operators", default=None,
                        help="comma-separated operator names "
                             "(default: all; see --list-operators)")
    parser.add_argument("--paths", nargs="*", default=None,
                        help="target files/dirs relative to --root "
                             "(default: curated engine surfaces)")
    parser.add_argument("--budget", type=float, default=None,
                        help="total execution budget in seconds "
                             "(default: $%s or 600)" % BUDGET_ENV_VAR)
    parser.add_argument("--max-mutants", type=int,
                        default=DEFAULT_MAX_MUTANTS,
                        help="cap on sampled mutants (0 = unlimited)")
    parser.add_argument("--max-tests", type=int, default=DEFAULT_MAX_TESTS,
                        help="test files run per mutant, most specific "
                             "first (default %d)" % DEFAULT_MAX_TESTS)
    parser.add_argument("--root", default=".",
                        help="project root holding src/ and tests/")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the full JSON report to stdout")
    parser.add_argument("--report", default=None, metavar="FILE",
                        help="also write the JSON report to FILE")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="committed report to compare kill rates "
                             "against; regression exits 1")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed kill-rate drop vs baseline "
                             "(default 0.05)")
    parser.add_argument("--list-operators", action="store_true",
                        help="list operators and exit")
    args = parser.parse_args(argv)

    if args.list_operators:
        for op in ALL_OPERATORS:
            print("%-16s %s" % (op.name, op.description))
        return 0

    run = MutationRun(
        root=args.root,
        paths=tuple(args.paths) if args.paths else DEFAULT_TARGET_PATHS,
        operator_names=(
            tuple(p.strip() for p in args.operators.split(",") if p.strip())
            if args.operators else None
        ),
        seed=args.seed,
        budget=args.budget,
        max_mutants=args.max_mutants or None,
        max_tests=args.max_tests,
    )

    def progress(result):
        if not args.as_json:
            print("  [%s] %s (%.1fs)" % (result.status, result.mutant.mid,
                                         result.seconds), file=sys.stderr)

    report = run.execute(progress=progress)
    report_json = report.to_json()

    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report_json, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.as_json:
        print(json.dumps(report_json, indent=2, sort_keys=True))
    else:
        _print_report(report)

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        regressions = compare_baseline(report_json, baseline,
                                       tolerance=args.tolerance)
        for line in regressions:
            print("REGRESSION: %s" % line, file=sys.stderr)
        if regressions:
            return 1
    return 0


def impact_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-verify impact",
        description="print the test files whose static call closure "
                    "reaches a symbol (<module>::<symbol>)",
    )
    parser.add_argument("spec",
                        help="symbol spec, e.g. repro.mvcc.txn::"
                             "Transaction.commit or "
                             "src/repro/parallel/morsel.py::morsel_ranges")
    parser.add_argument("--root", default=".",
                        help="project root holding src/ and tests/")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit JSON ({symbols: [...]} )")
    args = parser.parse_args(argv)

    impact = ImpactMap.build(load_project_sources(args.root))
    try:
        matches = resolve_symbol_spec(impact, args.spec)
    except ValueError as exc:
        print("repro-verify impact: %s" % exc, file=sys.stderr)
        return 2
    if not matches:
        print("repro-verify impact: no symbol matches %r" % args.spec,
              file=sys.stderr)
        return 2

    entries = []
    for info in matches:
        tests = impact.tests_reaching(info.module, info.qualname)
        entries.append({
            "module": info.module,
            "symbol": info.qualname,
            "line": info.lineno,
            "tests": tests,
        })
    if args.as_json:
        print(json.dumps({"spec": args.spec, "symbols": entries}, indent=2))
    else:
        for entry in entries:
            print("%s::%s (line %d)" % (entry["module"], entry["symbol"],
                                        entry["line"]))
            if entry["tests"]:
                for test in entry["tests"]:
                    print("  %s" % test)
            else:
                print("  (statically unreached by any test file)")
    return 0 if any(e["tests"] for e in entries) else 1


if __name__ == "__main__":
    from repro.verify.mutate.__main__ import main as _canonical_main

    raise SystemExit(_canonical_main())
