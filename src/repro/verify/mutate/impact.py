"""Tests-aware call graph: which test files statically reach a symbol.

Builds on :class:`repro.verify.flow.callgraph.ProjectIndex`, with two
deliberate differences from the reproflow configuration:

* the ambiguity limit is raised (:data:`TEST_AMBIGUITY_LIMIT`): reproflow
  drops generic-name call edges so its must-reach obligations cannot go
  vacuous, but for kill-set *selection* the over-approximation direction
  flips — a spurious edge only means running one extra test file, while a
  dropped edge means a mutant silently classified unreached.  The
  unreached report is still the soundness backstop (DESIGN.md note 16);
* bare-name calls that resolve to a project *class* link to that class's
  ``__init__`` (and unresolved bare names fall back to any project
  function with that name), because tests construct engines by class name
  through package re-exports (``from repro.database import Database``)
  that suffix-based module resolution cannot see through.

The map answers two queries:

* ``tests_reaching(module, qualname)`` — test files whose transitive call
  closure contains the symbol, most-specific first (direct call edges to
  the symbol, then into its module, then smallest closure);
* ``symbol_at(module, lineno)`` — the innermost function enclosing a
  source line, i.e. the symbol a mutation at that line lands in.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field

from repro.verify.flow.callgraph import FunctionInfo, ProjectIndex
from repro.verify.lint import iter_python_files

#: Opaque-call threshold for the tests-aware graph (reproflow uses 3).
TEST_AMBIGUITY_LIMIT = 64


class TestAwareIndex(ProjectIndex):
    """ProjectIndex with constructor linking and a permissive ambiguity
    limit — the right over-approximation posture for test selection."""

    def __init__(self, sources: dict[str, str],
                 ambiguity_limit: int = TEST_AMBIGUITY_LIMIT):
        super().__init__(sources, ambiguity_limit=ambiguity_limit)

    def _constructor_targets(self, name: str) -> list[FunctionInfo]:
        out = []
        for info in self.classes.get(name, []):
            init = self.functions.get((info.module, "%s.__init__" % name))
            if init is not None:
                out.append(init)
        return out

    def resolve_name(self, module: str, name: str) -> list[FunctionInfo]:
        targets = super().resolve_name(module, name)
        ctors = self._constructor_targets(name)
        if not targets:
            # Package re-exports (`from repro.database import Database`)
            # defeat suffix-based module resolution; fall back to every
            # project function with the name, capped like attribute calls.
            fallback = list(self._toplevel_by_name.get(name, []))
            if len(fallback) <= self.ambiguity_limit:
                targets = fallback
        return _dedup(targets + ctors)

    def resolve_attr(self, module: str, caller, chain, name):
        targets = super().resolve_attr(module, caller, chain, name)
        return _dedup(targets + self._constructor_targets(name))


def _dedup(infos: list[FunctionInfo]) -> list[FunctionInfo]:
    seen: set[tuple[str, str]] = set()
    out = []
    for info in infos:
        if info.key not in seen:
            seen.add(info.key)
            out.append(info)
    return out


@dataclass
class ImpactMap:
    """Reachability from every test file into the project graph."""

    index: TestAwareIndex
    #: symbol key -> set of test-file modules reaching it
    reached_by: dict[tuple[str, str], set[str]] = field(default_factory=dict)
    #: test-file module -> number of symbols its closure contains
    closure_size: dict[str, int] = field(default_factory=dict)
    #: test-file module -> {target module: direct call-edge count}
    direct_refs: dict[str, dict[str, int]] = field(default_factory=dict)
    #: test-file module -> {target symbol key: direct call-edge count}
    symbol_refs: dict[str, dict[tuple[str, str], int]] = field(
        default_factory=dict)
    #: module -> functions sorted by line for symbol_at lookups
    _by_module: dict[str, list[FunctionInfo]] = field(default_factory=dict)

    @classmethod
    def build(cls, sources: dict[str, str],
              test_prefix: str = "tests/") -> "ImpactMap":
        index = TestAwareIndex(sources)
        impact = cls(index=index)
        for info in index.functions.values():
            impact._by_module.setdefault(info.module, []).append(info)
        for infos in impact._by_module.values():
            infos.sort(key=lambda f: f.lineno)
        for test_module in sorted(index.lines):
            if not _is_test_module(test_module, test_prefix):
                continue
            closure = impact._closure_from(test_module)
            impact.closure_size[test_module] = len(closure)
            impact.direct_refs[test_module] = impact._direct_refs(test_module)
            for key in closure:
                impact.reached_by.setdefault(key, set()).add(test_module)
        return impact

    def _direct_refs(self, test_module: str) -> dict[str, int]:
        """Call-edge counts from functions *defined in the test file* into
        each project module.  Transitive closures in this graph are so
        over-approximated that nearly every test reaches nearly every
        symbol (the permissive ambiguity limit is deliberate — see the
        module docstring); the *direct* edge profile is the signal that
        survives it.  A test file with forty direct calls into
        ``durability/manager.py`` exercises that module on purpose; one
        that merely reaches it through ``Database.execute`` does not.

        Also populates :attr:`symbol_refs` — the same counts at function
        granularity, so ranking can put a test that calls the mutated
        symbol *itself* ahead of one that merely hammers its module."""
        refs: dict[str, int] = {}
        by_key = self.symbol_refs.setdefault(test_module, {})
        for info in self._by_module.get(test_module, []):
            for site in self.index.calls.get(info.key, []):
                for target in site.targets:
                    if target.module != test_module:
                        refs[target.module] = refs.get(target.module, 0) + 1
                        by_key[target.key] = by_key.get(target.key, 0) + 1
        return refs

    def _closure_from(self, test_module: str) -> set[tuple[str, str]]:
        """Every function key reachable from any function defined in the
        test file — fixtures and helpers included, so pytest's implicit
        fixture injection cannot hide an edge at file granularity."""
        roots = [
            info.key for info in self._by_module.get(test_module, [])
        ]
        seen: set[tuple[str, str]] = set(roots)
        queue = deque(roots)
        while queue:
            key = queue.popleft()
            for site in self.index.calls.get(key, []):
                for target in site.targets:
                    if target.key not in seen:
                        seen.add(target.key)
                        queue.append(target.key)
        return seen

    # -- queries ---------------------------------------------------------------

    def test_files(self) -> list[str]:
        return sorted(self.closure_size)

    def symbol_at(self, module: str, lineno: int) -> FunctionInfo | None:
        """Innermost function of *module* whose body spans *lineno*."""
        best: FunctionInfo | None = None
        for info in self._by_module.get(module, []):
            node = info.node
            end = getattr(node, "end_lineno", None) or node.lineno
            if node.lineno <= lineno <= end:
                if best is None or node.lineno >= best.node.lineno:
                    best = info
        return best

    def tests_reaching(self, module: str, qualname: str | None) -> list[str]:
        """Test files reaching ``module::qualname``, most specific first.

        Specificity ranks by (1) direct call edges from the test file to
        the mutated symbol itself, then (2) direct edges into the mutant's
        module — the signals that survive the deliberately
        over-approximated transitive closure — then (3) closure size
        (smaller = more focused), then name for determinism.

        ``qualname=None`` (a module-level mutation site) widens to every
        test reaching *any* symbol of the module — the conservative
        choice, since module-level code runs on import.
        """
        if qualname is not None:
            files = self.reached_by.get((module, qualname), set())
        else:
            files = set()
            for info in self._by_module.get(module, []):
                files |= self.reached_by.get(info.key, set())
        key = (module, qualname)
        return sorted(files, key=lambda f: (
            -self.symbol_refs.get(f, {}).get(key, 0),
            -self.direct_refs.get(f, {}).get(module, 0),
            self.closure_size.get(f, 0),
            f,
        ))

    def reaching_symbols(self, test_module: str) -> set[tuple[str, str]]:
        return {
            key for key, tests in self.reached_by.items()
            if test_module in tests
        }


def _is_test_module(module: str, test_prefix: str) -> bool:
    name = module.rsplit("/", 1)[-1]
    return module.startswith(test_prefix) and name.startswith("test_")


def load_project_sources(root: str, dirs: tuple[str, ...] = ("src", "tests"),
                         ) -> dict[str, str]:
    """Read every ``.py`` under ``root/<dir>`` keyed by root-relative,
    '/'-separated path (the module vocabulary of the whole analyzer)."""
    sources: dict[str, str] = {}
    for sub in dirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for path in iter_python_files([base]):
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, "r", encoding="utf-8") as handle:
                sources[rel] = handle.read()
    return sources


# -- symbol-spec resolution for the `repro-verify impact` CLI -----------------


def resolve_symbol_spec(impact: ImpactMap, spec: str):
    """Resolve ``<module>::<symbol>`` to matching FunctionInfo entries.

    The module part accepts a dotted module (``repro.parallel.morsel``), a
    path (``src/repro/parallel/morsel.py``) or any unambiguous suffix of
    one; the symbol part is a qualname (``Transaction.commit``) or a bare
    name matched against qualname tails.
    """
    if "::" not in spec:
        raise ValueError("symbol spec must look like <module>::<symbol>")
    mod_part, sym_part = spec.split("::", 1)
    suffix = mod_part.replace(".", "/")
    if not suffix.endswith(".py"):
        suffix += ".py"
    modules = sorted(
        m for m in impact.index.lines if m.endswith(suffix)
    )
    matches = []
    for module in modules:
        for info in impact._by_module.get(module, []):
            if info.qualname == sym_part or info.qualname.endswith(
                "." + sym_part
            ) or info.name == sym_part:
                matches.append(info)
    return matches
