"""repromutate engine: generate → select kill set → run → classify.

Determinism contract: mutant *generation* is a pure function of (sources,
operator set, seed) — operators walk the AST in source order, sampling
draws from :func:`repro.util.rng.derive_rng`, and nothing in the
generation path reads a clock or global RNG state.  Only the *execution*
phase consumes wall time, and it does so under an explicit budget
(``REPRO_MUTATE_BUDGET`` seconds): mutants that never get a slot are
classified ``skipped`` rather than silently dropped.

Classification per mutant:

* ``unreached`` — no test file's static call closure contains the mutated
  symbol.  Nothing is run; the mutant is a *finding* about the test
  battery (and the soundness backstop for impact-based selection);
* ``killed``   — the selected tests fail (or crash) under the mutant;
* ``survived`` — every selected test passes: a real gap in the battery,
  reported with a witness diff;
* ``timeout``  — the selected tests exceeded the per-mutant slice;
* ``skipped``  — the run's time budget was exhausted first.

The kill rate is ``killed / (killed + survived)`` — timeouts are reported
but don't count either way (a hung mutant proves nothing about assertion
strength), and unreached mutants are excluded by definition.
"""

from __future__ import annotations

import ast
import difflib
import os
import shutil
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field

from repro.util.rng import derive_rng
from repro.verify.lint import iter_python_files
from repro.verify.mutate.impact import ImpactMap, load_project_sources
from repro.verify.mutate.operators import Operator, resolve_operators

#: Environment knob: total execution budget in seconds.
BUDGET_ENV_VAR = "REPRO_MUTATE_BUDGET"

#: Defaults, overridable per run.
DEFAULT_BUDGET_SECONDS = 600.0
DEFAULT_PER_MUTANT_TIMEOUT = 120.0
DEFAULT_MAX_TESTS = 3
DEFAULT_MAX_MUTANTS = 64

#: Default mutation targets: the engine surfaces whose bug classes the
#: operators model.  Verification tooling itself is deliberately out of
#: scope (mutating the checker to score the checker proves nothing).
DEFAULT_TARGET_PATHS = (
    "src/repro/storage/table.py",
    "src/repro/mvcc/txn.py",
    "src/repro/parallel/morsel.py",
    "src/repro/engine/aggregate.py",
    "src/repro/engine/expression.py",
    "src/repro/durability/manager.py",
    "src/repro/database/database.py",
    "src/repro/serving/cache.py",
)


@dataclass
class Mutant:
    """One generated mutant (pre-execution)."""

    mid: str
    operator: str
    module: str          # root-relative '/'-separated path
    lineno: int
    col: int
    ordinal: int         # index into the operator's target list for module
    description: str
    symbol: str | None = None

    def to_json(self) -> dict:
        return {
            "id": self.mid,
            "operator": self.operator,
            "module": self.module,
            "line": self.lineno,
            "col": self.col,
            "description": self.description,
            "symbol": self.symbol,
        }


@dataclass
class MutantResult:
    mutant: Mutant
    status: str                    # killed | survived | timeout | unreached | skipped
    tests: list[str] = field(default_factory=list)
    reaching: int = 0              # total reaching test files before the cap
    seconds: float = 0.0
    diff: str = ""

    def to_json(self) -> dict:
        out = self.mutant.to_json()
        out.update({
            "status": self.status,
            "tests": self.tests,
            "reaching_tests": self.reaching,
            "seconds": round(self.seconds, 3),
            "diff": self.diff,
        })
        return out


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------


def generate_mutants(
    sources: dict[str, str],
    operators: list[Operator],
    seed: int = 0,
    max_mutants: int | None = DEFAULT_MAX_MUTANTS,
) -> list[Mutant]:
    """Enumerate every mutation site, then (if over ``max_mutants``)
    sample a per-operator quota with a seed-derived stream.

    Stratified sampling keeps every operator represented — the benchmark
    pins *per-operator* kill rates, so a proportional sample that starves
    ``drop-wal`` (few sites) in favour of ``constant`` (hundreds) would
    make the interesting rows vacuous.
    """
    per_op: dict[str, list[Mutant]] = {}
    for op in operators:
        found: list[Mutant] = []
        for module in sorted(sources):
            try:
                tree = ast.parse(sources[module], filename=module)
            except SyntaxError:
                continue
            for ordinal, target in enumerate(op.find(tree, module)):
                mid = "%s@%s:%d:%d" % (op.name, module, target.lineno,
                                       target.col)
                found.append(Mutant(
                    mid=mid, operator=op.name, module=module,
                    lineno=target.lineno, col=target.col, ordinal=ordinal,
                    description=target.description,
                ))
        per_op[op.name] = found

    if max_mutants is not None:
        total = sum(len(v) for v in per_op.values())
        if total > max_mutants:
            quota = max(1, max_mutants // max(1, len(operators)))
            for name, found in per_op.items():
                if len(found) > quota:
                    rng = derive_rng(seed, "mutate", "sample", name)
                    picks = sorted(
                        rng.choice(len(found), size=quota, replace=False)
                        .tolist()
                    )
                    per_op[name] = [found[i] for i in picks]

    out: list[Mutant] = []
    for op in operators:
        out.extend(per_op[op.name])
    out.sort(key=lambda m: (m.module, m.lineno, m.col, m.operator))
    # Disambiguate ids when one operator has several targets on one site
    # (e.g. two keywords in one call): suffix the ordinal.
    seen: dict[str, int] = {}
    for mutant in out:
        n = seen.get(mutant.mid, 0)
        seen[mutant.mid] = n + 1
        if n:
            mutant.mid = "%s#%d" % (mutant.mid, n)
    return out


def mutate_source(source: str, mutant: Mutant, op: Operator) -> tuple[str, str]:
    """Apply *mutant* to *source*; returns (mutated source, witness diff).

    Both sides of the diff are ``ast.unparse`` renderings, so the diff
    shows exactly the mutated statement(s) without formatting noise.
    """
    pristine = ast.parse(source, filename=mutant.module)
    baseline = ast.unparse(pristine) + "\n"
    tree = ast.parse(source, filename=mutant.module)
    if not op.apply(tree, mutant.module, mutant.ordinal):
        raise RuntimeError("mutant %s no longer applies" % mutant.mid)
    ast.fix_missing_locations(tree)
    mutated = ast.unparse(tree) + "\n"
    diff = "".join(
        difflib.unified_diff(
            baseline.splitlines(keepends=True),
            mutated.splitlines(keepends=True),
            fromfile="a/%s" % mutant.module,
            tofile="b/%s (%s)" % (mutant.module, mutant.mid),
            n=2,
        )
    )
    return mutated, diff


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


def resolve_budget(budget: float | None) -> float:
    if budget is not None:
        return float(budget)
    env = os.environ.get(BUDGET_ENV_VAR)
    if env:
        try:
            return float(env)
        except ValueError:
            raise ValueError(
                "%s must be a number of seconds, got %r" % (BUDGET_ENV_VAR, env)
            ) from None
    return DEFAULT_BUDGET_SECONDS


@dataclass
class MutationRun:
    """One full mutation-analysis run over a project tree."""

    root: str
    paths: tuple[str, ...] = DEFAULT_TARGET_PATHS
    operator_names: tuple[str, ...] | None = None
    seed: int = 0
    budget: float | None = None
    max_mutants: int | None = DEFAULT_MAX_MUTANTS
    max_tests: int = DEFAULT_MAX_TESTS
    per_mutant_timeout: float = DEFAULT_PER_MUTANT_TIMEOUT

    def target_sources(self) -> dict[str, str]:
        sources: dict[str, str] = {}
        for path in self.paths:
            absolute = os.path.join(self.root, path)
            for file_path in iter_python_files([absolute]):
                rel = os.path.relpath(file_path, self.root).replace(os.sep, "/")
                with open(file_path, "r", encoding="utf-8") as handle:
                    sources[rel] = handle.read()
        return sources

    def execute(self, progress=None) -> "MutationReport":
        operators = resolve_operators(
            list(self.operator_names) if self.operator_names else None
        )
        sources = self.target_sources()
        mutants = generate_mutants(sources, operators, self.seed,
                                   self.max_mutants)
        impact = ImpactMap.build(load_project_sources(self.root))
        for mutant in mutants:
            info = impact.symbol_at(mutant.module, mutant.lineno)
            mutant.symbol = info.qualname if info else None

        budget = resolve_budget(self.budget)
        ops_by_name = {op.name: op for op in operators}
        results: list[MutantResult] = []
        started = time.monotonic()
        workdir = tempfile.mkdtemp(prefix="repromutate-")
        try:
            self._populate_workdir(workdir)
            for mutant in mutants:
                reaching = impact.tests_reaching(mutant.module, mutant.symbol)
                if not reaching:
                    results.append(MutantResult(mutant, "unreached"))
                    continue
                selected = reaching[: self.max_tests]
                elapsed = time.monotonic() - started
                if elapsed >= budget:
                    results.append(MutantResult(
                        mutant, "skipped", tests=selected,
                        reaching=len(reaching),
                    ))
                    continue
                slot = min(self.per_mutant_timeout, budget - elapsed)
                result = self._run_one(
                    workdir, sources[mutant.module], mutant,
                    ops_by_name[mutant.operator], selected, slot,
                )
                result.reaching = len(reaching)
                results.append(result)
                if progress is not None:
                    progress(result)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        return MutationReport(
            seed=self.seed,
            budget=budget,
            paths=list(self.paths),
            operators=[op.name for op in operators],
            max_tests=self.max_tests,
            results=results,
            wall_seconds=time.monotonic() - started,
        )

    # -- workdir management ----------------------------------------------------

    def _populate_workdir(self, workdir: str) -> None:
        """Copy the project into a scratch tree: mutants must never touch
        the real checkout, and a crashed run leaves no mutated file
        behind."""
        for sub in ("src", "tests"):
            src_dir = os.path.join(self.root, sub)
            if os.path.isdir(src_dir):
                shutil.copytree(
                    src_dir, os.path.join(workdir, sub),
                    ignore=shutil.ignore_patterns("__pycache__"),
                )
        for name in ("pyproject.toml", "setup.py", "conftest.py"):
            path = os.path.join(self.root, name)
            if os.path.isfile(path):
                shutil.copy2(path, os.path.join(workdir, name))

    def _run_one(self, workdir: str, source: str, mutant: Mutant,
                 op: Operator, tests: list[str], slot: float) -> MutantResult:
        mutated, diff = mutate_source(source, mutant, op)
        target = os.path.join(workdir, *mutant.module.split("/"))
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(mutated)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(workdir, "src")
        env.pop("REPRO_VERIFY_PLANS", None)
        started = time.monotonic()
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "pytest", "-x", "-q",
                 "-p", "no:cacheprovider", *tests],
                cwd=workdir, env=env, timeout=slot,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            status = (
                "survived" if proc.returncode == 0
                else "unreached" if proc.returncode == 5
                else "killed"
            )
        except subprocess.TimeoutExpired:
            status = "timeout"
        finally:
            # Restore the pristine module for the next mutant.
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(source)
        return MutantResult(
            mutant, status, tests=tests,
            seconds=time.monotonic() - started, diff=diff,
        )


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------

STATUSES = ("killed", "survived", "timeout", "unreached", "skipped")


def _kill_rate(killed: int, survived: int) -> float | None:
    reached = killed + survived
    return (killed / reached) if reached else None


@dataclass
class MutationReport:
    seed: int
    budget: float
    paths: list[str]
    operators: list[str]
    max_tests: int
    results: list[MutantResult]
    wall_seconds: float = 0.0

    def counts(self, operator: str | None = None) -> dict[str, int]:
        out = {status: 0 for status in STATUSES}
        for result in self.results:
            if operator is None or result.mutant.operator == operator:
                out[result.status] += 1
        return out

    @property
    def kill_rate(self) -> float | None:
        c = self.counts()
        return _kill_rate(c["killed"], c["survived"])

    def per_operator(self) -> dict[str, dict]:
        out: dict[str, dict] = {}
        for name in self.operators:
            c = self.counts(name)
            c["kill_rate"] = _kill_rate(c["killed"], c["survived"])
            c["sampled"] = sum(
                1 for r in self.results if r.mutant.operator == name
            )
            out[name] = c
        return out

    def survivors(self) -> list[MutantResult]:
        return [r for r in self.results if r.status == "survived"]

    def unreached(self) -> list[MutantResult]:
        return [r for r in self.results if r.status == "unreached"]

    def to_json(self) -> dict:
        c = self.counts()
        return {
            "seed": self.seed,
            "budget_seconds": self.budget,
            "paths": self.paths,
            "operators": self.operators,
            "max_tests": self.max_tests,
            "wall_seconds": round(self.wall_seconds, 3),
            "counts": c,
            "kill_rate": self.kill_rate,
            "per_operator": self.per_operator(),
            "survivors": [r.to_json() for r in self.survivors()],
            "unreached": [r.mutant.to_json() for r in self.unreached()],
            "mutants": [r.to_json() for r in self.results],
        }


def compare_baseline(report_json: dict, baseline: dict,
                     tolerance: float = 0.05,
                     min_reached: int = 3) -> list[str]:
    """Kill-rate regressions of *report* against a committed *baseline*.

    Returns human-readable regression lines (empty = pass).  Overall kill
    rate must stay within ``tolerance`` of the baseline; per-operator
    rates are compared only where the baseline reached at least
    ``min_reached`` mutants (tiny denominators flap)."""
    regressions: list[str] = []
    base_rate = baseline.get("kill_rate")
    rate = report_json.get("kill_rate")
    if base_rate is not None:
        if rate is None:
            regressions.append(
                "no mutants reached (baseline kill rate %.2f)" % base_rate
            )
        elif rate < base_rate - tolerance:
            regressions.append(
                "overall kill rate %.2f < baseline %.2f - %.2f"
                % (rate, base_rate, tolerance)
            )
    for name, base_op in (baseline.get("per_operator") or {}).items():
        base_op_rate = base_op.get("kill_rate")
        if base_op_rate is None:
            continue
        if base_op.get("killed", 0) + base_op.get("survived", 0) < min_reached:
            continue
        current = (report_json.get("per_operator") or {}).get(name)
        if current is None:
            regressions.append("operator %s missing from run" % name)
            continue
        cur_rate = current.get("kill_rate")
        if cur_rate is not None and cur_rate < base_op_rate - tolerance:
            regressions.append(
                "operator %s kill rate %.2f < baseline %.2f - %.2f"
                % (name, cur_rate, base_op_rate, tolerance)
            )
    return regressions
