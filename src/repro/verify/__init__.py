"""Static analysis and runtime sanitizers for the engine's glue invariants.

Three tools live here, each checking an invariant regime that nothing else
enforces:

* :mod:`repro.verify.lint` — **reprolint**, a pluggable ``ast``-based lint
  framework with repo-specific rules (sim-clock discipline, seeded
  randomness, lock discipline in pool-submitted callables, no silent
  broad excepts, durability-log coverage).  Run it with
  ``python -m repro.verify.lint src``.
* :mod:`repro.verify.plan` — a static **plan verifier** that walks a
  compiled physical operator tree and re-derives schema, arity, and type
  propagation operator by operator, plus the ``parallel_safe()`` gate and
  cost-charge coverage.  Enabled before every SELECT when
  ``REPRO_VERIFY_PLANS=1``.
* :mod:`repro.verify.sanitizer` — an Eraser-style **lockset race
  sanitizer** that instruments worker-pool task spans and shared engine
  structures to report candidate data races.  Enabled via
  ``REPRO_SANITIZE=1``.

This package deliberately keeps its import surface lazy: the sanitizer
must be importable from the lowest engine layers (it depends only on the
standard library), while the plan verifier imports the engine — importing
``repro.verify`` itself must not create a cycle.
"""

from __future__ import annotations

__all__ = ["lint", "plan", "sanitizer"]
