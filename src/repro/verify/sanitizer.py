"""Eraser-style lockset race sanitizer for the parallel engine.

The morsel-parallel engine (PR 2) relies on a lock discipline that is
documented but — until this module — never checked at runtime: shared
structures (buffer pool, metrics registry, statement counters, WAL
buffers, worker-pool accumulators) may only be mutated while holding
their declared lock, and everything else must stay confined to the thread
that owns it.  This module implements the classic Eraser algorithm
(Savage et al., 1997): for every shared field it tracks the intersection
of locks held across all accessing threads, and reports a **candidate
race** the moment a field has been touched by two threads with no common
lock.

Design constraints:

* **zero overhead off** — every hook is behind the module-level
  :data:`ENABLED` flag (initialised from ``REPRO_SANITIZE``); disabled,
  the instrumentation is one attribute read per call site;
* **no engine imports** — this module depends only on the standard
  library, so the lowest engine layers (``parallel``, ``bufferpool``,
  ``durability``) can import it without cycles;
* **explicit instrumentation points** — Python cannot transparently
  intercept attribute traffic, so shared structures call
  :func:`access` at their mutation/read points and create their locks
  through :func:`make_lock`, which returns a :class:`TrackedLock` while
  sanitizing (and a plain ``threading.Lock`` otherwise).

The per-field state machine follows Eraser's refinement: a field starts
*virgin*, is *exclusive* to its first accessing thread (initialisation
without locks is fine), becomes *shared* on a read from a second thread
and *shared-modified* on any write once shared.  Locksets are refined
only in the shared states; an empty lockset in shared-modified reports a
race (once per field, with both access sites).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

ENV_VAR = "REPRO_SANITIZE"

#: Master switch.  Reading it is the only cost when the sanitizer is off.
ENABLED = os.environ.get(ENV_VAR, "") not in ("", "0")

_tls = threading.local()

#: The model-checker hook (:mod:`repro.verify.mc.scheduler`).  When set,
#: every :class:`TrackedLock` acquire/release and every :func:`access` on a
#: *governed* thread first yields to the checker's deterministic scheduler,
#: which owns the interleaving.  Threads the checker does not govern (the
#: test driver, scenario setup) pass straight through.
_MC_HOOK = None


def set_mc_hook(hook) -> None:
    """Install (or, with ``None``, remove) the model-checker hook."""
    global _MC_HOOK
    _MC_HOOK = hook


def mc_hook():
    return _MC_HOOK


def _held() -> set[str]:
    locks = getattr(_tls, "locks", None)
    if locks is None:
        locks = _tls.locks = []
    return set(locks)


def _push_lock(name: str) -> None:
    locks = getattr(_tls, "locks", None)
    if locks is None:
        locks = _tls.locks = []
    locks.append(name)


def _pop_lock(name: str) -> None:
    locks = getattr(_tls, "locks", None)
    if locks:
        # Remove the innermost matching acquisition (RLock re-entry safe).
        for i in range(len(locks) - 1, -1, -1):
            if locks[i] == name:
                del locks[i]
                return


# -- runtime lock-acquisition graph ------------------------------------------
#
# Whenever a tracked lock is acquired while others are held, the (held ->
# acquired) edges are recorded here.  repro.verify.mc.lockorder merges this
# observed graph with the statically extracted one and checks both for
# cycles and for violations of the declared global lock order.

_graph_lock = threading.Lock()
_lock_graph: dict[tuple[str, str], int] = {}


def _note_acquisition(name: str) -> None:
    held = getattr(_tls, "locks", None)
    if not held or name in held:
        # First lock, or a reentrant re-acquisition: no new ordering edge.
        return
    with _graph_lock:
        for outer in set(held):
            key = (outer, name)
            _lock_graph[key] = _lock_graph.get(key, 0) + 1


def lock_graph() -> dict[tuple[str, str], int]:
    """Observed (outer -> inner) lock-acquisition edges with counts."""
    with _graph_lock:
        return dict(_lock_graph)


def reset_lock_graph() -> None:
    with _graph_lock:
        _lock_graph.clear()


class TrackedLock:
    """A lock proxy that records acquisition in the thread's lockset."""

    def __init__(self, name: str, reentrant: bool = False):
        self.name = name
        self.reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        hook = _MC_HOOK
        if hook is not None and hook.governs_current_thread():
            # The scheduler parks this thread until the model says the lock
            # is free, so the real acquire below can never block.
            hook.before_acquire(self, blocking)
        got = self._inner.acquire(blocking, timeout)
        if got:
            _note_acquisition(self.name)
            _push_lock(self.name)
        return got

    def release(self) -> None:
        hook = _MC_HOOK
        if hook is not None and hook.governs_current_thread():
            hook.before_release(self)
        _pop_lock(self.name)
        self._inner.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        return "TrackedLock(%r)" % self.name


def make_lock(name: str, reentrant: bool = False):
    """The engine's lock factory.

    Sanitizing: a named :class:`TrackedLock` feeding the lockset machine.
    Otherwise: a plain ``threading.Lock`` / ``RLock`` — identical to what
    the engine allocated before this module existed.
    """
    if ENABLED:
        return TrackedLock(name, reentrant=reentrant)
    return threading.RLock() if reentrant else threading.Lock()


# -- Eraser state machine ----------------------------------------------------

_VIRGIN = 0
_EXCLUSIVE = 1
_SHARED = 2
_SHARED_MODIFIED = 3

_STATE_NAMES = {
    _VIRGIN: "virgin",
    _EXCLUSIVE: "exclusive",
    _SHARED: "shared",
    _SHARED_MODIFIED: "shared-modified",
}


@dataclass
class FieldState:
    state: int = _VIRGIN
    owner: int | None = None          # first accessing thread id
    lockset: set[str] | None = None   # candidate locks (None = all locks)
    threads: set[str] = field(default_factory=set)
    sites: list[str] = field(default_factory=list)
    reported: bool = False


@dataclass(frozen=True)
class Race:
    """One candidate race: a shared-modified field with an empty lockset."""

    owner: str
    fld: str
    threads: tuple[str, ...]
    sites: tuple[str, ...]
    during_task: bool

    def render(self) -> str:
        return (
            "candidate race on %s.%s: threads %s share no lock "
            "(access sites: %s)%s"
            % (
                self.owner,
                self.fld,
                ", ".join(self.threads),
                "; ".join(self.sites),
                " [inside worker-pool task span]" if self.during_task else "",
            )
        )


class _Sanitizer:
    def __init__(self):
        self._lock = threading.Lock()
        self.fields: dict[tuple[str, str], FieldState] = {}
        self.races: list[Race] = []
        self.accesses = 0

    def access(self, owner: str, fld: str, write: bool, site: str) -> None:
        thread = threading.current_thread()
        ident, tname = thread.ident, thread.name
        held = _held()
        key = (owner, fld)
        with self._lock:
            self.accesses += 1
            state = self.fields.get(key)
            if state is None:
                state = self.fields[key] = FieldState()
            state.threads.add(tname)
            if len(state.sites) < 8 and site not in state.sites:
                state.sites.append(site)
            if state.state == _VIRGIN:
                state.state = _EXCLUSIVE
                state.owner = ident
                return
            if state.state == _EXCLUSIVE:
                if ident == state.owner:
                    return
                # Second thread: field is now genuinely shared.
                state.state = _SHARED_MODIFIED if write else _SHARED
                state.lockset = set(held)
            else:
                if write:
                    state.state = _SHARED_MODIFIED
                state.lockset &= held
            if (
                state.state == _SHARED_MODIFIED
                and not state.lockset
                and not state.reported
            ):
                state.reported = True
                self.races.append(
                    Race(
                        owner=owner,
                        fld=fld,
                        threads=tuple(sorted(state.threads)),
                        sites=tuple(state.sites),
                        during_task=in_task_span(),
                    )
                )


_sanitizer: _Sanitizer | None = _Sanitizer() if ENABLED else None


def enable() -> None:
    """Turn the sanitizer on (tests call this; CI uses REPRO_SANITIZE=1).

    Locks created *before* enabling are plain locks and stay untracked —
    construct engines after enabling.
    """
    global ENABLED, _sanitizer
    ENABLED = True
    _sanitizer = _Sanitizer()


def disable() -> None:
    global ENABLED, _sanitizer
    ENABLED = False
    _sanitizer = None


def reset() -> None:
    """Clear collected Eraser state (races/locksets) but stay enabled.

    The lock-acquisition graph deliberately survives: it accumulates
    ordering evidence across many runs (the model checker resets between
    interleavings but merges the whole graph at the end); clear it
    explicitly with :func:`reset_lock_graph`.
    """
    global _sanitizer
    if ENABLED:
        _sanitizer = _Sanitizer()


def access(owner: str, fld: str, write: bool = True, site: str = "") -> None:
    """Record one access to a shared field (no-op when disabled).

    ``owner`` names the structure instance (e.g. ``"bufferpool"`` or
    ``"wal:shard3"``), ``fld`` the logical field.  Call sites pass a
    short ``site`` label instead of paying for stack introspection.
    """
    hook = _MC_HOOK
    if hook is not None and hook.governs_current_thread():
        hook.on_access(owner, fld, write, site)
    san = _sanitizer
    if san is not None:
        san.access(owner, fld, write, site)


class task_span:
    """Context manager marking 'this thread is running a pool task'."""

    def __init__(self, label: str = ""):
        self.label = label

    def __enter__(self):
        depth = getattr(_tls, "task_depth", 0)
        _tls.task_depth = depth + 1
        return self

    def __exit__(self, *exc):
        _tls.task_depth = getattr(_tls, "task_depth", 1) - 1


def in_task_span() -> bool:
    return getattr(_tls, "task_depth", 0) > 0


def held_locks() -> set[str]:
    """The current thread's lockset (debugging / tests)."""
    return _held()


def report() -> list[Race]:
    """All candidate races observed since enable()/reset()."""
    san = _sanitizer
    return list(san.races) if san is not None else []


def stats() -> dict:
    san = _sanitizer
    if san is None:
        return {"enabled": False}
    with san._lock:
        return {
            "enabled": True,
            "fields_tracked": len(san.fields),
            "accesses": san.accesses,
            "races": len(san.races),
            "states": {
                "%s.%s" % key: _STATE_NAMES[st.state]
                for key, st in san.fields.items()
            },
        }
