"""reprolint — the repo's ``ast``-based lint framework.

The engine's correctness rests on a handful of *glue invariants* that span
subsystems (sim-clock cost charging, seeded randomness, lock discipline in
worker-pool callables, durability logging on every mutation path).  None
of them are enforceable by the type system or by unit tests alone, so this
module provides a small, pluggable static checker:

* rules register through the :func:`rule` decorator and receive a
  :class:`FileContext` (path, source, parsed tree, suppression table);
* findings can be suppressed per line with a justification comment::

      some_call()  # lint-ok: rule-name (why this is intentional)

  or, for a whole statement, on the line directly above.  A suppression
  without a parenthesised justification still silences the finding but is
  itself reported by the ``suppression-justification`` meta-rule;
* output is human-readable by default, ``--json`` for tooling, and the
  exit status is non-zero when any unsuppressed finding remains — which is
  how CI runs it::

      python -m repro.verify.lint src

The repo-specific rules live in :mod:`repro.verify.rules`; this module is
only the framework (registry, suppressions, file walking, CLI).
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
from dataclasses import dataclass, field

#: Suppression comment: ``# lint-ok: rule-a,rule-b (justification)``.
_SUPPRESS_RE = re.compile(
    r"#\s*lint-ok:\s*(?P<rules>[a-z0-9_,\s-]+?)\s*(?:\((?P<why>.*)\))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One lint finding (possibly suppressed)."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    justification: str | None = None

    def render(self) -> str:
        tag = " [suppressed: %s]" % (self.justification or "no justification") \
            if self.suppressed else ""
        return "%s:%d: [%s] %s%s" % (self.path, self.line, self.rule,
                                     self.message, tag)

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "justification": self.justification,
        }


@dataclass
class Suppression:
    rules: set[str]
    justification: str | None


@dataclass
class FileContext:
    """Everything a rule may consult about one source file."""

    path: str           # path as given on the command line (for reporting)
    module: str         # normalised, '/'-separated path (for scoping rules)
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    def in_package(self, *parts: str) -> bool:
        """True when the file lives under ``repro/<part>/`` for any part
        (or is the module ``repro/<part>.py``)."""
        for part in parts:
            if "/%s/" % part in self.module or self.module.endswith(
                "/%s.py" % part
            ):
                return True
        return False

    def suppression_for(self, rule_name: str, line: int) -> Suppression | None:
        """A suppression covering ``rule_name`` at ``line`` (same line or
        the pure-comment line directly above)."""
        site = self.suppression_site(rule_name, line)
        return self.suppressions[site] if site is not None else None

    def suppression_site(self, rule_name: str, line: int) -> int | None:
        """Line number of the suppression covering ``rule_name`` at
        ``line``, or None.  Exposed separately so the stale-suppression
        check can credit the *specific* comment a finding used."""
        for candidate in (line, line - 1):
            sup = self.suppressions.get(candidate)
            if sup is None:
                continue
            if candidate == line - 1:
                # Comment-above style only counts for whole-comment lines;
                # a trailing suppression belongs to its own line.
                text = self.lines[candidate - 1].strip() if (
                    0 < candidate <= len(self.lines)
                ) else ""
                if not text.startswith("#"):
                    continue
            if rule_name in sup.rules or "all" in sup.rules:
                return candidate
        return None

    def string_literal_lines(self) -> set[int]:
        """Lines covered by string/bytes constants — suppression-looking
        text inside a literal (fixture corpora embedded in test files,
        docstring examples) is data, not a live suppression."""
        covered: set[int] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Constant) and isinstance(
                node.value, (str, bytes)
            ):
                end = getattr(node, "end_lineno", None) or node.lineno
                covered.update(range(node.lineno, end + 1))
        return covered


class Rule:
    """A registered lint rule: ``check(ctx)`` yields ``(line, message)``."""

    def __init__(self, name: str, description: str, check):
        self.name = name
        self.description = description
        self.check = check


_REGISTRY: dict[str, Rule] = {}


def rule(name: str, description: str):
    """Decorator registering a rule function in the global registry."""

    def decorate(fn):
        if name in _REGISTRY:
            raise ValueError("duplicate lint rule %r" % name)
        _REGISTRY[name] = Rule(name, description, fn)
        return fn

    return decorate


def registered_rules() -> dict[str, Rule]:
    _load_builtin_rules()
    return dict(_REGISTRY)


def _load_builtin_rules() -> None:
    # Imported lazily: rules.py imports this module for the decorator.
    from repro.verify import rules as _rules  # noqa: F401


def _parse_suppressions(lines: list[str]) -> dict[int, Suppression]:
    table: dict[int, Suppression] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        names = {
            part.strip() for part in match.group("rules").split(",") if part.strip()
        }
        why = match.group("why")
        table[lineno] = Suppression(names, why.strip() if why else None)
    return table


def make_context(source: str, path: str = "<memory>") -> FileContext:
    """Build a :class:`FileContext` from a source string (tests use this
    to lint fixture snippets without touching the filesystem)."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    return FileContext(
        path=path,
        module=path.replace(os.sep, "/"),
        source=source,
        tree=tree,
        lines=lines,
        suppressions=_parse_suppressions(lines),
    )


def lint_source(
    source: str, path: str = "<memory>", rules: list[str] | None = None
) -> list[Finding]:
    """Lint a source string; returns every finding (suppressed included)."""
    ctx = make_context(source, path)
    return _run_rules(ctx, rules)


def lint_file(path: str, rules: list[str] | None = None) -> list[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return _run_rules(make_context(source, path), rules)


def _run_rules(ctx: FileContext, only: list[str] | None) -> list[Finding]:
    registry = registered_rules()
    selected = (
        [registry[name] for name in only] if only else list(registry.values())
    )
    findings: list[Finding] = []
    for rule_obj in selected:
        for line, message in rule_obj.check(ctx):
            sup = ctx.suppression_for(rule_obj.name, line)
            findings.append(
                Finding(
                    rule=rule_obj.name,
                    path=ctx.path,
                    line=line,
                    message=message,
                    suppressed=sup is not None,
                    justification=sup.justification if sup else None,
                )
            )
    findings.extend(_check_suppression_justifications(ctx, only))
    findings.extend(_check_stale_suppressions(ctx, only, findings, registry))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _check_suppression_justifications(
    ctx: FileContext, only: list[str] | None
) -> list[Finding]:
    """Meta-rule: every suppression must carry a justification."""
    if only and "suppression-justification" not in only:
        return []
    out = []
    for lineno, sup in sorted(ctx.suppressions.items()):
        if not sup.justification:
            out.append(
                Finding(
                    rule="suppression-justification",
                    path=ctx.path,
                    line=lineno,
                    message="lint-ok suppression of %s has no (justification)"
                    % ", ".join(sorted(sup.rules)),
                )
            )
    return out


def _check_stale_suppressions(
    ctx: FileContext,
    only: list[str] | None,
    findings: list[Finding],
    registry: dict[str, Rule],
) -> list[Finding]:
    """Meta-rule ``stale-suppression``: a ``lint-ok`` comment naming a
    rule that no longer fires on its line is a finding.

    A stale suppression is worse than dead weight — it documents an
    invariant violation that was since fixed (or moved), and it would
    silently swallow the *next* finding to land on that line.  Staleness
    is only decidable on full runs: with ``--rule`` selection a rule may
    simply not have been given the chance to fire, so partial runs skip
    the check entirely.

    Judgement is per rule *name* within a suppression comment: the
    comment ``# lint-ok: a,b (...)`` is stale for ``a`` alone when only
    ``b`` still fires.  Names that aren't registered rules are skipped
    (they may belong to other tools); lines inside string literals are
    data, not suppressions.
    """
    if only is not None:
        return []
    used: set[tuple[int, str]] = set()
    for finding in findings:
        if finding.suppressed:
            site = ctx.suppression_site(finding.rule, finding.line)
            if site is not None:
                used.add((site, finding.rule))
    literal_lines = None  # computed lazily: most files have no suppressions
    out: list[Finding] = []
    for lineno, sup in sorted(ctx.suppressions.items()):
        stale = [
            name for name in sorted(sup.rules)
            if name in registry
            and name not in ("all", "stale-suppression")
            and (lineno, name) not in used
        ]
        if not stale:
            continue
        if literal_lines is None:
            literal_lines = ctx.string_literal_lines()
        if lineno in literal_lines:
            continue
        for name in stale:
            message = (
                "suppression of %r is stale: the rule no longer fires here"
                % name
            )
            sup_site = ctx.suppression_site("stale-suppression", lineno)
            shadow = ctx.suppressions.get(sup_site) if sup_site is not None \
                else None
            out.append(
                Finding(
                    rule="stale-suppression",
                    path=ctx.path,
                    line=lineno,
                    message=message,
                    suppressed=shadow is not None,
                    justification=shadow.justification if shadow else None,
                )
            )
    return out


def iter_python_files(paths: list[str]):
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [
                d for d in sorted(dirnames)
                if d not in ("__pycache__", ".git")
            ]
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def lint_paths(paths: list[str], rules: list[str] | None = None) -> list[Finding]:
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, rules))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.lint",
        description="reprolint: repo-specific invariant linter",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as a JSON document")
    parser.add_argument("--rule", action="append", dest="rules",
                        help="run only the named rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print suppressed findings")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_obj in sorted(registered_rules().values(), key=lambda r: r.name):
            print("%-24s %s" % (rule_obj.name, rule_obj.description))
        return 0

    findings = lint_paths(args.paths, args.rules)
    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]

    if args.as_json:
        print(json.dumps(
            {
                "findings": [f.to_json() for f in findings],
                "unsuppressed": len(active),
                "suppressed": len(suppressed),
            },
            indent=2,
        ))
    else:
        shown = findings if args.show_suppressed else active
        for finding in shown:
            print(finding.render())
        print(
            "reprolint: %d finding(s), %d suppressed"
            % (len(active), len(suppressed)),
            file=sys.stderr,
        )
    return 1 if active else 0


if __name__ == "__main__":
    # Re-import under the canonical module name so the rule registry the
    # CLI consults is the same one repro.verify.rules registered into
    # (running as __main__ would otherwise create a second registry).
    from repro.verify.lint import main as _canonical_main

    raise SystemExit(_canonical_main())
