"""``python -m repro.verify.flow`` entry point."""

# Re-import under the canonical module name so dataclass identities and
# the reprolint Finding type are shared with library users (running as
# __main__ would otherwise create parallel class objects).
from repro.verify.flow.analyzer import main

if __name__ == "__main__":
    raise SystemExit(main())
