"""Project index and call graph for the reproflow analyzer.

Everything here is an AST-level *over-approximation*: an attribute call
``x.foo(...)`` links to every project function named ``foo`` that could
plausibly be its target (methods of the receiver's class when the
receiver is ``self``, otherwise any method or module function with that
name).  The protocol rules are designed so this approximation direction
is safe — see DESIGN.md note 15: effect *sources* (mutation sites, pins,
raises) are over-approximated together with effect *obligations*, and
the obligation markers (``log_*``, ``_note_commit``, ``note_table``) are
distinctive names that do not collide elsewhere in the tree, so spurious
edges cannot silently fabricate an obligation that is not really there.
The seeded-bug fixture corpus in ``tests/test_verify_flow.py`` keeps
every rule non-vacuous against this design.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

#: Call-receiver methods that submit their first argument to a worker
#: pool / executor (the callable then runs on another thread or process).
_SUBMIT_METHODS = ("map", "submit")

#: An attribute call on a non-``self`` receiver whose simple name matches
#: more than this many project functions is treated as *opaque* (no call
#: edges).  Generic names (``insert``, ``get``, ``run``, ``snapshot``)
#: otherwise make the over-approximate graph near-complete, and a
#: near-complete graph lets every function "reach" every obligation —
#: vacuously satisfying the must-reach rules.  Effect *markers* are
#: call-site based and survive the drop; only closure propagation through
#: the ambiguous edge is lost.  See DESIGN.md note 15.
AMBIGUITY_LIMIT = 3


def normalize_module(path: str) -> str:
    """'/'-separated path used for scoping and reporting."""
    return path.replace(os.sep, "/")


@dataclass
class FunctionInfo:
    """One function, method, nested function or submitted lambda."""

    module: str                 # normalized source path
    qualname: str               # e.g. ``Database._execute_insert``
    name: str                   # simple name (``<lambda>`` for lambdas)
    cls: str | None             # enclosing class name, if a method
    node: ast.AST               # FunctionDef / AsyncFunctionDef / Lambda
    lineno: int

    @property
    def key(self) -> tuple[str, str]:
        return (self.module, self.qualname)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "FunctionInfo(%s:%s)" % (self.module, self.qualname)


@dataclass
class ClassInfo:
    """One class definition with the facts the rules need."""

    module: str
    name: str
    bases: list[str]
    lineno: int
    class_attrs: set[str] = field(default_factory=set)
    self_attrs: set[str] = field(default_factory=set)

    @property
    def assigns_sqlstate(self) -> bool:
        return "sqlstate" in self.class_attrs or "sqlstate" in self.self_attrs


@dataclass
class CallSite:
    """One call edge: ``caller`` may invoke any function in ``targets``."""

    caller: tuple[str, str]
    targets: list[FunctionInfo]
    name: str                  # simple callee name as written
    lineno: int
    submitted: bool = False    # first-arg of a pool map/submit


def dotted_chain(node: ast.AST) -> list[str]:
    """``['self', 'txn', 'snapshot']`` for ``self.txn.snapshot``; [] else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def _function_body(node: ast.AST) -> list[ast.stmt]:
    body = node.body
    return body if isinstance(body, list) else [ast.Expr(value=body)]


def own_nodes(fn_node: ast.AST):
    """Walk a function's body without descending into nested function
    definitions (each nested def is its own :class:`FunctionInfo`).
    Lambdas are *not* boundaries: except when directly submitted to a
    pool they run inline in their enclosing function's dynamic extent,
    so their effects belong to the encloser."""

    def walk(node: ast.AST):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield child
            yield from walk(child)

    for stmt in _function_body(fn_node):
        yield stmt
        yield from walk(stmt)


class ProjectIndex:
    """Parses a set of sources into functions, classes and call edges.

    ``ambiguity_limit`` tunes the opaque-call threshold: the reproflow
    protocol rules keep the tight default (see :data:`AMBIGUITY_LIMIT`)
    because a near-complete graph makes their must-reach obligations
    vacuous, while the mutation impact map
    (:mod:`repro.verify.mutate.impact`) raises it — over-approximate
    reachability there only means running a few extra test files, never
    a missed obligation.
    """

    def __init__(self, sources: dict[str, str],
                 ambiguity_limit: int = AMBIGUITY_LIMIT):
        self.ambiguity_limit = ambiguity_limit
        #: module path -> raw source lines (suppression parsing).
        self.lines: dict[str, list[str]] = {}
        self.functions: dict[tuple[str, str], FunctionInfo] = {}
        self.classes: dict[str, list[ClassInfo]] = {}
        #: class name -> ClassInfo list per module for entry lookup.
        self.classes_by_module: dict[str, list[ClassInfo]] = {}
        self._by_module_name: dict[str, dict[str, list[FunctionInfo]]] = {}
        self._methods_by_name: dict[str, list[FunctionInfo]] = {}
        self._toplevel_by_name: dict[str, list[FunctionInfo]] = {}
        self._imports: dict[str, dict[str, str]] = {}  # mod -> alias -> from-module
        self.calls: dict[tuple[str, str], list[CallSite]] = {}
        self.submitted: set[tuple[str, str]] = set()
        self.listeners: set[tuple[str, str]] = set()
        self._trees: dict[str, ast.Module] = {}
        for path, source in sorted(sources.items()):
            module = normalize_module(path)
            tree = ast.parse(source, filename=path)
            self._trees[module] = tree
            self.lines[module] = source.splitlines()
            self._index_module(module, tree)
        for module, tree in self._trees.items():
            self._link_module(module, tree)

    # -- indexing ----------------------------------------------------------------

    def _index_module(self, module: str, tree: ast.Module) -> None:
        per_name = self._by_module_name.setdefault(module, {})
        imports = self._imports.setdefault(module, {})
        self.classes_by_module.setdefault(module, [])

        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    imports[alias.asname or alias.name] = node.module

        def add(info: FunctionInfo) -> None:
            self.functions[info.key] = info
            per_name.setdefault(info.name, []).append(info)
            if info.cls is not None:
                self._methods_by_name.setdefault(info.name, []).append(info)
            else:
                self._toplevel_by_name.setdefault(info.name, []).append(info)

        def visit(node: ast.AST, prefix: str, cls: str | None) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = prefix + child.name if prefix else child.name
                    add(FunctionInfo(module, qual, child.name, cls,
                                     child, child.lineno))
                    visit(child, qual + ".", cls)
                elif isinstance(child, ast.ClassDef):
                    info = ClassInfo(
                        module, child.name,
                        [c for b in child.bases if (c := _base_name(b))],
                        child.lineno,
                    )
                    _collect_class_attrs(child, info)
                    self.classes.setdefault(child.name, []).append(info)
                    self.classes_by_module[module].append(info)
                    visit(child, child.name + ".", child.name)
                else:
                    visit(child, prefix, cls)

        visit(tree, "", None)

    # -- call linking -------------------------------------------------------------

    def _module_for(self, dotted: str) -> str | None:
        """Resolve ``repro.durability.manager`` to an indexed module path."""
        suffix = dotted.replace(".", "/") + ".py"
        for module in self._trees:
            if module.endswith(suffix):
                return module
        return None

    def resolve_name(self, module: str, name: str) -> list[FunctionInfo]:
        """A bare ``name(...)`` call: same-module defs, then imports."""
        local = self._by_module_name.get(module, {}).get(name, [])
        if local:
            return list(local)
        source = self._imports.get(module, {}).get(name)
        if source is not None:
            target_module = self._module_for(source)
            if target_module is not None:
                return list(
                    self._by_module_name.get(target_module, {}).get(name, [])
                )
        return []

    def resolve_attr(self, module: str, caller: FunctionInfo,
                     chain: list[str], name: str) -> list[FunctionInfo]:
        """An attribute call ``<chain>.name(...)``.

        ``self.name()`` prefers methods of the caller's own class (and of
        project classes related to it by inheritance); everything else
        over-approximates to every project method or module function with
        that simple name — unless the name is so generic that the target
        set exceeds :data:`AMBIGUITY_LIMIT`, in which case the call is
        opaque (no edges) rather than an edge to half the project.
        """
        if chain[:1] == ["self"] and len(chain) == 2 and caller.cls:
            related = self._related_classes(caller.cls)
            own = [
                fn for fn in self._methods_by_name.get(name, [])
                if fn.cls in related
            ]
            if own:
                return own
        targets = list(self._methods_by_name.get(name, [])) + list(
            self._toplevel_by_name.get(name, [])
        )
        if len(targets) > self.ambiguity_limit:
            return []
        return targets

    def _related_classes(self, cls: str) -> set[str]:
        """``cls`` plus its project ancestors and descendants by name."""
        related = {cls}
        changed = True
        while changed:
            changed = False
            for name, infos in self.classes.items():
                for info in infos:
                    if name in related and not set(info.bases) <= related:
                        related.update(info.bases)
                        changed = True
                    if name not in related and set(info.bases) & related:
                        related.add(name)
                        changed = True
        return related

    def _link_module(self, module: str, tree: ast.Module) -> None:
        lambda_counter = [0]
        for info in [f for f in self.functions.values() if f.module == module]:
            sites: list[CallSite] = []
            for node in own_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                submitted_arg = None
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SUBMIT_METHODS
                    and node.args
                ):
                    submitted_arg = node.args[0]
                if isinstance(node.func, ast.Name):
                    targets = self.resolve_name(module, node.func.id)
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    chain = dotted_chain(node.func)
                    targets = self.resolve_attr(
                        module, info, chain, node.func.attr
                    )
                    name = node.func.attr
                else:
                    continue
                if targets:
                    sites.append(CallSite(info.key, targets, name, node.lineno))
                if submitted_arg is not None:
                    self._link_submission(
                        module, info, submitted_arg, node.lineno,
                        sites, lambda_counter,
                    )
                if name == "add_commit_listener" and node.args:
                    self._link_listener(module, info, node.args[0],
                                        node.lineno, sites)
            self.calls[info.key] = sites

    def _resolve_callable_arg(self, module: str, caller: FunctionInfo,
                              arg: ast.AST) -> list[FunctionInfo]:
        if isinstance(arg, ast.Name):
            return self.resolve_name(module, arg.id)
        if isinstance(arg, ast.Attribute):
            chain = dotted_chain(arg)
            if chain:
                return self.resolve_attr(module, caller, chain, arg.attr)
        return []

    def _link_submission(self, module, caller, arg, lineno, sites,
                         lambda_counter) -> None:
        if isinstance(arg, ast.Lambda):
            lambda_counter[0] += 1
            qual = "%s.<lambda#%d>" % (caller.qualname, lambda_counter[0])
            info = FunctionInfo(module, qual, "<lambda>", caller.cls,
                                arg, arg.lineno)
            self.functions[info.key] = info
            self.calls.setdefault(info.key, [])
            targets = [info]
        else:
            targets = self._resolve_callable_arg(module, caller, arg)
        for target in targets:
            self.submitted.add(target.key)
        if targets:
            sites.append(CallSite(caller.key, targets, "<submitted>",
                                  lineno, submitted=True))

    def _link_listener(self, module, caller, arg, lineno, sites) -> None:
        """``add_commit_listener(f)``: *f* runs later inside every commit;
        the registration edge keeps the listener's effects reachable."""
        targets = self._resolve_callable_arg(module, caller, arg)
        for target in targets:
            self.listeners.add(target.key)
        if targets:
            sites.append(CallSite(caller.key, targets, "<listener>", lineno))

    # -- queries ------------------------------------------------------------------

    def entry_methods(self, module_suffix: str, class_name: str):
        """Public (non-underscore) methods of ``class_name`` in the module
        whose normalized path ends with ``module_suffix``."""
        out = []
        for info in self.functions.values():
            if (
                info.cls == class_name
                and info.module.endswith(module_suffix)
                and info.qualname == "%s.%s" % (class_name, info.name)
                and not info.name.startswith("_")
            ):
                out.append(info)
        return sorted(out, key=lambda f: (f.module, f.lineno))

    def class_carries_sqlstate(self, name: str) -> bool:
        """Whether every project class named *name* (or an ancestor of it)
        assigns ``sqlstate``; unknown (non-project) bases carry nothing."""
        infos = self.classes.get(name, [])
        if not infos:
            return False
        return all(self._carries(info, set()) for info in infos)

    def _carries(self, info: ClassInfo, seen: set[str]) -> bool:
        if info.assigns_sqlstate:
            return True
        seen.add(info.name)
        for base in info.bases:
            if base in seen:
                continue
            for parent in self.classes.get(base, []):
                if self._carries(parent, seen):
                    return True
        return False

    def class_derives(self, name: str, root: str) -> bool:
        """Whether any project class named *name* derives from *root*."""
        for info in self.classes.get(name, []):
            if self._derives(info, root, set()):
                return True
        return False

    def _derives(self, info: ClassInfo, root: str, seen: set[str]) -> bool:
        if info.name == root:
            return True
        seen.add(info.name)
        for base in info.bases:
            if base == root:
                return True
            if base in seen:
                continue
            for parent in self.classes.get(base, []):
                if self._derives(parent, root, seen):
                    return True
        return False


def _base_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _collect_class_attrs(cls_node: ast.ClassDef, info: ClassInfo) -> None:
    for stmt in cls_node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    info.class_attrs.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            info.class_attrs.add(stmt.target.id)
    for node in ast.walk(cls_node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Attribute)
            and isinstance(node.targets[0].value, ast.Name)
            and node.targets[0].value.id == "self"
        ):
            info.self_attrs.add(node.targets[0].attr)
