"""Per-function effect inference and transitive closure.

Effects are inferred from *call-site shape* — the attribute or function
name at the call plus a small receiver-chain heuristic — never from
runtime types.  That keeps inference resolution-independent: whether or
not the call graph can name the target, ``x.insert_rows(...)`` is a
storage mutation and ``self.txn.begin()`` pins a snapshot.  The closure
step then propagates effects backwards over the
:class:`~repro.verify.flow.callgraph.ProjectIndex` call graph until a
fixpoint, so ``Database.execute`` ends up carrying the union of every
effect any helper it can reach performs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.verify.flow.callgraph import ProjectIndex, dotted_chain, own_nodes

# -- effect atoms -------------------------------------------------------------

MUTATES = "mutates-storage"          # table storage changes (insert/delete/truncate)
WAL = "appends-wal"                  # a redo record reaches the write-ahead log
BUMP = "bumps-version"               # per-table commit-version clock advances
TOUCH = "records-touched"            # touched-table set recorded for invalidation
PIN = "pins-snapshot"                # a read snapshot is pinned/frozen
TXN_COMMIT = "commits-txn"           # a Transaction object is committed

EFFECTS = (MUTATES, WAL, BUMP, TOUCH, PIN, TXN_COMMIT)

#: attribute names whose call mutates table storage — the same set the
#: demoted per-function ``durability-logging`` lint rule used, imported
#: so the two can never drift apart.
from repro.verify.rules import _TABLE_MUTATORS as _MUTATOR_ATTRS  # noqa: E402
#: receiver-chain roots for which ``truncate`` is file I/O, not storage.
_FILE_RECEIVERS = {"f", "fh", "fp", "file", "handle", "wal", "stream"}
#: attribute names recording the touched-table set.
_TOUCH_ATTRS = {"_touched_tables", "note_table"}
#: attribute names that pin a snapshot when the receiver chain is txn-ish.
_PIN_ATTRS = {"snapshot", "begin"}


def _chain_is_txn(chain: list[str]) -> bool:
    """``self.txn.begin`` / ``txn.snapshot`` / ``engine.txn.snapshot``."""
    return any("txn" in part.lower() for part in chain)


def _receiver_is_file(chain: list[str]) -> bool:
    """``f.truncate()`` / ``self._wal_file.truncate()`` are file I/O."""
    return any(
        part in _FILE_RECEIVERS or "file" in part.lower()
        for part in chain[:-1]
    )


@dataclass
class RaiseSite:
    """A ``raise Cls(...)`` of a project-defined exception class."""

    cls: str
    lineno: int


@dataclass
class DirectEffects:
    """Effects a single function performs itself (no callees)."""

    markers: dict[str, list[int]] = field(default_factory=dict)
    raises: list[RaiseSite] = field(default_factory=list)

    def add(self, effect: str, lineno: int) -> None:
        self.markers.setdefault(effect, []).append(lineno)

    def has(self, effect: str) -> bool:
        return effect in self.markers


def direct_effects(index: ProjectIndex) -> dict[tuple[str, str], DirectEffects]:
    out: dict[tuple[str, str], DirectEffects] = {}
    for key, info in index.functions.items():
        eff = DirectEffects()
        for node in own_nodes(info.node):
            if isinstance(node, ast.Call):
                _classify_call(node, eff)
            elif isinstance(node, ast.Raise):
                _classify_raise(node, info, index, eff)
        out[key] = eff
    return out


def _classify_call(node: ast.Call, eff: DirectEffects) -> None:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return
    attr = func.attr
    chain = dotted_chain(func)
    if attr in _MUTATOR_ATTRS:
        if attr == "truncate" and _receiver_is_file(chain):
            return
        eff.add(MUTATES, node.lineno)
    elif attr.startswith("log_"):
        eff.add(WAL, node.lineno)
    elif attr == "_note_commit":
        eff.add(BUMP, node.lineno)
    elif attr in _TOUCH_ATTRS:
        eff.add(TOUCH, node.lineno)
    elif attr in _PIN_ATTRS and _chain_is_txn(chain[:-1]):
        eff.add(PIN, node.lineno)
    elif attr == "commit" and chain[:-1] and _chain_is_txn(chain[:-1]):
        eff.add(TXN_COMMIT, node.lineno)


def _raised_class_name(node: ast.Raise) -> str | None:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


def _enclosing_handlers(fn_node: ast.AST) -> list[tuple[ast.Try, set[str]]]:
    """Map each Try in the function to the exception names it catches."""
    tries: list[tuple[ast.Try, set[str]]] = []
    for node in own_nodes(fn_node):
        if not isinstance(node, ast.Try):
            continue
        caught: set[str] = set()
        for handler in node.handlers:
            if handler.type is None:
                caught.add("*")
            else:
                types = (
                    handler.type.elts
                    if isinstance(handler.type, ast.Tuple)
                    else [handler.type]
                )
                for t in types:
                    if isinstance(t, ast.Name):
                        caught.add(t.id)
                    elif isinstance(t, ast.Attribute):
                        caught.add(t.attr)
        tries.append((node, caught))
    return tries


def _classify_raise(node: ast.Raise, info, index: ProjectIndex,
                    eff: DirectEffects) -> None:
    name = _raised_class_name(node)
    if name is None:
        return
    if not index.class_derives(name, "ReproError"):
        return
    # Skip raises that a same-function try/except demonstrably catches:
    # they never propagate out, so the caller-facing sqlstate rule does
    # not apply to them.
    for try_node, caught in _enclosing_handlers(info.node):
        if "*" in caught or name in caught or "ReproError" in caught \
                or "Exception" in caught:
            lo = try_node.body[0].lineno
            # only the *body* of the try shields the raise, not handlers
            body_hi = max(
                (getattr(n, "end_lineno", n.lineno) or n.lineno
                 for stmt in try_node.body for n in ast.walk(stmt)
                 if hasattr(n, "lineno")),
                default=lo,
            )
            if lo <= node.lineno <= body_hi:
                return
    eff.raises.append(RaiseSite(name, node.lineno))


# -- transitive closure -------------------------------------------------------


@dataclass
class ClosedEffects:
    """Direct effects plus everything reachable through calls."""

    effects: set[str] = field(default_factory=set)
    raises: set[str] = field(default_factory=set)


def close_effects(
    index: ProjectIndex,
    direct: dict[tuple[str, str], DirectEffects],
) -> dict[tuple[str, str], ClosedEffects]:
    closed: dict[tuple[str, str], ClosedEffects] = {}
    for key, eff in direct.items():
        closed[key] = ClosedEffects(
            effects=set(eff.markers),
            raises={r.cls for r in eff.raises},
        )
    changed = True
    while changed:
        changed = False
        for key, sites in index.calls.items():
            mine = closed.get(key)
            if mine is None:
                continue
            for site in sites:
                for target in site.targets:
                    theirs = closed.get(target.key)
                    if theirs is None:
                        continue
                    if not theirs.effects <= mine.effects:
                        mine.effects |= theirs.effects
                        changed = True
                    if not theirs.raises <= mine.raises:
                        mine.raises |= theirs.raises
                        changed = True
    return closed


def witness_path(
    index: ProjectIndex,
    start: tuple[str, str],
    direct: dict[tuple[str, str], DirectEffects],
    effect: str,
) -> list[str]:
    """Shortest call chain from *start* to a function with a direct
    *effect* marker — the human-readable evidence for a finding."""
    from collections import deque

    parents: dict[tuple[str, str], tuple[str, str] | None] = {start: None}
    queue = deque([start])
    goal = None
    while queue:
        key = queue.popleft()
        if direct.get(key) and direct[key].has(effect):
            goal = key
            break
        for site in index.calls.get(key, []):
            for target in site.targets:
                if target.key not in parents:
                    parents[target.key] = key
                    queue.append(target.key)
    if goal is None:
        return []
    path = []
    cur: tuple[str, str] | None = goal
    while cur is not None:
        path.append(cur[1])
        cur = parents[cur]
    return list(reversed(path))
