"""reproflow — interprocedural effect & protocol analysis over ``src/repro``.

The engine's cross-cutting protocols — every mutation must reach the WAL,
bump the per-table commit-version clock, and notify the serving cache;
every pinned snapshot must stay statement-scoped; every manually managed
resource must be released on exception paths; every engine error crossing
the public API must carry a SQLSTATE — hold *by convention*, enforced at a
handful of choke points (``Database._execute_write_node``, the planner's
snapshot plumbing, ``try/finally`` blocks).  reprolint checks some of them
per-function, which goes blind the moment an obligation moves into a
helper.  reproflow closes that gap:

* :mod:`repro.verify.flow.callgraph` parses the whole project into a
  :class:`~repro.verify.flow.callgraph.ProjectIndex` — every function and
  method (nested ones included), a name-resolved over-approximate call
  graph, pool-submitted callables (``pool.map(fn, ...)`` /
  ``executor.submit(fn, ...)``) and registered commit listeners;
* :mod:`repro.verify.flow.effects` infers per-function *effect sets*
  (mutates-table-storage, appends-WAL-redo, bumps-version-clock,
  records-touched-tables, pins-snapshot, raises-exception-class, ...) and
  closes them transitively over the call graph;
* :mod:`repro.verify.flow.protocols` checks the protocol rules on the
  closed effect sets: ``write-protocol`` (mutation implies WAL + version
  bump + touched-table recording, and committing a transaction implies
  serving-cache notification), ``snapshot-scope`` (no snapshot pinning
  inside pool-submitted callables, no snapshot escaping into long-lived
  attributes), ``resource-pairing`` (shared memory, manual lock
  acquire/release and manual span enter/exit must pair on exception
  paths) and ``sqlstate`` (engine errors crossing the Database/Cluster
  public API carry a SQLSTATE).

Findings are suppressed per line with a justification comment::

    some_call()  # flow-ok: rule-name (why this is intentional)

sharing reprolint's ``suppression-justification`` meta-rule: a flow-ok
without a parenthesised justification silences the finding but is itself
reported.  CI runs ``python -m repro.verify.flow src`` and fails on any
unsuppressed finding.
"""

from __future__ import annotations

from repro.verify.flow.analyzer import (  # noqa: F401
    FlowReport,
    analyze_paths,
    analyze_sources,
    main,
)

__all__ = ["FlowReport", "analyze_paths", "analyze_sources", "main"]
