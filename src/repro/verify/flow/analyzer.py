"""reproflow driver: sources -> index -> effects -> findings -> report.

Reuses reprolint's reporting vocabulary (:class:`repro.verify.lint.Finding`)
and its suppression grammar, with ``flow-ok`` as the marker::

    txn.commit()  # flow-ok: write-protocol (recovery replays committed WAL)

A ``flow-ok`` without a parenthesised justification silences its finding
but is itself reported under the shared ``suppression-justification``
meta-rule, exactly like ``lint-ok``.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field

from repro.verify.lint import Finding, Suppression, iter_python_files
from repro.verify.flow.callgraph import ProjectIndex
from repro.verify.flow.effects import close_effects, direct_effects
from repro.verify.flow.protocols import ALL_RULES, run_all

#: Suppression comment: ``# flow-ok: rule-a,rule-b (justification)``.
_SUPPRESS_RE = re.compile(
    r"#\s*flow-ok:\s*(?P<rules>[a-z0-9_,\s-]+?)\s*(?:\((?P<why>.*)\))?\s*$"
)

RULE_DESCRIPTIONS = {
    "write-protocol": "mutation implies WAL append + version bump + "
                      "touched-table recording; txn.commit implies all three",
    "snapshot-scope": "no fresh snapshot pinned inside pool-submitted "
                      "callables; snapshots must not escape statement scope",
    "resource-pairing": "shared memory, manual locks and manual spans are "
                        "released in a finally block",
    "sqlstate": "engine errors crossing the Database/Cluster/gateway public "
                "API carry a SQLSTATE",
    "suppression-justification": "every flow-ok suppression carries a "
                                 "(justification)",
    "stale-suppression": "flow-ok comment names a rule that no longer "
                         "fires on its line (full runs only)",
}


def _parse_suppressions(lines: list[str]) -> dict[int, Suppression]:
    table: dict[int, Suppression] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        names = {
            part.strip()
            for part in match.group("rules").split(",")
            if part.strip()
        }
        why = match.group("why")
        table[lineno] = Suppression(names, why.strip() if why else None)
    return table


def _suppression_site(
    table: dict[int, Suppression], lines: list[str], rule: str, line: int
) -> int | None:
    """Line of the suppression covering ``rule`` at ``line``: same-line or
    pure-comment-line-above, mirroring reprolint."""
    for candidate in (line, line - 1):
        sup = table.get(candidate)
        if sup is None:
            continue
        if candidate == line - 1:
            text = lines[candidate - 1].strip() if (
                0 < candidate <= len(lines)
            ) else ""
            if not text.startswith("#"):
                continue
        if rule in sup.rules or "all" in sup.rules:
            return candidate
    return None


def _suppression_for(
    table: dict[int, Suppression], lines: list[str], rule: str, line: int
) -> Suppression | None:
    site = _suppression_site(table, lines, rule, line)
    return table[site] if site is not None else None


def _string_literal_lines(source: str) -> set[int]:
    """Lines covered by str/bytes constants — a flow-ok inside a literal
    (fixture corpora in test files, docstring examples) is data."""
    covered: set[int] = set()
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return covered
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(
            node.value, (str, bytes)
        ):
            end = getattr(node, "end_lineno", None) or node.lineno
            covered.update(range(node.lineno, end + 1))
    return covered


@dataclass
class FlowReport:
    """All findings from one analysis run."""

    findings: list[Finding] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    def to_json(self) -> dict:
        return {
            "findings": [f.to_json() for f in self.findings],
            "unsuppressed": len(self.active),
            "suppressed": len(self.suppressed),
        }


def analyze_sources(
    sources: dict[str, str], rules: list[str] | None = None
) -> FlowReport:
    """Analyze a ``{path: source}`` mapping (tests feed fixture corpora
    through this without touching the filesystem)."""
    index = ProjectIndex(sources)
    direct = direct_effects(index)
    closed = close_effects(index, direct)

    suppression_tables = {
        module: _parse_suppressions(lines)
        for module, lines in index.lines.items()
    }

    report = FlowReport()
    wanted = set(rules) if rules else None
    used_sites: set[tuple[str, int, str]] = set()
    for raw in run_all(index, direct, closed):
        if wanted is not None and raw.rule not in wanted:
            continue
        table = suppression_tables.get(raw.module, {})
        lines = index.lines.get(raw.module, [])
        sup = _suppression_for(table, lines, raw.rule, raw.lineno)
        if sup is not None:
            site = _suppression_site(table, lines, raw.rule, raw.lineno)
            used_sites.add((raw.module, site, raw.rule))
        report.findings.append(
            Finding(
                rule=raw.rule,
                path=raw.module,
                line=raw.lineno,
                message=raw.message,
                suppressed=sup is not None,
                justification=sup.justification if sup else None,
            )
        )
    if wanted is None or "suppression-justification" in wanted:
        for module, table in sorted(suppression_tables.items()):
            for lineno, sup in sorted(table.items()):
                if not sup.justification:
                    report.findings.append(
                        Finding(
                            rule="suppression-justification",
                            path=module,
                            line=lineno,
                            message="flow-ok suppression of %s has no "
                                    "(justification)"
                                    % ", ".join(sorted(sup.rules)),
                        )
                    )
    if wanted is None:
        # Staleness is only decidable on full runs: under --rule
        # selection an unselected rule never got the chance to fire.
        known = set(ALL_RULES)
        for module, table in sorted(suppression_tables.items()):
            literal_lines: set[int] | None = None
            for lineno, sup in sorted(table.items()):
                stale = [
                    name for name in sorted(sup.rules)
                    if name in known
                    and (module, lineno, name) not in used_sites
                ]
                if not stale:
                    continue
                if literal_lines is None:
                    literal_lines = _string_literal_lines(
                        sources.get(module, "")
                    )
                if lineno in literal_lines:
                    continue
                for name in stale:
                    report.findings.append(
                        Finding(
                            rule="stale-suppression",
                            path=module,
                            line=lineno,
                            message="flow-ok suppression of %r is stale: "
                                    "the rule no longer fires here" % name,
                        )
                    )
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report


def analyze_paths(
    paths: list[str], rules: list[str] | None = None
) -> FlowReport:
    sources: dict[str, str] = {}
    for file_path in iter_python_files(paths):
        with open(file_path, "r", encoding="utf-8") as handle:
            sources[file_path] = handle.read()
    return analyze_sources(sources, rules)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.flow",
        description="reproflow: interprocedural effect & protocol analyzer",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as a JSON document")
    parser.add_argument("--rule", action="append", dest="rules",
                        help="run only the named rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list protocol rules and exit")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print suppressed findings")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in (*ALL_RULES, "suppression-justification",
                     "stale-suppression"):
            print("%-24s %s" % (name, RULE_DESCRIPTIONS[name]))
        return 0

    report = analyze_paths(args.paths, args.rules)
    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        shown = report.findings if args.show_suppressed else report.active
        for finding in shown:
            print(finding.render())
        print(
            "reproflow: %d finding(s), %d suppressed"
            % (len(report.active), len(report.suppressed)),
            file=sys.stderr,
        )
    return 1 if report.active else 0
