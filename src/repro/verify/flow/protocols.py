"""The four reproflow protocol rules, checked on closed effect sets.

Each rule is a generator yielding ``RawFinding`` tuples; the analyzer
layers suppression handling and reporting on top.  Rules never report
inside ``repro/verify/`` itself: the verification tooling (sanitizer
scenarios, model-checker drivers) exercises raw engine primitives
deliberately and owns its own discipline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.verify.flow.callgraph import (
    FunctionInfo,
    ProjectIndex,
    dotted_chain,
    own_nodes,
)
from repro.verify.flow.effects import (
    BUMP,
    MUTATES,
    PIN,
    TOUCH,
    TXN_COMMIT,
    WAL,
    ClosedEffects,
    DirectEffects,
    witness_path,
)

#: module-path suffix -> public API classes whose entry methods anchor
#: the write-protocol and sqlstate rules.
API_ENTRY_CLASSES: dict[str, tuple[str, ...]] = {
    "repro/database/database.py": ("Database",),
    "repro/cluster/mpp.py": ("Cluster",),
    "repro/serving/gateway.py": ("ServingGateway",),
}

#: project exception classes allowed to cross the public API without a
#: SQLSTATE.  CrashError is the fault-injection harness's simulated host
#: crash: the statement machinery must never dress it up as a SQL error.
SQLSTATE_EXEMPT = {"CrashError"}


@dataclass(frozen=True)
class RawFinding:
    rule: str
    module: str
    lineno: int
    message: str


def _in_tooling(module: str) -> bool:
    return "repro/verify/" in module or module.startswith("verify/")


def _entry_functions(index: ProjectIndex):
    for suffix, classes in API_ENTRY_CLASSES.items():
        for cls in classes:
            for fn in index.entry_methods(suffix, cls):
                yield fn


# -- rule 1: write-protocol ---------------------------------------------------


def check_write_protocol(
    index: ProjectIndex,
    direct: dict[tuple[str, str], DirectEffects],
    closed: dict[tuple[str, str], ClosedEffects],
):
    """Mutation implies WAL + version bump + touched-table recording.

    Two sub-checks, both transitive:

    1a. Every public API entry whose closure mutates storage must also
        close over WAL, BUMP and TOUCH — a brand-new write path that
        forgets the whole discipline is caught at the entry point.
    1b. Every function that *directly* commits a transaction
        (``txn.commit()``) must close over BUMP, WAL and TOUCH.  This is
        the path-sensitive teeth of the rule: union closure at the entry
        can be satisfied by a sibling path, but the function holding the
        commit site has no such excuse — if it commits without notifying
        the version clock, serving caches go silently stale.
    """
    obligations = ((WAL, "appends-wal"), (BUMP, "bumps-version"),
                   (TOUCH, "records-touched"))
    for fn in _entry_functions(index):
        if _in_tooling(fn.module):
            continue
        eff = closed.get(fn.key)
        if eff is None or MUTATES not in eff.effects:
            continue
        missing = [label for e, label in obligations if e not in eff.effects]
        if not missing:
            continue
        path = witness_path(index, fn.key, direct, MUTATES)
        yield RawFinding(
            "write-protocol", fn.module, fn.lineno,
            "%s mutates table storage (via %s) but its call closure never %s"
            % (fn.qualname, " -> ".join(path) or "?", " or ".join(missing)),
        )
    for key, eff in direct.items():
        fn = index.functions[key]
        if _in_tooling(fn.module) or "repro/mvcc/" in fn.module:
            # mvcc/txn.py *implements* Transaction.commit; the discipline
            # binds its callers, not the implementation.
            continue
        if not eff.has(TXN_COMMIT):
            continue
        # TOUCH is not demanded here: a raw committer that bumps the
        # clock passes its touched-table set explicitly as the argument
        # to ``_note_commit``; the statement-level recording helper is an
        # entry-path obligation (sub-check 1a), not a committer one.
        closure = closed[key].effects
        missing = [
            label for e, label in ((BUMP, "bump the version clock"),
                                   (WAL, "reach the WAL"))
            if e not in closure
        ]
        if missing:
            yield RawFinding(
                "write-protocol", fn.module, eff.markers[TXN_COMMIT][0],
                "%s commits a transaction but does not %s — serving caches "
                "and MVCC readers will not observe this write"
                % (fn.qualname, " or ".join(missing)),
            )


# -- rule 2: snapshot-scope ---------------------------------------------------


def _statement_boundaries(index: ProjectIndex) -> set[tuple[str, str]]:
    """Functions that open a *new* statement scope: the public API entry
    methods plus the serving cache's ``fetch``.  A worker that calls one
    of these runs a complete statement whose snapshot is pinned and
    released inside that scope — not a leak of the enclosing statement's
    snapshot discipline."""
    boundaries = {fn.key for fn in _entry_functions(index)}
    for key, fn in index.functions.items():
        if fn.qualname == "ResultCache.fetch":
            boundaries.add(key)
    return boundaries


def _pin_path_outside_boundary(
    index: ProjectIndex,
    direct: dict[tuple[str, str], DirectEffects],
    start: tuple[str, str],
    boundaries: set[tuple[str, str]],
) -> list[str]:
    """Shortest call chain from *start* to a direct PIN marker that does
    not pass through (or terminate inside) a statement boundary."""
    from collections import deque

    parents: dict[tuple[str, str], tuple[str, str] | None] = {start: None}
    queue = deque([start])
    while queue:
        key = queue.popleft()
        if key in boundaries:
            continue
        eff = direct.get(key)
        if eff is not None and eff.has(PIN):
            path = []
            cur: tuple[str, str] | None = key
            while cur is not None:
                path.append(cur[1])
                cur = parents[cur]
            return list(reversed(path))
        for site in index.calls.get(key, []):
            for target in site.targets:
                if target.key not in parents:
                    parents[target.key] = key
                    queue.append(target.key)
    return []


def check_snapshot_scope(
    index: ProjectIndex,
    direct: dict[tuple[str, str], DirectEffects],
    closed: dict[tuple[str, str], ClosedEffects],
):
    """Snapshots stay statement-scoped.

    (a) A callable submitted to a worker pool must not pin a *new*
        snapshot (transitively): cross-thread/process work must run
        against the snapshot frozen by the submitting statement, or MVCC
        reads tear.  Reachability stops at statement boundaries (public
        ``execute``/``execute_ast``/cache ``fetch``): a worker invoking
        the full statement API opens its own properly scoped snapshot.
        Anchored at the submission site so each site is individually
        suppressable.
    (b) A pinned snapshot must not escape into a long-lived attribute:
        ``<recv>.snapshot = <x>`` stores are flagged unless the receiver
        chain is the engine's thread-local statement state (``_tls``).
    """
    boundaries = _statement_boundaries(index)
    for key, sites in index.calls.items():
        fn = index.functions[key]
        if _in_tooling(fn.module):
            continue
        for site in sites:
            if not site.submitted:
                continue
            for target in site.targets:
                path = _pin_path_outside_boundary(
                    index, direct, target.key, boundaries
                )
                if path:
                    yield RawFinding(
                        "snapshot-scope", fn.module, site.lineno,
                        "%s submits %s to a worker pool, which pins a fresh "
                        "snapshot (via %s); pool work must receive the "
                        "statement's frozen snapshot instead"
                        % (fn.qualname, target.qualname, " -> ".join(path)),
                    )
                    break
    for key, info in index.functions.items():
        if _in_tooling(info.module):
            continue
        for node in own_nodes(info.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and target.attr == "snapshot"
                ):
                    continue
                chain = dotted_chain(target)
                if any("_tls" in part for part in chain[:-1]):
                    continue
                yield RawFinding(
                    "snapshot-scope", info.module, node.lineno,
                    "%s stores a snapshot into %s — snapshots are "
                    "statement-scoped and must not outlive the statement "
                    "that pinned them"
                    % (info.qualname, ".".join(chain) or "an attribute"),
                )


# -- rule 3: resource-pairing -------------------------------------------------

_PAIRS = (
    # (acquire attr, release attrs, resource label)
    ("acquire", ("release",), "lock"),
    ("__enter__", ("__exit__",), "context"),
)
_SHM_RELEASE = {"unlink", "close"}


def _whole_subtree_calls(fn_node: ast.AST):
    """All calls in the function *including* nested defs, paired with the
    callee's simple name.  Pairing is checked over the whole lexical body
    because helpers like ``ship()`` frequently create inside a closure
    and release in the outer ``finally``."""
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute):
            yield node, node.func.attr
        elif isinstance(node.func, ast.Name):
            yield node, node.func.id


def check_resource_pairing(index: ProjectIndex):
    """Manually managed resources must be released on all paths.

    Intraprocedural by design: a create/acquire whose release lives in a
    different function is exactly the pattern this rule exists to ban
    (an exception between the two leaks the resource), so cross-function
    pairing is not given credit.  ``with`` statements are inherently
    paired and never flagged.  Checked pairs: ``SharedMemory(create=True)``
    / ``unlink``, ``SharedMemory(name=...)`` attach / ``close``, manual
    ``acquire`` / ``release`` outside ``with``, manual span or context
    ``__enter__`` / ``__exit__``.
    """
    for key, info in index.functions.items():
        module = info.module
        if _in_tooling(module) or module.endswith("monitor/tracer.py"):
            # tracer.py implements the span protocol itself.
            continue
        if _is_nested(index, info):
            # nested defs are covered by their outermost function's
            # whole-subtree walk; checking them alone double-reports.
            continue
        finally_lines = _finally_lines_deep(info.node)
        with_lines = _with_item_lines(info.node)

        shm_creates: list[int] = []
        shm_attaches: list[int] = []
        shm_released_in_finally = False
        acquires: list[tuple[int, str]] = []
        releases: list[tuple[int, bool]] = []
        enters: list[int] = []
        exits_in_finally = False

        for call, attr in _whole_subtree_calls(info.node):
            lineno = call.lineno
            if attr == "SharedMemory":
                kwargs = {kw.arg for kw in call.keywords}
                if "create" in kwargs:
                    shm_creates.append(lineno)
                else:
                    shm_attaches.append(lineno)
            elif attr in _SHM_RELEASE and _is_shm_receiver(call):
                if lineno in finally_lines:
                    shm_released_in_finally = True
            elif attr == "acquire" and lineno not in with_lines:
                chain = dotted_chain(call.func)
                acquires.append((lineno, ".".join(chain[:-1])))
            elif attr == "release":
                releases.append((lineno, lineno in finally_lines))
            elif attr == "__enter__":
                enters.append(lineno)
            elif attr == "__exit__" and lineno in finally_lines:
                exits_in_finally = True

        for lineno in shm_creates + shm_attaches:
            if not shm_released_in_finally:
                yield RawFinding(
                    "resource-pairing", module, lineno,
                    "%s opens shared memory but no unlink/close runs in a "
                    "finally block — an exception leaks the segment"
                    % info.qualname,
                )
        for lineno, recv in acquires:
            if not any(fin for _, fin in releases):
                yield RawFinding(
                    "resource-pairing", module, lineno,
                    "%s acquires %s outside `with` and never releases it in "
                    "a finally block" % (info.qualname, recv or "a lock"),
                )
        for lineno in enters:
            if not exits_in_finally:
                yield RawFinding(
                    "resource-pairing", module, lineno,
                    "%s calls __enter__ manually without a matching "
                    "__exit__ in a finally block" % info.qualname,
                )


def _is_nested(index: ProjectIndex, info: FunctionInfo) -> bool:
    """True when *info* is a def lexically inside another function."""
    qual = info.qualname
    while "." in qual:
        qual = qual.rsplit(".", 1)[0]
        if (info.module, qual) in index.functions:
            return True
    return False


def _is_shm_receiver(call: ast.Call) -> bool:
    chain = dotted_chain(call.func)
    return any(
        "shm" in part.lower() or "shared" in part.lower()
        for part in chain[:-1]
    )


def _finally_lines_deep(fn_node: ast.AST) -> set[int]:
    lines: set[int] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Try) and node.finalbody:
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if hasattr(sub, "lineno"):
                        lines.add(sub.lineno)
    return lines


def _with_item_lines(fn_node: ast.AST) -> set[int]:
    lines: set[int] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for sub in ast.walk(item.context_expr):
                    if hasattr(sub, "lineno"):
                        lines.add(sub.lineno)
    return lines


# -- rule 4: sqlstate ---------------------------------------------------------


def check_sqlstate(
    index: ProjectIndex,
    closed: dict[tuple[str, str], ClosedEffects],
):
    """Engine errors crossing the public API carry a SQLSTATE.

    For every public entry method of the API classes, every project
    exception class its closure can raise (uncaught at the raise site)
    must assign ``sqlstate`` — as a class attribute, in ``__init__``, or
    by inheritance.  Findings anchor at the entry method so the fix is
    visible where the caller contract lives.
    """
    for fn in _entry_functions(index):
        eff = closed.get(fn.key)
        if eff is None:
            continue
        bare = sorted(
            cls for cls in eff.raises
            if cls not in SQLSTATE_EXEMPT
            and not index.class_carries_sqlstate(cls)
        )
        if bare:
            yield RawFinding(
                "sqlstate", fn.module, fn.lineno,
                "%s can raise %s without a SQLSTATE — errors crossing the "
                "public API must carry one (assign `sqlstate` on the class "
                "or a base)" % (fn.qualname, ", ".join(bare)),
            )


ALL_RULES = ("write-protocol", "snapshot-scope", "resource-pairing", "sqlstate")


def run_all(index: ProjectIndex, direct, closed):
    yield from check_write_protocol(index, direct, closed)
    yield from check_snapshot_scope(index, direct, closed)
    yield from check_resource_pairing(index)
    yield from check_sqlstate(index, closed)
