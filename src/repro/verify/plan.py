"""Static verification of compiled physical plans.

:func:`verify_plan` walks an operator tree *before it executes* and
re-derives, operator by operator, what each node consumes and produces:

* **schema propagation** — every column an operator reads (predicate
  references, projection expressions, join keys, sort keys, aggregate
  arguments) must be produced by its child; every operator's output
  schema is re-computed independently of the planner;
* **arity / type checks** — join key lists must pair comparable types,
  UNION ALL branches must agree column-for-column, LIMIT/OFFSET must be
  sane, and the root must produce exactly the keys/dtypes the
  :class:`~repro.sql.planner.PlannedQuery` advertises;
* **parallel gating** — a :class:`~repro.engine.aggregate.GroupByOp`'s
  ``parallel_safe()`` verdict is re-derived here from its aggregate specs
  (an independent implementation of the associativity rules) and compared
  with the operator's own answer, so the gate cannot silently drift;
* **cost-charge coverage** — when a :class:`~repro.database.Database` is
  supplied, every table scan must route page fetches through the buffer
  pool (``page_source``), be registered for byte accounting
  (``note_scan``), and share the engine's worker pool, so no physical
  work escapes the simulated cost model.

The verifier is wired into ``Database._execute_select`` behind the
``REPRO_VERIFY_PLANS=1`` environment variable and swept over the entire
differential-test query corpus in ``tests/test_verify_plan.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.aggregate import GroupByOp
from repro.engine.join import HashJoinOp, NestedLoopJoinOp
from repro.engine.operators import (
    FilterOp,
    LimitOp,
    ProjectOp,
    TableScanOp,
    VectorSourceOp,
)
from repro.engine.sort import SortOp
from repro.errors import ReproError
from repro.types.datatypes import BIGINT, DataType, TypeKind


class PlanVerificationError(ReproError):
    """A compiled plan failed static verification."""

    #: a verified invariant failed inside the engine: system error, not a
    #: user SQL error — but it still crosses the public API, so it carries
    #: a SQLSTATE like every other engine error.
    sqlstate = "58004"

    def __init__(self, issues: list["PlanIssue"]):
        self.issues = issues
        super().__init__(
            "plan verification failed (%d issue(s)):\n%s"
            % (len(issues), "\n".join("  - " + i.render() for i in issues))
        )


@dataclass(frozen=True)
class PlanIssue:
    """One verification failure, anchored to an operator."""

    operator: str   # operator class name
    code: str       # stable machine-readable issue class
    message: str

    def render(self) -> str:
        return "[%s] %s: %s" % (self.code, self.operator, self.message)


#: Schema: ordered mapping of column key -> DataType.  ``None`` means the
#: verifier met an operator it cannot model and stops claiming anything
#: about columns above that point (children are still checked).
Schema = "dict[str, DataType] | None"


def _comparable(left: DataType, right: DataType) -> bool:
    """Can these two types meet in a join key / set-op column?"""
    if left == right:
        return True
    numeric = lambda dt: (
        dt.is_integer or dt.is_approximate or dt.kind is TypeKind.DECIMAL
    )
    if numeric(left) and numeric(right):
        return True
    if left.is_string and right.is_string:
        return True
    return left.kind is right.kind


def _expected_parallel_safe(op: GroupByOp) -> bool:
    """Independent re-derivation of GroupByOp.parallel_safe().

    Deliberately *not* a call into the operator: the verifier re-states
    the associativity rules (exact merge for COUNT/MIN/MAX, int64 SUM,
    integer AVG; everything DISTINCT, float-accumulating, or keyed by an
    approximate type stays serial) so a drive-by edit to either copy
    trips the differential corpus sweep.
    """
    for _, expr in op.keys:
        if expr.dtype.is_approximate:
            return False
    for spec in op.aggregates:
        func = spec.func.upper()
        if spec.distinct:
            return False
        if func in ("COUNT", "MIN", "MAX"):
            continue
        if not spec.args:
            return False
        arg = spec.args[0].dtype
        if func == "SUM" and (arg.is_integer or arg.kind is TypeKind.DECIMAL):
            continue
        if func == "AVG" and arg.is_integer:
            continue
        return False
    return True


class PlanVerifier:
    """One verification pass over one operator tree."""

    def __init__(self, database=None):
        self.database = database
        self.issues: list[PlanIssue] = []
        self.scans: list[TableScanOp] = []

    # -- issue helpers -----------------------------------------------------

    def _issue(self, op, code: str, message: str) -> None:
        self.issues.append(PlanIssue(type(op).__name__, code, message))

    def _check_refs(self, op, expr, schema, what: str) -> None:
        if schema is None or expr is None:
            return
        missing = sorted(expr.references() - set(schema))
        if missing:
            self._issue(
                op,
                "unknown-column",
                "%s references column(s) %s not produced by its input "
                "(available: %s)" % (what, missing, sorted(schema)),
            )

    # -- schema derivation -------------------------------------------------

    def visit(self, op):
        """Derive ``op``'s output schema, recording issues on the way."""
        # EXPLAIN ANALYZE wrappers are transparent.
        inner = getattr(op, "inner", None)
        if inner is not None and hasattr(inner, "execute"):
            return self.visit(inner)
        method = getattr(
            self, "_visit_%s" % type(op).__name__.lower(), None
        )
        if method is not None:
            return method(op)
        return self._visit_unknown(op)

    def _visit_unknown(self, op):
        # Walk children generically so subtrees below an unmodelled
        # operator are still verified; claim nothing about its output.
        for attr in ("child", "left", "right"):
            sub = getattr(op, attr, None)
            if sub is not None and hasattr(sub, "execute"):
                self.visit(sub)
        for sub in getattr(op, "children", None) or []:
            if hasattr(sub, "execute"):
                self.visit(sub)
        return None

    def _visit_tablescanop(self, op: TableScanOp):
        self.scans.append(op)
        table_columns = dict(op.table.schema.columns)
        schema: dict[str, DataType] = {}
        for name in op.columns:
            dtype = table_columns.get(name)
            if dtype is None:
                self._issue(
                    op,
                    "unknown-column",
                    "scan of %s projects %r which the table does not have"
                    % (op.table.schema.name, name),
                )
                continue
            schema[name] = dtype
        for pred in op.pushed:
            if pred.column not in table_columns:
                self._issue(
                    op,
                    "unknown-column",
                    "pushed predicate on %r which table %s does not have"
                    % (pred.column, op.table.schema.name),
                )
        if op.residual is not None:
            available = dict(table_columns)
            self._check_refs(op, op.residual, available, "residual predicate")
        if self.database is not None:
            self._check_scan_charging(op)
        return schema

    def _check_scan_charging(self, op: TableScanOp) -> None:
        db = self.database
        if op.page_source is None:
            self._issue(
                op,
                "cost-charge",
                "scan of %s bypasses the buffer pool (page_source is None): "
                "its pages/bytes never reach the cost model"
                % op.table.schema.name,
            )
        noted = any(s is op for s in getattr(db, "last_scans", []))
        if not noted:
            self._issue(
                op,
                "cost-charge",
                "scan of %s was not registered via Database.note_scan: "
                "last_query_bytes() will under-report this query"
                % op.table.schema.name,
            )
        pool = getattr(db, "pool", None)
        if pool is not None and op.pool is not None and op.pool is not pool:
            self._issue(
                op,
                "cost-charge",
                "scan of %s runs on a foreign worker pool: its task spans "
                "will not charge this engine's clock or metrics"
                % op.table.schema.name,
            )

    def _visit_vectorsourceop(self, op: VectorSourceOp):
        return {
            key: vector.dtype for key, vector in op.batch.columns.items()
        }

    def _visit_filterop(self, op: FilterOp):
        schema = self.visit(op.child)
        self._check_refs(op, op.predicate, schema, "filter predicate")
        return schema

    def _visit_projectop(self, op: ProjectOp):
        schema = self.visit(op.child)
        out: dict[str, DataType] = {}
        for alias, expr in op.outputs:
            self._check_refs(op, expr, schema, "projection %r" % alias)
            if alias in out:
                self._issue(
                    op,
                    "duplicate-column",
                    "projection emits %r twice" % alias,
                )
            out[alias] = expr.dtype
        return out

    def _visit_limitop(self, op: LimitOp):
        if op.limit is not None and op.limit < 0:
            self._issue(op, "bad-limit", "negative LIMIT %r" % op.limit)
        if op.offset < 0:
            self._issue(op, "bad-limit", "negative OFFSET %r" % op.offset)
        return self.visit(op.child)

    def _visit_sortop(self, op: SortOp):
        schema = self.visit(op.child)
        for i, key in enumerate(op.keys):
            self._check_refs(op, key.expr, schema, "sort key %d" % (i + 1))
        return schema

    def _visit_rownumberop(self, op):
        schema = self.visit(op.child)
        if schema is None:
            return None
        if op.key in schema:
            self._issue(
                op,
                "duplicate-column",
                "row-number key %r collides with an input column" % op.key,
            )
        out = dict(schema)
        out[op.key] = BIGINT
        return out

    def _visit_chainop(self, op):
        schemas = [self.visit(child) for child in op.children]
        known = [s for s in schemas if s is not None]
        if not known:
            return None
        first = known[0]
        for i, schema in enumerate(known[1:], start=2):
            if list(schema) != list(first):
                self._issue(
                    op,
                    "union-mismatch",
                    "UNION ALL branch %d emits %s but branch 1 emits %s"
                    % (i, list(schema), list(first)),
                )
                continue
            for key in first:
                if not _comparable(first[key], schema[key]):
                    self._issue(
                        op,
                        "union-mismatch",
                        "UNION ALL column %r: branch 1 is %s, branch %d is %s"
                        % (key, first[key], i, schema[key]),
                    )
        return first

    def _visit_hashjoinop(self, op: HashJoinOp):
        left = self.visit(op.left)
        right = self.visit(op.right)
        if len(op.left_keys) != len(op.right_keys):
            self._issue(
                op,
                "join-arity",
                "join key arity mismatch: %d left vs %d right"
                % (len(op.left_keys), len(op.right_keys)),
            )
        for lk, rk in zip(op.left_keys, op.right_keys):
            if left is not None and lk not in left:
                self._issue(
                    op,
                    "unknown-column",
                    "left join key %r not produced by the probe side "
                    "(available: %s)" % (lk, sorted(left)),
                )
            if right is not None and rk not in right:
                self._issue(
                    op,
                    "unknown-column",
                    "right join key %r not produced by the build side "
                    "(available: %s)" % (rk, sorted(right)),
                )
            if (
                left is not None
                and right is not None
                and lk in left
                and rk in right
                and not _comparable(left[lk], right[rk])
            ):
                self._issue(
                    op,
                    "join-type-mismatch",
                    "join keys %r (%s) and %r (%s) are not comparable"
                    % (lk, left[lk], rk, right[rk]),
                )
        if left is None or right is None:
            return None
        if op.join_type in ("semi", "anti"):
            out = dict(left)
        else:
            out = dict(left)
            for key, dtype in right.items():
                if key in out:
                    self._issue(
                        op,
                        "duplicate-column",
                        "both join sides produce column %r" % key,
                    )
                    continue
                out[key] = dtype
        self._check_refs(op, op.residual, {**left, **right}, "join residual")
        return out

    def _visit_nestedloopjoinop(self, op: NestedLoopJoinOp):
        left = self.visit(op.left)
        right = self.visit(op.right)
        if left is None or right is None:
            return None
        out = dict(left)
        for key, dtype in right.items():
            out.setdefault(key, dtype)
        self._check_refs(op, op.condition, out, "join condition")
        return out

    def _visit_groupbyop(self, op: GroupByOp):
        schema = self.visit(op.child)
        out: dict[str, DataType] = {}
        for alias, expr in op.keys:
            self._check_refs(op, expr, schema, "group key %r" % alias)
            out[alias] = expr.dtype
        for spec in op.aggregates:
            for arg in spec.args:
                self._check_refs(
                    op, arg, schema, "aggregate %s(%s)" % (spec.func, spec.alias)
                )
            if spec.alias in out:
                self._issue(
                    op,
                    "duplicate-column",
                    "aggregate alias %r collides with a group key" % spec.alias,
                )
            out[spec.alias] = spec.output_type()
        self._check_parallel_gate(op)
        self._check_fused_gate(op)
        if self.database is not None:
            pool = getattr(self.database, "pool", None)
            if pool is not None and op.pool is not None and op.pool is not pool:
                self._issue(
                    op,
                    "cost-charge",
                    "group-by runs on a foreign worker pool: its task spans "
                    "will not charge this engine's clock or metrics",
                )
        return out

    def _check_parallel_gate(self, op: GroupByOp) -> None:
        declared = op.parallel_safe()
        expected = _expected_parallel_safe(op)
        if declared != expected:
            self._issue(
                op,
                "parallel-gate",
                "parallel_safe() returned %s but the verifier derives %s "
                "from the aggregate specs (%s): the morsel-merge gate and "
                "the associativity rules have drifted apart"
                % (
                    declared,
                    expected,
                    ", ".join(
                        "%s%s(%s)"
                        % (
                            spec.func,
                            " DISTINCT" if spec.distinct else "",
                            spec.args[0].dtype if spec.args else "*",
                        )
                        for spec in op.aggregates
                    )
                    or "no aggregates",
                ),
            )

    def _check_fused_gate(self, op: GroupByOp) -> None:
        """Every parallel-safe aggregate set must compile to fused recipes.

        The parallel group-by path tries the fused vectorized reduce first
        and only falls back to per-morsel aggregation states on
        :class:`~repro.engine.fused.FusionFallback`.  A function admitted
        by ``parallel_safe()`` but rejected by the recipe compiler would
        silently lose the fused fast path, so the drift is flagged here.
        """
        if not op.parallel_safe() or not op.aggregates:
            return
        from repro.engine import fused

        try:
            fused.compile_recipes(op.aggregates)
        except fused.FusionFallback as exc:
            self._issue(
                op,
                "fused-gate",
                "parallel_safe() admits this aggregate set but the fused "
                "recipe compiler rejects it (%s): the query will silently "
                "take the slow per-morsel state path" % exc,
            )


def verify_plan(planned, database=None) -> list[PlanIssue]:
    """Verify a plan; returns the list of issues (empty when clean).

    ``planned`` is either a :class:`~repro.sql.planner.PlannedQuery` (the
    root schema is then checked against its advertised keys/dtypes) or a
    bare operator.
    """
    verifier = PlanVerifier(database=database)
    op = getattr(planned, "op", planned)
    schema = verifier.visit(op)
    # Only a plan *wrapper* advertises a root schema; a bare operator's own
    # ``keys`` attribute (GroupByOp group keys, SortOp sort keys) is not one.
    keys = getattr(planned, "keys", None) if op is not planned else None
    if keys is not None and schema is not None:
        dtypes = list(getattr(planned, "dtypes", []) or [])
        names = list(getattr(planned, "names", []) or [])
        if list(schema) != list(keys):
            verifier._issue(
                op,
                "root-schema",
                "plan produces keys %s but the query advertises %s"
                % (list(schema), list(keys)),
            )
        else:
            for key, dtype in zip(keys, dtypes):
                if schema[key] != dtype:
                    verifier._issue(
                        op,
                        "root-schema",
                        "column %r: plan produces %s, query advertises %s"
                        % (key, schema[key], dtype),
                    )
        if names and len(names) != len(keys):
            verifier._issue(
                op,
                "root-schema",
                "query advertises %d names for %d columns"
                % (len(names), len(keys)),
            )
    return verifier.issues


def check_plan(planned, database=None) -> None:
    """Raise :class:`PlanVerificationError` when a plan fails to verify."""
    issues = verify_plan(planned, database=database)
    if issues:
        raise PlanVerificationError(issues)
