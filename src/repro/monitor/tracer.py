"""Nestable tracing spans over the query lifecycle.

A :class:`Tracer` records a tree of :class:`Span` objects per statement
(parse -> plan -> execute -> per-operator).  Spans measure wall-clock time
with ``time.perf_counter`` and, when the tracer is built with a
:class:`~repro.util.timer.SimClock`, also the simulated seconds charged
while the span was open — so cost-model time (cluster scatter, deployment)
shows up alongside real time.

The default tracer on every :class:`~repro.database.database.Database` is
:data:`NULL_TRACER`, a shared no-op whose ``span()`` returns one
preallocated context manager: tracing disabled costs one attribute lookup
and an empty ``with`` block per call site, nothing more.
"""

from __future__ import annotations

import threading
import time

from repro.verify import sanitizer


class Span:
    """One timed, attributed interval; spans nest into a tree.

    Use as a context manager (``with tracer.span("plan") as s:``); call
    :meth:`annotate` to attach attributes while the span is open.
    """

    __slots__ = (
        "tracer", "name", "attrs", "children", "depth",
        "wall_start", "wall_elapsed", "sim_start", "sim_elapsed", "order",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.depth = 0
        self.wall_start = 0.0
        self.wall_elapsed = 0.0
        self.sim_start: float | None = None
        self.sim_elapsed: float | None = None
        self.order = -1  # finish order across the whole tracer

    def annotate(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __enter__(self) -> "Span":
        self.tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.tracer._exit(self, failed=exc_type is not None)
        return False

    def __repr__(self) -> str:
        return "Span(%r, wall=%.6fs, children=%d)" % (
            self.name, self.wall_elapsed, len(self.children)
        )


class Tracer:
    """Collects span trees; safe to use from multiple threads.

    Each thread keeps its own open-span stack (spans nest per thread);
    finished roots and the global finish order are guarded by a lock.

    Args:
        clock: optional :class:`~repro.util.timer.SimClock`; when set, every
            span also records the simulated seconds charged while open.
    """

    enabled = True

    def __init__(self, clock=None):
        self.clock = clock
        self.roots: list[Span] = []
        self.finished: list[Span] = []
        self._lock = sanitizer.make_lock("tracer")
        self._local = threading.local()

    # -- span lifecycle --------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter(self, span: Span) -> None:
        stack = self._stack()
        span.depth = len(stack)
        stack.append(span)
        if self.clock is not None:
            span.sim_start = self.clock.now
        span.wall_start = time.perf_counter()

    def _exit(self, span: Span, failed: bool = False) -> None:
        span.wall_elapsed = time.perf_counter() - span.wall_start
        if span.sim_start is not None:
            span.sim_elapsed = self.clock.now - span.sim_start
        if failed:
            span.attrs["error"] = True
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            span.order = len(self.finished)
            self.finished.append(span)
            if stack:
                stack[-1].children.append(span)
            else:
                self.roots.append(span)

    def record(self, name: str, wall_elapsed: float, parent: Span | None = None,
               sim_elapsed: float | None = None, **attrs) -> Span:
        """Attach an already-measured interval as a finished span.

        Used by the plan instrumentation layer, which measures operators
        itself and reports them as children of the ``execute`` span.
        """
        span = Span(self, name, attrs)
        span.wall_elapsed = wall_elapsed
        span.sim_elapsed = sim_elapsed
        with self._lock:
            span.order = len(self.finished)
            self.finished.append(span)
            if parent is not None:
                span.depth = parent.depth + 1
                parent.children.append(span)
            else:
                self.roots.append(span)
        return span

    # -- inspection -------------------------------------------------------------

    def find(self, name: str) -> list[Span]:
        """All finished spans with this name, in finish order."""
        with self._lock:
            return [s for s in self.finished if s.name == name]

    def reset(self) -> None:
        with self._lock:
            self.roots = []
            self.finished = []
        self._local = threading.local()


class _NullSpan:
    """The shared do-nothing span returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def annotate(self, **attrs):
        return self


class NullTracer:
    """The zero-overhead default: every call is a no-op."""

    enabled = False
    roots: tuple = ()
    finished: tuple = ()

    _SPAN = _NullSpan()

    def span(self, name: str, **attrs) -> _NullSpan:
        return self._SPAN

    def record(self, name, wall_elapsed, parent=None, sim_elapsed=None, **attrs):
        return self._SPAN

    def find(self, name: str) -> list:
        return []

    def reset(self) -> None:
        pass


#: The process-wide no-op tracer (the default everywhere).
NULL_TRACER = NullTracer()
