"""Per-operator plan instrumentation (the EXPLAIN ANALYZE machinery).

:func:`instrument_plan` rewrites an operator tree so every node is wrapped
in an :class:`InstrumentedOp` that counts rows/batches and accumulates the
wall-clock (and sim-clock) seconds spent producing them.  Timings are
*inclusive* — an operator's time contains its children's, exactly like the
"actual time" column of a conventional EXPLAIN ANALYZE.

The wrapper charges only the time spent inside the wrapped generator, so a
downstream pipeline-breaker does not inflate an upstream scan.  Engine
imports are deferred to call time to keep ``repro.monitor`` importable from
the engine layer itself.
"""

from __future__ import annotations

import time


class InstrumentedOp:
    """Wraps one operator; execution statistics accumulate across run()s."""

    def __init__(self, inner, clock=None):
        self.inner = inner
        self.clock = clock
        self.rows_out = 0
        self.batches = 0
        self.wall_seconds = 0.0
        self.sim_seconds = 0.0

    def execute(self):
        clock = self.clock
        gen = self.inner.execute()
        while True:
            t0 = time.perf_counter()
            s0 = clock.now if clock is not None else 0.0
            try:
                batch = next(gen)
            except StopIteration:
                self.wall_seconds += time.perf_counter() - t0
                if clock is not None:
                    self.sim_seconds += clock.now - s0
                return
            self.wall_seconds += time.perf_counter() - t0
            if clock is not None:
                self.sim_seconds += clock.now - s0
            self.rows_out += batch.n
            self.batches += 1
            yield batch

    def run(self):
        from repro.engine.expression import Batch

        return Batch.concat(list(self.execute()))


_CHILD_ATTRS = ("child", "left", "right")


def instrument_plan(op, clock=None) -> InstrumentedOp:
    """Recursively wrap an operator tree for per-operator accounting.

    The tree is rewritten in place (child attributes now point at
    wrappers); plans are single-use so this is safe.  Returns the wrapped
    root.
    """
    if isinstance(op, InstrumentedOp):
        return op
    for attr in _CHILD_ATTRS:
        sub = getattr(op, attr, None)
        if sub is not None and hasattr(sub, "execute"):
            setattr(op, attr, instrument_plan(sub, clock))
    children = getattr(op, "children", None)
    if children:
        op.children = [
            instrument_plan(c, clock) if hasattr(c, "execute") else c
            for c in children
        ]
    return InstrumentedOp(op, clock)


def operator_detail(op) -> str:
    """One-line physical detail for an operator (shared by EXPLAIN paths)."""
    from repro.engine.aggregate import GroupByOp
    from repro.engine.join import HashJoinOp, NestedLoopJoinOp
    from repro.engine.operators import TableScanOp

    if isinstance(op, TableScanOp):
        preds = ", ".join("%s %s" % (p.column, p.op) for p in op.pushed)
        return " %s(%s)%s" % (
            op.table.schema.name,
            ", ".join(op.columns),
            (" WHERE " + preds) if preds else "",
        )
    if isinstance(op, (HashJoinOp, NestedLoopJoinOp)):
        return " [%s]" % op.join_type
    if isinstance(op, GroupByOp):
        keys = ", ".join(alias for alias, _ in op.keys)
        aggs = ", ".join(s.alias for s in op.aggregates)
        return " keys(%s) aggs(%s)" % (keys, aggs)
    return ""


def _instrumented_children(wrapper: InstrumentedOp) -> list[InstrumentedOp]:
    out = []
    for attr in _CHILD_ATTRS:
        sub = getattr(wrapper.inner, attr, None)
        if isinstance(sub, InstrumentedOp):
            out.append(sub)
    for sub in getattr(wrapper.inner, "children", None) or []:
        if isinstance(sub, InstrumentedOp):
            out.append(sub)
    return out


def _operator_line(wrapper: InstrumentedOp, depth: int) -> str:
    op = wrapper.inner
    line = "%s%s%s rows=%d batches=%d time=%.3fms" % (
        "  " * depth,
        type(op).__name__,
        operator_detail(op),
        wrapper.rows_out,
        wrapper.batches,
        wrapper.wall_seconds * 1e3,
    )
    if wrapper.sim_seconds > 0.0:
        line += " sim=%.6fs" % wrapper.sim_seconds
    stats = getattr(op, "stats", None)
    if stats is not None and hasattr(stats, "extents_skipped"):
        line += " [scanned=%d skipped_extents=%d pages=%d]" % (
            stats.rows_scanned, stats.extents_skipped, stats.pages_read
        )
    run = getattr(op, "parallel_run", None)
    if run is not None:
        line += " [parallel backend=%s tasks=%d workers=%d busy=%.3fms makespan=%.3fms]" % (
            getattr(run, "backend", "thread"),
            run.tasks,
            len(run.worker_busy()),
            run.total_seconds * 1e3,
            run.makespan_seconds * 1e3,
        )
    fused_mode = getattr(op, "fused_mode", None)
    if fused_mode is not None:
        line += " [fused=%s cache=%s]" % (
            fused_mode, getattr(op, "fused_cache", None) or "n/a"
        )
    return line


def annotated_plan_lines(root: InstrumentedOp, depth: int = 0) -> list[str]:
    """Render an executed instrumented plan as indented annotated lines."""
    lines = [_operator_line(root, depth)]
    for child in _instrumented_children(root):
        lines.extend(annotated_plan_lines(child, depth + 1))
    return lines


def attach_operator_spans(tracer, parent_span, root: InstrumentedOp) -> None:
    """Report each instrumented operator as a finished child span.

    Operators are measured by the wrapper rather than live spans so that
    pipelined (interleaved) generators cannot corrupt the tracer's
    open-span stack; the tree is reconstructed after the plan drains.
    """
    span = tracer.record(
        "operator:%s" % type(root.inner).__name__,
        root.wall_seconds,
        parent=parent_span,
        sim_elapsed=root.sim_seconds if root.sim_seconds > 0.0 else None,
        rows=root.rows_out,
        batches=root.batches,
    )
    stats = getattr(root.inner, "stats", None)
    if stats is not None:
        span.annotate(stats=stats)
    run = getattr(root.inner, "parallel_run", None)
    if run is not None:
        span.annotate(
            parallel={
                "parallelism": run.parallelism,
                "backend": getattr(run, "backend", "thread"),
                "tasks": run.tasks,
                "busy_seconds": run.total_seconds,
                "makespan_seconds": run.makespan_seconds,
                "worker_busy": run.worker_busy(),
            }
        )
    fused_mode = getattr(root.inner, "fused_mode", None)
    if fused_mode is not None:
        span.annotate(fused={"mode": fused_mode,
                             "cache": getattr(root.inner, "fused_cache", None)})
    for child in _instrumented_children(root):
        attach_operator_spans(tracer, span, child)


def describe_plan(op, depth: int = 0) -> list[str]:
    """Plain (non-analyzed) EXPLAIN rendering of an operator tree."""
    lines = ["%s%s%s" % ("  " * depth, type(op).__name__, operator_detail(op))]
    for attr in _CHILD_ATTRS:
        sub = getattr(op, attr, None)
        if sub is not None and hasattr(sub, "execute"):
            lines.extend(describe_plan(sub, depth + 1))
    for sub in getattr(op, "children", None) or []:
        if hasattr(sub, "execute"):
            lines.extend(describe_plan(sub, depth + 1))
    return lines
