"""Query-lifecycle observability: tracing spans, metrics, EXPLAIN ANALYZE.

The monitoring layer dashDB inherits from DB2 ("monitoring and workload
management built in") reproduced for this engine:

* :mod:`repro.monitor.tracer` — nestable spans over parse/plan/execute and
  per-operator work, with a zero-overhead :data:`NULL_TRACER` default;
* :mod:`repro.monitor.metrics` — a thread-safe registry of counters,
  gauges, and histograms;
* :mod:`repro.monitor.instrument` — the per-operator plan wrapper behind
  ``EXPLAIN ANALYZE``;
* :mod:`repro.monitor.report` — MONREPORT-style snapshots
  (``Database.monreport()`` / ``Cluster.monreport()``).
"""

from repro.monitor.instrument import (
    InstrumentedOp,
    annotated_plan_lines,
    attach_operator_spans,
    describe_plan,
    instrument_plan,
    operator_detail,
)
from repro.monitor.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.monitor.report import bufferpool_report, cluster_report, database_report
from repro.monitor.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "InstrumentedOp",
    "annotated_plan_lines",
    "attach_operator_spans",
    "describe_plan",
    "instrument_plan",
    "operator_detail",
    "bufferpool_report",
    "cluster_report",
    "database_report",
]
