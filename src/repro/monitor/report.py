"""MONREPORT-style snapshots for a database or a whole MPP cluster.

dashDB ships DB2's MONREPORT module ("simple to manage"); the analogue here
is a plain dict snapshot of the monitoring surfaces: buffer-pool hit
ratios, statement counts, per-shard/per-node timings of the last
distributed statement, and the metrics registry.  Dicts keep the report
assertable in tests and trivially JSON-serialisable.
"""

from __future__ import annotations


def bufferpool_report(pool) -> dict:
    """Snapshot one buffer pool's counters and occupancy."""
    stats = pool.stats
    return {
        "capacity": pool.capacity,
        "resident": len(pool),
        "requests": stats.accesses,
        "hits": stats.hits,
        "misses": stats.misses,
        "evictions": stats.evictions,
        "hit_ratio": stats.hit_ratio,
    }


def database_report(database) -> dict:
    """Single-node MONREPORT: statements, buffer pool, tables, metrics."""
    tables = {}
    for name in database.table_names():
        table = database.catalog.get_table(name).table
        tables[name] = {
            "rows": table.n_rows,
            "compressed_bytes": table.compressed_nbytes(),
        }
    gateway = getattr(database, "serving", None)
    return {
        "database": database.name,
        "statements": database.statement_count,
        "bufferpool": bufferpool_report(database.bufferpool),
        "tables": tables,
        "tracing_enabled": database.tracer.enabled,
        "txn": database.txn.report(),
        "metrics": database.metrics.snapshot(),
        "parallel": worker_pool_report(database.pool),
        "durability": (
            database.durability.report()
            if database.durability is not None
            else {"enabled": False}
        ),
        "serving": (
            serving_report(gateway)
            if gateway is not None
            else {"enabled": False}
        ),
    }


def serving_report(gateway) -> dict:
    """Serving-layer MONREPORT section: caches and admission outcomes.

    ``gateway`` is a :class:`repro.serving.gateway.ServingGateway`
    (duck-typed — this module stays import-free of the serving package).
    Open-loop simulation results (QpH, p50/p99 latency, shed rate) attach
    under ``last_open_loop`` when the gateway has run one.
    """
    report = {
        "enabled": True,
        "result_cache": gateway.result_cache.report(),
        "plan_cache": gateway.plan_cache.report(),
        "admission": gateway.admission.report(),
        "tenants": sorted(gateway.classes),
    }
    last = getattr(gateway, "last_open_loop", None)
    if last is not None:
        report["last_open_loop"] = last.report()
    return report


def worker_pool_report(pool) -> dict:
    """Snapshot one worker pool's lifetime accumulators."""
    return {
        "parallelism": pool.parallelism,
        "runs": pool.runs_total,
        "tasks": pool.tasks_total,
        "busy_seconds": pool.busy_seconds_total,
        "makespan_seconds": pool.makespan_seconds_total,
    }


def cluster_report(cluster) -> dict:
    """Cluster MONREPORT: topology, pooled buffer-pool stats, last query."""
    hits = misses = evictions = 0
    per_shard_pool = {}
    for sid in sorted(cluster.shards):
        stats = cluster.shards[sid].engine.bufferpool.stats
        hits += stats.hits
        misses += stats.misses
        evictions += stats.evictions
        per_shard_pool[sid] = {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_ratio": stats.hit_ratio,
        }
    requests = hits + misses
    last = cluster.last_stats
    return {
        "cluster": {
            "nodes": len(cluster.nodes),
            "live_nodes": len(cluster.live_nodes()),
            "shards": cluster.n_shards,
            "balanced": cluster.is_balanced(),
        },
        "bufferpool": {
            "requests": requests,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_ratio": hits / requests if requests else 0.0,
            "per_shard": per_shard_pool,
        },
        "last_query": {
            "mode": last.mode,
            "shards_touched": last.shards_touched,
            "rows_gathered": last.rows_gathered,
            "elapsed_by_node": dict(last.elapsed_by_node),
            "elapsed_by_shard": dict(last.elapsed_by_shard),
            "skew_ratio": last.skew_ratio,
            "gather_seconds": last.gather_seconds,
            "parallelism": last.parallelism,
            "worker_busy": dict(last.worker_busy),
        },
        "parallel": worker_pool_report(cluster.pool),
        "tables": {
            name: cluster.total_rows(name) for name in sorted(cluster.tables)
        },
        "coordinator": database_report(cluster.coordinator),
        "durability": _cluster_durability_report(cluster),
    }


def _cluster_durability_report(cluster) -> dict:
    """Aggregate durability counters across shard engines."""
    if not cluster.durable:
        return {"enabled": False}
    totals = {
        "commits": 0,
        "wal_flushes": 0,
        "wal_flushed_bytes": 0,
        "checkpoints": 0,
        "recoveries": 0,
    }
    wal_bytes = 0
    per_shard = {}
    for sid in sorted(cluster.shards):
        manager = cluster.shards[sid].engine.durability
        if manager is None:
            continue
        for key in totals:
            totals[key] += manager.stats[key]
        wal_bytes += manager.wal.durable_nbytes()
        per_shard[sid] = {
            "commits": manager.stats["commits"],
            "wal_durable_bytes": manager.wal.durable_nbytes(),
            "checkpoint_lsns": manager.store.checkpoint_lsns(),
        }
    report = {"enabled": True, "wal_durable_bytes": wal_bytes}
    report.update(totals)
    report["per_shard"] = per_shard
    report["last_failover_recoveries"] = {
        sid: {
            "transactions_replayed": r.transactions_replayed,
            "records_replayed": r.records_replayed,
            "sim_seconds": r.sim_seconds,
        }
        for sid, r in cluster.last_failover_recoveries.items()
    }
    return report
