"""A thread-safe registry of counters, gauges, and histograms.

The registry is the metrics half of the observability layer (the tracer is
the timing half): instrumented components increment named counters
(``bufferpool.hits``), set gauges (``cluster.live_nodes``), and observe
histogram samples (``statement.wall_seconds``).  All metric families share
the registry's lock, so concurrent sessions can record safely.
"""

from __future__ import annotations

import threading

from repro.verify import sanitizer


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up (got %r)" % (amount,))
        with self._lock:
            if sanitizer.ENABLED:
                sanitizer.access("metrics", self.name, site="Counter.inc")
            self.value += amount


class Gauge:
    """A value that can go up or down (last write wins)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            if sanitizer.ENABLED:
                sanitizer.access("metrics", self.name, site="Gauge.set")
            self.value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            if sanitizer.ENABLED:
                sanitizer.access("metrics", self.name, site="Gauge.add")
            self.value += float(delta)


class Histogram:
    """Sample distribution: count / sum / min / max plus a bounded reservoir.

    The reservoir keeps the first ``reservoir_size`` samples (deterministic,
    enough for test-scale percentile queries); count/sum/min/max stay exact
    for any volume.
    """

    __slots__ = ("name", "count", "total", "min", "max", "samples",
                 "reservoir_size", "_lock")

    def __init__(self, name: str, lock: threading.Lock, reservoir_size: int = 1024):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.samples: list[float] = []
        self.reservoir_size = reservoir_size
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self.samples) < self.reservoir_size:
                self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Approximate percentile over the reservoir (0 <= fraction <= 1)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        with self._lock:
            if not self.samples:
                return 0.0
            ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
        return ordered[index]


class MetricsRegistry:
    """Get-or-create access to named metrics; snapshot for monreport."""

    def __init__(self):
        self._lock = sanitizer.make_lock("metrics")
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory(name, self._lock)
                self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        metric = self._get(name, Counter)
        if not isinstance(metric, Counter):
            raise TypeError("%s is registered as %s" % (name, type(metric).__name__))
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get(name, Gauge)
        if not isinstance(metric, Gauge):
            raise TypeError("%s is registered as %s" % (name, type(metric).__name__))
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._get(name, Histogram)
        if not isinstance(metric, Histogram):
            raise TypeError("%s is registered as %s" % (name, type(metric).__name__))
        return metric

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """A plain-data view of every metric (the monreport payload)."""
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, object] = {}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, Gauge):
                out[name] = metric.value
            else:
                out[name] = {
                    "count": metric.count,
                    "sum": metric.total,
                    "min": metric.min,
                    "max": metric.max,
                    "mean": metric.mean,
                }
        return out
