"""Vectorised key factorisation kernels for fused group-by pipelines.

The serial engine assigns group codes with ``np.unique(return_inverse)``,
which sorts every row (``O(n log n)`` with a mergesort under the hood).
Analytical group keys are overwhelmingly *small-domain* — dictionary-coded
strings and dense surrogate ids — so these kernels factorise in ``O(n)``:

* int64 keys whose value span is comparable to the row count use a
  direct-address presence table plus a ``cumsum`` rank scan (two passes,
  both single numpy calls that release the GIL);
* object (string) keys use one dict pass over the distinct values and a
  vectorised rank gather — the dict only ever holds the (small) distinct
  set, never per-row state;
* everything else falls back to ``np.unique``.

All paths produce the same contract: NULL takes code 0 and non-NULL values
take codes ``1..k`` in ascending value order — exactly the relative order
``np.unique`` gives the serial engine, so fused group output sorts
identically to the unfused operator.
"""

from __future__ import annotations

import numpy as np

#: Direct addressing is used while the key span stays within this factor of
#: the row count (plus slack for tiny inputs); beyond it the presence table
#: would thrash cache for no win and the sort-based path takes over.
_DIRECT_SPAN_FACTOR = 4
_DIRECT_SPAN_SLACK = 1024


def factorize_int(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Dense 1-based codes for an int64 array with no NULLs.

    Returns ``(codes, uniques)``: ``codes[i]`` is the ascending rank
    (1..k) of ``values[i]`` among the distinct values, ``uniques`` the
    distinct values ascending.
    """
    lo = int(values.min())
    hi = int(values.max())
    span = hi - lo + 1
    if span <= _DIRECT_SPAN_FACTOR * values.size + _DIRECT_SPAN_SLACK:
        shifted = values - lo
        present = np.zeros(span, dtype=bool)
        present[shifted] = True
        ranks = np.cumsum(present)  # 1-based rank at each present slot
        return ranks[shifted], lo + np.flatnonzero(present)
    uniques, inverse = np.unique(values, return_inverse=True)
    return inverse.astype(np.int64) + 1, uniques


def factorize_object(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Dense 1-based codes for an object (string) array with no NULLs."""
    seen: dict = {}
    ids = np.empty(values.size, dtype=np.int64)
    for i, value in enumerate(values.tolist()):
        code = seen.get(value)
        if code is None:
            code = len(seen)
            seen[value] = code
        ids[i] = code
    ordered = sorted(seen)  # Python str order == np.unique object order
    rank = np.empty(len(ordered), dtype=np.int64)
    for r, value in enumerate(ordered):
        rank[seen[value]] = r + 1
    return rank[ids], np.array(ordered, dtype=object)


def factorize(
    values: np.ndarray, nulls: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray]:
    """Factorise one key column, reserving code 0 for NULL rows.

    Returns ``(codes, uniques)`` with ``codes`` an int64 array over all
    rows (NULL rows 0, others 1..k ascending) and ``uniques`` the distinct
    non-NULL values ascending.  Unlike the serial ``_group_ids`` this never
    ranks the garbage values sitting under NULL slots, but because both
    paths later compact codes per distinct *surviving* combination, the
    resulting group partition and sort order are identical.
    """
    n = values.shape[0]
    if nulls is not None and nulls.any():
        live = ~nulls
        live_values = values[live]
    else:
        live = None
        live_values = values
    if live_values.size == 0:
        return np.zeros(n, dtype=np.int64), values[:0]
    if values.dtype == np.int64:
        live_codes, uniques = factorize_int(live_values)
    elif values.dtype == object:
        live_codes, uniques = factorize_object(live_values)
    else:
        uniques, inverse = np.unique(live_values, return_inverse=True)
        live_codes = inverse.astype(np.int64) + 1
    if live is None:
        return live_codes, uniques
    codes = np.zeros(n, dtype=np.int64)
    codes[live] = live_codes
    return codes, uniques
