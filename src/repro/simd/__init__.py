"""Software-SIMD predicate evaluation over bit-packed codes.

Implements paper section II.B.6: predicates are applied simultaneously to
all codes packed in a 64-bit word, for any code size, using fieldwise
(SWAR) arithmetic.  The word layout (one spare bit per field) comes from
:mod:`repro.util.bitpack`.
"""

from repro.simd.factorize import factorize, factorize_int, factorize_object
from repro.simd.packed import replicate_constant, result_bit_positions
from repro.simd.predicates import (
    eval_compare,
    eval_compare_scalar,
    eval_in_ranges,
    eval_range,
)

__all__ = [
    "eval_compare",
    "eval_compare_scalar",
    "eval_in_ranges",
    "eval_range",
    "factorize",
    "factorize_int",
    "factorize_object",
    "replicate_constant",
    "result_bit_positions",
]
