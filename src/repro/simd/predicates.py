"""Predicate kernels that evaluate comparisons on packed codes.

Each kernel touches only whole 64-bit words: with ``c`` codes per word a
single numpy word operation evaluates the predicate for ``c`` values at once
(paper section II.B.6).  All comparisons treat codes as unsigned integers,
which is sufficient because both dictionary and minus encodings produce
non-negative, order-preserving codes.

The arithmetic identities (fields of ``w + 1`` bits, code ``x``, constant
``k``, result bit ``H = 2**w`` per field):

* ``x >= k``:  ``((x | H) - k_rep) & H``  — the borrow out of ``x - k`` is
  absorbed by the spare bit, which survives exactly when ``x >= k``.
* ``x <= k``:  ``((k_rep | H) - x) & H``.
* ``x == k``:  ``(H_rep - (x ^ k_rep)) & H`` — the XOR is zero only on
  equality, and only then does the subtraction leave the spare bit set.
"""

from __future__ import annotations

import operator

import numpy as np

from repro.simd.packed import extract_result_bits, high_bit_mask, replicate_constant
from repro.util.bitpack import PackedArray

_PY_OPS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _clamp(value: int, width: int) -> int | None:
    """Clamp a constant into the representable code domain.

    Returns None when the comparison is decided for all codes (caller
    handles the all-true / all-false result).
    """
    if 0 <= value < (1 << width):
        return value
    return None


def _ge_words(words: np.ndarray, k: int, width: int) -> np.ndarray:
    h = np.uint64(high_bit_mask(width))
    krep = np.uint64(replicate_constant(k, width))
    return ((words | h) - krep) & h


def _le_words(words: np.ndarray, k: int, width: int) -> np.ndarray:
    h = np.uint64(high_bit_mask(width))
    krep = np.uint64(replicate_constant(k, width))
    return ((krep | h) - words) & h


def _eq_words(words: np.ndarray, k: int, width: int) -> np.ndarray:
    h = np.uint64(high_bit_mask(width))
    krep = np.uint64(replicate_constant(k, width))
    return (h - (words ^ krep)) & h


def eval_compare(packed: PackedArray, op: str, value: int) -> np.ndarray:
    """Evaluate ``code <op> value`` over all codes, one word at a time.

    Args:
        packed: the packed code vector.
        op: one of ``=``, ``<>``, ``<``, ``<=``, ``>``, ``>=``.
        value: unsigned comparison constant (need not be representable).

    Returns:
        Boolean numpy array of length ``len(packed)``.
    """
    n, width = packed.n, packed.width
    if op not in _PY_OPS:
        raise ValueError("unknown comparison operator %r" % op)
    if n == 0:
        return np.zeros(0, dtype=bool)
    # Out-of-domain constants decide the predicate wholesale.
    if value < 0:
        verdict = op in (">", ">=", "<>")
        return np.full(n, verdict, dtype=bool)
    if value >= (1 << width):
        verdict = op in ("<", "<=", "<>")
        return np.full(n, verdict, dtype=bool)

    words = packed.words
    if op == ">=":
        bits = _ge_words(words, value, width)
    elif op == "<=":
        bits = _le_words(words, value, width)
    elif op == "=":
        bits = _eq_words(words, value, width)
    elif op == "<":
        bits = _ge_words(words, value, width)
        return ~extract_result_bits(bits, width, n)
    elif op == ">":
        bits = _le_words(words, value, width)
        return ~extract_result_bits(bits, width, n)
    else:  # <>
        bits = _eq_words(words, value, width)
        return ~extract_result_bits(bits, width, n)
    return extract_result_bits(bits, width, n)


def eval_range(packed: PackedArray, lo: int, hi: int) -> np.ndarray:
    """Evaluate ``lo <= code <= hi`` (an inclusive BETWEEN on codes)."""
    n, width = packed.n, packed.width
    if n == 0:
        return np.zeros(0, dtype=bool)
    if hi < lo or hi < 0 or lo >= (1 << width):
        return np.zeros(n, dtype=bool)
    lo = max(lo, 0)
    hi = min(hi, (1 << width) - 1)
    if lo == 0 and hi == (1 << width) - 1:
        return np.ones(n, dtype=bool)
    ge = _ge_words(packed.words, lo, width)
    le = _le_words(packed.words, hi, width)
    # Both kernels put their verdict in the same per-field result bit, so a
    # single AND combines the two range sides without unpacking.
    return extract_result_bits(ge & le, width, n)


def eval_in_ranges(packed: PackedArray, ranges) -> np.ndarray:
    """OR of several inclusive code ranges ``[(lo, hi), ...]``.

    Frequency encoding maps one value range to one code range per frequency
    partition; this evaluates the whole disjunction on compressed data.
    """
    result = np.zeros(packed.n, dtype=bool)
    for lo, hi in ranges:
        result |= eval_range(packed, lo, hi)
    return result


def eval_compare_scalar(packed: PackedArray, op: str, value: int) -> np.ndarray:
    """Reference per-value implementation (no word parallelism).

    Used in tests as ground truth and in benchmarks as the non-SIMD
    baseline the paper's technique is compared against.
    """
    py_op = _PY_OPS[op]
    out = np.empty(packed.n, dtype=bool)
    for i in range(packed.n):
        out[i] = py_op(packed.get(i), value)
    return out
