"""Word-level helpers for fieldwise (SWAR) arithmetic on packed codes.

For a code width ``w`` the packed layout uses fields of ``w + 1`` bits; the
top bit of each field (the *result bit*) is spare so that fieldwise add and
subtract never borrow across fields.  These helpers build the replicated
constants the predicate kernels need.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

_WORD_BITS = 64


@lru_cache(maxsize=None)
def _lane_geometry(width: int) -> tuple[int, int, np.ndarray]:
    """Return (field_bits, codes_per_word, lane shift vector)."""
    field = width + 1
    cpw = _WORD_BITS // field
    shifts = (np.arange(cpw, dtype=np.uint64) * np.uint64(field))
    return field, cpw, shifts


@lru_cache(maxsize=None)
def _lane_pattern(width: int) -> int:
    """Word with bit 0 of every field set (the fieldwise '1' constant)."""
    field, cpw, _ = _lane_geometry(width)
    pattern = 0
    for lane in range(cpw):
        pattern |= 1 << (lane * field)
    return pattern


@lru_cache(maxsize=None)
def high_bit_mask(width: int) -> int:
    """Word with the result (top) bit of every field set."""
    return _lane_pattern(width) << width


def replicate_constant(value: int, width: int) -> int:
    """Replicate a ``width``-bit constant into every field of a word."""
    if not 0 <= value < (1 << width):
        raise ValueError("constant %d does not fit in %d bits" % (value, width))
    return _lane_pattern(width) * value


def result_bit_positions(width: int) -> np.ndarray:
    """Bit positions of the per-field result bits, one per lane."""
    field, cpw, shifts = _lane_geometry(width)
    return shifts + np.uint64(width)


def extract_result_bits(result_words: np.ndarray, width: int, n: int) -> np.ndarray:
    """Turn per-field result bits into a boolean array of length ``n``."""
    positions = result_bit_positions(width)[None, :]
    lanes = (result_words[:, None] >> positions) & np.uint64(1)
    return lanes.reshape(-1)[:n].astype(bool)
