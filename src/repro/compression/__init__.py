"""Column compression: frequency, minus, and prefix encodings.

Implements paper section II.B.1 (compression methods) and the
order-preserving property required by II.B.2 (operating on compressed data):

* :mod:`repro.compression.dictionary` — order-preserving dictionaries.
* :mod:`repro.compression.frequency` — frequency partitions (Huffman-style
  tiers) so the most frequent values take the fewest bits.
* :mod:`repro.compression.minus` — minus (frame-of-reference) encoding for
  high-cardinality numerics.
* :mod:`repro.compression.prefix` — common-prefix elimination for strings.
* :mod:`repro.compression.codec` — per-column codec selection and the
  compressed-column container used by the storage layer.
"""

from repro.compression.codec import (
    CompressedColumn,
    DictionaryCodec,
    MinusCodec,
    compress_column,
)
from repro.compression.dictionary import OrderPreservingDictionary
from repro.compression.frequency import FrequencyEncoding
from repro.compression.minus import MinusEncoding
from repro.compression.prefix import common_prefix, prefix_compress, prefix_decompress

__all__ = [
    "CompressedColumn",
    "DictionaryCodec",
    "FrequencyEncoding",
    "MinusCodec",
    "MinusEncoding",
    "OrderPreservingDictionary",
    "common_prefix",
    "compress_column",
    "prefix_compress",
    "prefix_decompress",
]
