"""Minus (frame-of-reference) encoding for high-cardinality numerics.

Paper section II.B.1: "minus encoding methods for high cardinality
numeric".  Values are stored as unsigned offsets from a base (the minimum of
the region), which is trivially order-preserving, so all comparisons run on
codes after shifting the constant by the same base.
"""

from __future__ import annotations

import numpy as np

from repro.util.bitpack import bits_needed


class MinusEncoding:
    """Offsets-from-minimum encoding over an integer domain."""

    def __init__(self, values: np.ndarray):
        """Derive base and width from the (non-null) values of a region."""
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            self._base = 0
            self._width = 1
        else:
            self._base = int(values.min())
            spread = int(values.max()) - self._base
            self._width = bits_needed(spread)
        self._max_code = (1 << self._width) - 1

    @property
    def base(self) -> int:
        return self._base

    @property
    def code_width(self) -> int:
        return self._width

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Map values to codes (``value - base``)."""
        values = np.asarray(values, dtype=np.int64)
        codes = values - self._base
        if codes.size and (codes.min() < 0 or codes.max() > self._max_code):
            raise ValueError("value outside the encoded domain")
        return codes.astype(np.uint64)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Map codes back to values."""
        return np.asarray(codes, dtype=np.int64) + self._base

    def code_for(self, value) -> int | None:
        """Code for one value, or None when it is outside the domain."""
        code = int(value) - self._base
        if 0 <= code <= self._max_code:
            return code
        return None

    def code_ranges(self, lo, hi, *, lo_open: bool = False, hi_open: bool = False):
        """Translate a value range to (at most one) inclusive code range.

        Bounds may be non-integral (a float constant compared against an
        integer-coded column); they round to the nearest integer inside the
        interval.
        """
        import math

        code_lo = 0
        code_hi = self._max_code
        if lo is not None:
            if lo_open:
                bound = math.floor(lo) + 1  # smallest integer > lo
            else:
                bound = math.ceil(lo)  # smallest integer >= lo
            code_lo = bound - self._base
        if hi is not None:
            if hi_open:
                bound = math.ceil(hi) - 1  # largest integer < hi
            else:
                bound = math.floor(hi)  # largest integer <= hi
            code_hi = bound - self._base
        code_lo = max(code_lo, 0)
        code_hi = min(code_hi, self._max_code)
        if code_lo > code_hi:
            return []
        return [(code_lo, code_hi)]

    def nbytes(self) -> int:
        """Metadata footprint (base + width)."""
        return 16
