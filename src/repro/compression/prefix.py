"""Prefix compression for string columns.

Paper section II.B.1: "Prefix compression methods are also used to eliminate
storage for commonly occurring string prefixes."  The shared prefix of a
region is stored once; each value keeps only its suffix.  Stripping a common
prefix preserves ordering, so the result remains usable by order-preserving
dictionaries.
"""

from __future__ import annotations

import os


def common_prefix(strings) -> str:
    """Longest prefix shared by every string in the sequence."""
    strings = list(strings)
    if not strings:
        return ""
    return os.path.commonprefix([s for s in strings])


def prefix_compress(strings) -> tuple[str, list[str]]:
    """Split strings into ``(shared_prefix, suffixes)``.

    >>> prefix_compress(["ORDER_2016_01", "ORDER_2016_02"])
    ('ORDER_2016_0', ['1', '2'])
    """
    strings = list(strings)
    prefix = common_prefix(strings)
    cut = len(prefix)
    return prefix, [s[cut:] for s in strings]


def prefix_decompress(prefix: str, suffixes) -> list[str]:
    """Inverse of :func:`prefix_compress`."""
    return [prefix + s for s in suffixes]


def prefix_savings(strings) -> int:
    """Bytes saved by prefix compression over storing strings verbatim."""
    strings = list(strings)
    prefix = common_prefix(strings)
    if not strings:
        return 0
    return max(0, len(prefix) * len(strings) - len(prefix))
