"""Frequency encoding: Huffman-style partitioned dictionary codes.

Paper section II.B.1: "variations of Huffman encoding for lower cardinality
fields known as frequency encoding ... ensures that data with the highest
frequency of occurrence are encoded with the shortest representation",
and II.B.2: codes are order-preserving "within any frequency partition".

Distinct values are ranked by frequency and assigned to partitions of
geometrically growing capacity (2, 4, 16, 256, ... values).  Global codes
are dense integers ordered by ``(partition, value)``: the hottest values get
the numerically smallest codes, so storage regions that contain only hot
values need very few bits per code (down to one bit, as the paper claims),
while codes remain binary-comparable within each partition.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.util.bitpack import bits_needed

#: Default partition capacities as bit widths: partition t holds up to
#: ``2**_TIER_BITS[t]`` values.  The final width repeats as needed.
_TIER_BITS = (1, 2, 4, 8, 12, 16, 20, 24)


class FrequencyEncoding:
    """A frequency-partitioned, order-preserving dictionary for one column."""

    def __init__(self, values: np.ndarray, tier_bits: tuple[int, ...] = _TIER_BITS):
        """Build the encoding from the full column contents.

        Args:
            values: all non-null values of the column (frequencies matter).
            tier_bits: partition capacities, as bit widths per tier.
        """
        values = np.asarray(values)
        counts = Counter(values.tolist())
        ranked = [v for v, _ in counts.most_common()]
        self._partitions: list[np.ndarray] = []
        self._bases: list[int] = []
        base = 0
        tier = 0
        while ranked:
            width = tier_bits[min(tier, len(tier_bits) - 1)]
            take = min(len(ranked), 1 << width)
            members = np.asarray(sorted(ranked[:take]), dtype=values.dtype)
            ranked = ranked[take:]
            self._partitions.append(members)
            self._bases.append(base)
            base += take
            tier += 1
        self._cardinality = base
        self._width = bits_needed(max(0, base - 1))
        self._code_of = {}
        if base == 0:
            # Degenerate dictionary (a region whose rows are all NULL):
            # keep one don't-care slot so code 0 — the packed filler for
            # NULL positions — decodes without faulting.
            decode = (
                np.array([""], dtype=object)
                if values.dtype == object
                else np.zeros(1, dtype=values.dtype)
            )
        else:
            decode = np.empty(base, dtype=values.dtype if values.size else object)
        for members, pbase in zip(self._partitions, self._bases):
            for rank, value in enumerate(members.tolist()):
                code = pbase + rank
                self._code_of[value] = code
                decode[code] = value
        self._decode = decode

    @property
    def cardinality(self) -> int:
        return self._cardinality

    @property
    def code_width(self) -> int:
        """Bits needed for the widest (coldest) code."""
        return self._width

    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    def partition_of(self, code: int) -> int:
        """Index of the frequency partition a code belongs to."""
        for p in range(len(self._bases) - 1, -1, -1):
            if code >= self._bases[p]:
                return p
        raise ValueError("negative code")

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Map values to global codes (KeyError on unknown values)."""
        values = np.asarray(values)
        out = np.empty(values.size, dtype=np.uint64)
        code_of = self._code_of
        for i, v in enumerate(values.reshape(-1).tolist()):
            out[i] = code_of[v]
        return out

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Map global codes back to values."""
        return self._decode[np.asarray(codes, dtype=np.int64)]

    def code_for(self, value) -> int | None:
        """Global code for one value, or None if the value is unknown."""
        return self._code_of.get(value)

    def code_ranges(self, lo, hi, *, lo_open: bool = False, hi_open: bool = False):
        """Translate a value range into per-partition code ranges.

        Because codes are order-preserving only within a partition, a value
        interval maps to at most one inclusive code range per partition.
        The returned list of ``(code_lo, code_hi)`` pairs is what the
        software-SIMD kernel evaluates directly on compressed data.
        """
        ranges = []
        for members, base in zip(self._partitions, self._bases):
            first = 0
            last = members.size - 1
            if lo is not None:
                side = "right" if lo_open else "left"
                first = int(np.searchsorted(members, lo, side=side))
            if hi is not None:
                side = "left" if hi_open else "right"
                last = int(np.searchsorted(members, hi, side=side)) - 1
            if first <= last:
                ranges.append((base + first, base + last))
        return ranges

    def expected_bits_per_value(self, values: np.ndarray) -> float:
        """Average storage bits per value under page-local widths.

        Approximates the benefit of frequency partitioning: a value in
        partition ``p`` costs ``bits_needed(base_p + size_p - 1)`` bits when
        its page contains only partitions ``<= p``.
        """
        values = np.asarray(values)
        if values.size == 0:
            return 0.0
        total = 0
        for v in values.reshape(-1).tolist():
            code = self._code_of[v]
            total += bits_needed(code)
        return total / values.size

    def nbytes(self) -> int:
        """Approximate size of the dictionary structures."""
        if self._decode.dtype == object:
            return sum(len(str(v)) for v in self._decode) + 8 * self._cardinality
        return int(self._decode.nbytes)
