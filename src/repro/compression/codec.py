"""Per-column codec selection and the compressed-column container.

``compress_column`` inspects a region's values and picks the best encoding
(paper section II.B.1: "Compression is then optimized globally per column as
well as locally per storage page"):

* low-cardinality domains (and all strings) -> frequency-partitioned
  dictionary (:class:`DictionaryCodec`);
* high-cardinality integers (ids, scaled decimals, dates) -> minus encoding
  (:class:`MinusCodec`);
* high-cardinality floating point -> uncompressed (:class:`RawCodec`).

The resulting :class:`CompressedColumn` is the unit the query engine scans:
its ``eval_*`` methods evaluate predicates **without decoding**, using the
software-SIMD kernels of :mod:`repro.simd.predicates`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.frequency import FrequencyEncoding
from repro.compression.minus import MinusEncoding
from repro.compression.prefix import prefix_savings
from repro.simd.predicates import eval_compare, eval_in_ranges
from repro.util.bitpack import PackedArray, pack_codes, unpack_codes

#: Above this many distinct values a numeric column switches to minus/raw.
DICTIONARY_CARDINALITY_LIMIT = 1 << 16

_NEGATED = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


class DictionaryCodec:
    """Frequency-partitioned dictionary codec (strings and low-card values)."""

    name = "dictionary"

    def __init__(self, values: np.ndarray):
        self.encoding = FrequencyEncoding(values)
        self._prefix_saved = 0
        if values.dtype == object and values.size:
            self._prefix_saved = prefix_savings(
                [s for s in values.tolist() if isinstance(s, str)]
            )

    @property
    def code_width(self) -> int:
        return self.encoding.code_width

    def encode(self, values: np.ndarray) -> np.ndarray:
        return self.encoding.encode(values)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        return self.encoding.decode(codes)

    def code_for(self, value):
        return self.encoding.code_for(value)

    def code_ranges(self, lo, hi, *, lo_open=False, hi_open=False):
        return self.encoding.code_ranges(lo, hi, lo_open=lo_open, hi_open=hi_open)

    def nbytes(self) -> int:
        return max(0, self.encoding.nbytes() - self._prefix_saved)


class MinusCodec:
    """Minus (frame-of-reference) codec for high-cardinality integers."""

    name = "minus"

    def __init__(self, values: np.ndarray):
        self.encoding = MinusEncoding(values)

    @property
    def code_width(self) -> int:
        return self.encoding.code_width

    def encode(self, values: np.ndarray) -> np.ndarray:
        return self.encoding.encode(values)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        return self.encoding.decode(codes)

    def code_for(self, value):
        return self.encoding.code_for(value)

    def code_ranges(self, lo, hi, *, lo_open=False, hi_open=False):
        return self.encoding.code_ranges(lo, hi, lo_open=lo_open, hi_open=hi_open)

    def nbytes(self) -> int:
        return self.encoding.nbytes()


class RawCodec:
    """No compression (high-cardinality floating point)."""

    name = "raw"
    code_width = 64

    def nbytes(self) -> int:
        return 0


@dataclass
class CompressedColumn:
    """One column region in its compressed, scannable form.

    Exactly one of ``packed`` (dictionary / minus codecs) or ``raw``
    (RawCodec) is set.  ``nulls`` is a boolean mask (True = NULL) or None
    when the region has no NULLs.
    """

    codec: object
    n: int
    packed: PackedArray | None = None
    raw: np.ndarray | None = None
    nulls: np.ndarray | None = None

    # -- lifecycle ---------------------------------------------------------

    def decode(self) -> tuple[np.ndarray, np.ndarray | None]:
        """Materialise ``(values, nulls)``; NULL slots hold a filler value."""
        if self.raw is not None:
            return self.raw, self.nulls
        codes = unpack_codes(self.packed)
        return self.codec.decode(codes), self.nulls

    def nbytes(self) -> int:
        """Physical footprint: packed words + codec metadata + null bitmap."""
        size = self.codec.nbytes()
        if self.packed is not None:
            size += self.packed.nbytes()
        if self.raw is not None:
            size += int(self.raw.nbytes)
        if self.nulls is not None:
            size += (self.n + 7) // 8
        return size

    def slice_rows(self, row_lo: int, row_hi: int) -> tuple["CompressedColumn", int]:
        """A view over ``[row_lo, row_hi)`` aligned down to word boundaries.

        Returns ``(column_slice, aligned_lo)``: the slice starts at
        ``aligned_lo <= row_lo`` so packed words need no re-shifting.  Used
        by data skipping to evaluate predicates only on surviving extents.
        """
        if self.raw is not None:
            lo = max(0, row_lo)
            hi = min(self.n, row_hi)
            nulls = self.nulls[lo:hi] if self.nulls is not None else None
            return (
                CompressedColumn(codec=self.codec, n=hi - lo, raw=self.raw[lo:hi], nulls=nulls),
                lo,
            )
        cpw = self.packed.codes_per_word
        word_lo = max(0, row_lo) // cpw
        word_hi = -(-min(self.n, row_hi) // cpw)
        aligned_lo = word_lo * cpw
        n = min(self.n, word_hi * cpw) - aligned_lo
        from repro.util.bitpack import PackedArray

        packed = PackedArray(
            words=self.packed.words[word_lo:word_hi], n=n, width=self.packed.width
        )
        nulls = (
            self.nulls[aligned_lo : aligned_lo + n] if self.nulls is not None else None
        )
        return CompressedColumn(codec=self.codec, n=n, packed=packed, nulls=nulls), aligned_lo

    # -- predicate evaluation on compressed data ---------------------------

    def _not_null(self) -> np.ndarray | None:
        if self.nulls is None:
            return None
        return ~self.nulls

    def _mask_nulls(self, result: np.ndarray) -> np.ndarray:
        not_null = self._not_null()
        if not_null is not None:
            result &= not_null
        return result

    def eval_compare(self, op: str, value) -> np.ndarray:
        """``column <op> value`` with SQL NULL semantics (NULL -> False)."""
        if value is None:
            return np.zeros(self.n, dtype=bool)
        if self.raw is not None:
            return self._mask_nulls(_raw_compare(self.raw, op, value))
        code = self.codec.code_for(value)
        if op == "=":
            if code is None:
                return np.zeros(self.n, dtype=bool)
            return self._mask_nulls(eval_compare(self.packed, "=", code))
        if op == "<>":
            if code is None:
                result = np.ones(self.n, dtype=bool)
            else:
                result = eval_compare(self.packed, "<>", code)
            return self._mask_nulls(result)
        lo, hi, lo_open, hi_open = _interval_for(op, value)
        ranges = self.codec.code_ranges(lo, hi, lo_open=lo_open, hi_open=hi_open)
        return self._mask_nulls(eval_in_ranges(self.packed, ranges))

    def eval_between(self, lo, hi) -> np.ndarray:
        """``column BETWEEN lo AND hi`` on compressed data."""
        if lo is None or hi is None:
            return np.zeros(self.n, dtype=bool)
        if self.raw is not None:
            result = (self.raw >= lo) & (self.raw <= hi)
            return self._mask_nulls(result)
        ranges = self.codec.code_ranges(lo, hi)
        return self._mask_nulls(eval_in_ranges(self.packed, ranges))

    def eval_in(self, values) -> np.ndarray:
        """``column IN (values...)`` on compressed data."""
        if self.raw is not None:
            result = np.isin(self.raw, [v for v in values if v is not None])
            return self._mask_nulls(result)
        codes = sorted(
            c for c in (self.codec.code_for(v) for v in values if v is not None)
            if c is not None
        )
        ranges = _codes_to_ranges(codes)
        return self._mask_nulls(eval_in_ranges(self.packed, ranges))

    def eval_is_null(self) -> np.ndarray:
        if self.nulls is None:
            return np.zeros(self.n, dtype=bool)
        return self.nulls.copy()

    def eval_is_not_null(self) -> np.ndarray:
        return ~self.eval_is_null()


def _interval_for(op: str, value):
    """Map a comparison to a half-open/closed value interval."""
    if op == "<":
        return None, value, False, True
    if op == "<=":
        return None, value, False, False
    if op == ">":
        return value, None, True, False
    if op == ">=":
        return value, None, False, False
    raise ValueError("unexpected operator %r" % op)


def _raw_compare(raw: np.ndarray, op: str, value) -> np.ndarray:
    if op == "=":
        return raw == value
    if op == "<>":
        return raw != value
    if op == "<":
        return raw < value
    if op == "<=":
        return raw <= value
    if op == ">":
        return raw > value
    return raw >= value


def _codes_to_ranges(codes: list[int]) -> list[tuple[int, int]]:
    """Coalesce sorted codes into maximal inclusive ranges."""
    ranges: list[tuple[int, int]] = []
    for code in codes:
        if ranges and code == ranges[-1][1] + 1:
            ranges[-1] = (ranges[-1][0], code)
        elif ranges and code == ranges[-1][1]:
            continue
        else:
            ranges.append((code, code))
    return ranges


def compress_column(
    values: np.ndarray,
    nulls: np.ndarray | None = None,
    *,
    force: str | None = None,
) -> CompressedColumn:
    """Compress one column region, choosing the best codec.

    Args:
        values: physical values (int64 for numeric/temporal kinds, object
            for strings); NULL slots may hold any filler.
        nulls: optional boolean mask, True where the row is NULL.
        force: override codec choice ("dictionary", "minus", "raw") — used
            by tests and ablation benchmarks.

    Returns:
        A scannable :class:`CompressedColumn`.
    """
    values = np.asarray(values)
    n = values.size
    if nulls is not None:
        nulls = np.asarray(nulls, dtype=bool)
        if nulls.size != n:
            raise ValueError("null mask length mismatch")
        if not nulls.any():
            nulls = None
    live = values if nulls is None else values[~nulls]
    choice = force or _choose(values, live)
    if choice == "raw":
        raw = np.asarray(values, dtype=np.float64)
        return CompressedColumn(codec=RawCodec(), n=n, raw=raw, nulls=nulls)
    if choice == "minus":
        codec = MinusCodec(live)
    else:
        codec = DictionaryCodec(live)
    # Only live slots pass through the codec (NULL slots may hold fillers
    # the dictionary never saw — e.g. an all-NULL region); they pack as
    # code 0, a don't-care the null mask hides.
    if nulls is None:
        codes = codec.encode(values)
    else:
        codes = np.zeros(n, dtype=np.uint64)
        codes[~nulls] = codec.encode(live)
    packed = pack_codes(codes, codec.code_width)
    return CompressedColumn(codec=codec, n=n, packed=packed, nulls=nulls)


def _choose(values: np.ndarray, live: np.ndarray) -> str:
    if values.dtype == object:
        return "dictionary"
    if np.issubdtype(values.dtype, np.floating):
        distinct = np.unique(live)
        if distinct.size <= DICTIONARY_CARDINALITY_LIMIT:
            return "dictionary"
        return "raw"
    # Integer domains: prefer a dictionary when it is both small and
    # narrower than the minus spread; otherwise minus always applies.
    if live.size == 0:
        return "minus"
    distinct = np.unique(live)
    if distinct.size <= DICTIONARY_CARDINALITY_LIMIT:
        from repro.util.bitpack import bits_needed

        dict_bits = bits_needed(max(0, distinct.size - 1))
        spread = int(live.max()) - int(live.min())
        if dict_bits < bits_needed(spread):
            return "dictionary"
    return "minus"
