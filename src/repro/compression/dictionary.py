"""Order-preserving dictionary encoding.

The simplest of the paper's encodings: distinct values are sorted and codes
assigned in value order, so ``code(a) < code(b)  <=>  a < b``.  Equality and
range predicates can then be evaluated directly on codes without decoding
(paper section II.B.2).  :mod:`repro.compression.frequency` builds the
frequency-partitioned variant on top of this.
"""

from __future__ import annotations

import numpy as np

from repro.util.bitpack import bits_needed


class OrderPreservingDictionary:
    """A global, order-preserving code assignment for one column.

    Codes are dense integers ``0 .. cardinality-1`` assigned in sorted value
    order.  Works for any value domain numpy can sort (ints, floats, strings
    via object arrays).
    """

    def __init__(self, values: np.ndarray):
        """Build from the distinct values of a column (order irrelevant)."""
        distinct = np.unique(np.asarray(values))
        self._values = distinct
        self._width = bits_needed(max(0, distinct.size - 1))
        if distinct.dtype == object:
            self._index = {v: i for i, v in enumerate(distinct)}
        else:
            self._index = None

    @property
    def cardinality(self) -> int:
        return int(self._values.size)

    @property
    def code_width(self) -> int:
        """Bits needed for any code."""
        return self._width

    @property
    def values(self) -> np.ndarray:
        """Distinct values in code order (ascending value order)."""
        return self._values

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Map values to their codes.

        Raises:
            KeyError: if a value is not in the dictionary.
        """
        values = np.asarray(values)
        if self._index is not None:
            out = np.empty(values.size, dtype=np.uint64)
            for i, v in enumerate(values.reshape(-1)):
                out[i] = self._index[v]
            return out
        codes = np.searchsorted(self._values, values)
        codes = np.minimum(codes, max(0, self._values.size - 1))
        if values.size and not np.array_equal(self._values[codes], values):
            bad = values[self._values[codes] != values]
            raise KeyError("value %r not in dictionary" % (bad.reshape(-1)[0],))
        return codes.astype(np.uint64)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Map codes back to values."""
        return self._values[np.asarray(codes, dtype=np.int64)]

    def code_for(self, value) -> int | None:
        """Code for one value, or None if absent (used by predicates)."""
        if self._index is not None:
            return self._index.get(value)
        pos = int(np.searchsorted(self._values, value))
        if pos < self._values.size and self._values[pos] == value:
            return pos
        return None

    def code_range(self, lo, hi, *, lo_open: bool = False, hi_open: bool = False):
        """Translate a value range into a code range, or None if empty.

        Returns an inclusive ``(code_lo, code_hi)`` pair covering exactly the
        dictionary values within the value interval.  Open bounds exclude the
        endpoint.  ``lo``/``hi`` of ``None`` mean unbounded.
        """
        n = self._values.size
        if n == 0:
            return None
        code_lo = 0
        code_hi = n - 1
        if lo is not None:
            side = "right" if lo_open else "left"
            code_lo = int(np.searchsorted(self._values, lo, side=side))
        if hi is not None:
            side = "left" if hi_open else "right"
            code_hi = int(np.searchsorted(self._values, hi, side=side)) - 1
        if code_lo > code_hi:
            return None
        return code_lo, code_hi

    def nbytes(self) -> int:
        """Approximate size of the dictionary itself."""
        if self._values.dtype == object:
            return sum(len(str(v)) for v in self._values) + 8 * self._values.size
        return int(self._values.nbytes)
