"""The integrated dashDB Local product facade.

What a user gets after ``docker run``: the SQL warehouse engine, automatic
hardware adaptation, the integrated Spark environment with its per-user
dispatcher and stored procedures, in-database analytics, geospatial SQL,
and federation — assembled and ready (paper II.D.1: "the system is
operational out of the box").
"""

from __future__ import annotations

import repro.geospatial.functions  # noqa: F401  (installs ST_* into SQL)
from repro.analytics.idax import IdaDataFrame
from repro.cluster.autoconfig import InstanceConfig, auto_configure
from repro.cluster.hardware import HARDWARE_PRESETS, HardwareSpec
from repro.database.database import Database
from repro.database.session import Session
from repro.federation.connectors import RemoteStore
from repro.federation.nickname import add_nickname
from repro.spark.dispatcher import SparkDispatcher
from repro.spark.integration import DashDBSparkContext
from repro.spark.procedures import SparkAppRegistry, install_spark_procedures
from repro.util.timer import SimClock


class DashDBLocal:
    """A single-node dashDB Local instance: SQL + Spark + analytics.

    Args:
        hardware: the host's hardware (a preset name or a
            :class:`HardwareSpec`); drives automatic configuration.
        compatibility: "oracle" selects the Oracle-compatibility image.
        clock: optional simulated clock for deterministic time functions.

    Example:
        >>> dash = DashDBLocal(hardware="laptop")
        >>> session = dash.connect()
        >>> session.execute("CREATE TABLE t (a INT)").message
        'table T created'
    """

    def __init__(
        self,
        hardware: str | HardwareSpec = "laptop",
        compatibility: str | None = None,
        clock: SimClock | None = None,
    ):
        if isinstance(hardware, str):
            hardware = HARDWARE_PRESETS[hardware]
        self.hardware = hardware
        #: Automatic adaptation to the host (paper II.A).
        self.config: InstanceConfig = auto_configure(hardware)
        self.database = Database(
            compatibility=compatibility,
            bufferpool_pages=min(self.config.bufferpool_pages, 65_536),
            clock=clock,
        )
        #: The integrated Spark environment (paper II.D).
        self.spark_dispatcher = SparkDispatcher(
            total_memory_bytes=self.config.instance_memory_bytes
            - self.config.bufferpool_bytes,
            default_parallelism=max(2, hardware.cores // 2),
        )
        self.spark_apps = SparkAppRegistry()
        install_spark_procedures(self.database, self.spark_dispatcher, self.spark_apps)

    # -- SQL ------------------------------------------------------------------

    def connect(self, dialect: str | None = None) -> Session:
        """Open a SQL session (the JDBC/ODBC entry point)."""
        return self.database.connect(dialect)

    # -- Spark ----------------------------------------------------------------

    def submit_spark(self, user: str, app_name: str, main_fn):
        """Submit a Spark application (the spark_submit / REST path)."""
        return self.spark_dispatcher.submit(user, app_name, main_fn)

    def deploy_spark_app(self, name: str, main_fn) -> None:
        """One-click deployment of a notebook-derived application."""
        self.spark_apps.deploy(name, main_fn)

    # -- analytics ---------------------------------------------------------------

    def ida(self, table_name: str, dialect: str | None = None) -> IdaDataFrame:
        """The R/Python in-database analytics API (paper II.C.4)."""
        return IdaDataFrame(self.connect(dialect), table_name)

    # -- federation ----------------------------------------------------------------

    def add_nickname(self, nickname: str, store: RemoteStore, remote_table: str):
        """Fluid Query: expose a remote table under a local name (II.C.6)."""
        return add_nickname(self.database, nickname, store, remote_table)

    # -- introspection ----------------------------------------------------------------

    def configuration_summary(self) -> str:
        return self.config.explain()
