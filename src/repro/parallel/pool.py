"""The shared worker pool behind morsel-driven parallel execution.

The paper's engine "runs as fast as the hardware allows" through intra-query
parallelism: scans, joins, aggregates, MPP shard scatter, and Spark stages
all split their work into independent tasks and run them on a bounded set of
workers.  One :class:`WorkerPool` provides that substrate for every layer:

* **deterministic gather** — :meth:`WorkerPool.map` always returns results
  in submission order, whatever order workers finish in, so parallel plans
  produce exactly the rows a serial plan would;
* **serial equivalence** — with ``parallelism=1`` (the default unless
  ``REPRO_PARALLELISM`` or the caller says otherwise) tasks run inline on
  the calling thread: byte-for-byte the pre-pool execution path, with no
  executor, no extra threads, and no scheduling jitter;
* **sim-clock awareness** — each run records per-task spans measured in
  *thread CPU seconds* (wall time is kept alongside), so contention on an
  oversubscribed host cannot inflate the model; the simulated cost of a
  parallel phase is the *makespan* of those spans over the configured
  workers (max of worker busy times), never their sum.  Callers that own a
  :class:`~repro.util.timer.SimClock` charge ``run.makespan_seconds``
  instead of ``run.total_seconds``;
* **observability** — when wired to a
  :class:`~repro.monitor.metrics.MetricsRegistry` the pool maintains
  ``parallel.*`` counters/gauges, and every :class:`PoolRun` exposes
  per-worker busy seconds for EXPLAIN ANALYZE and MONREPORT.
"""

from __future__ import annotations

import contextlib
import heapq
import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.verify import sanitizer

_NULL_SPAN = contextlib.nullcontext()

#: Environment override for the default degree of parallelism.
PARALLELISM_ENV_VAR = "REPRO_PARALLELISM"

#: Environment override for the pool execution backend.
POOL_BACKEND_ENV_VAR = "REPRO_POOL_BACKEND"

#: Supported execution backends.
POOL_BACKENDS = ("thread", "process")


def default_backend() -> str:
    """Resolve the pool backend: ``REPRO_POOL_BACKEND``, else threads."""
    env = os.environ.get(POOL_BACKEND_ENV_VAR)
    if not env:
        return "thread"
    backend = env.strip().lower()
    if backend not in POOL_BACKENDS:
        raise ValueError(
            "%s must be one of %s, got %r"
            % (POOL_BACKEND_ENV_VAR, "/".join(POOL_BACKENDS), env)
        )
    return backend


def default_parallelism(cores: int | None = None) -> int:
    """Resolve the default degree of parallelism (DOP).

    Priority: the ``REPRO_PARALLELISM`` environment variable, then the
    detected ``cores`` the caller passes (auto-configuration), then 1 —
    serial execution is always the safe default.
    """
    env = os.environ.get(PARALLELISM_ENV_VAR)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                "%s must be an integer, got %r" % (PARALLELISM_ENV_VAR, env)
            ) from None
    if cores is not None:
        return max(1, int(cores))
    return 1


def greedy_makespan(durations, workers: int) -> float:
    """Simulated elapsed time for ``durations`` on ``workers`` workers.

    Tasks are assigned in submission order to the earliest-free worker (the
    list-scheduling model of a morsel queue).  ``workers=1`` degenerates to
    ``sum``; ``workers>=len(durations)`` to ``max``.  Deterministic, and
    within 2x of the optimal makespan (Graham's bound), which is accurate
    enough for a cost model.
    """
    durations = list(durations)
    if not durations:
        return 0.0
    workers = max(1, int(workers))
    if workers == 1:
        return float(sum(durations))
    loads = [0.0] * min(workers, len(durations))
    heapq.heapify(loads)
    for d in durations:
        heapq.heappush(loads, heapq.heappop(loads) + float(d))
    return max(loads)


@dataclass
class TaskSpan:
    """One task's execution record inside a pool run.

    ``seconds`` is the charged duration: the task's thread-CPU time (with a
    wall-clock fallback when the CPU clock is too coarse to register).  CPU
    time is what a simulator must charge — on an oversubscribed host the
    wall span of a concurrent task silently includes scheduler/GIL waits,
    which would make parallel makespans look as slow as serial sums.
    ``wall_seconds`` keeps the raw wall measurement for reporting.
    """

    index: int          # submission index (== gather position)
    worker: int         # dense worker id within the run (0-based)
    seconds: float      # charged duration (thread CPU seconds)
    wall_seconds: float = 0.0
    label: str | None = None


@dataclass
class PoolRun:
    """Accounting for one :meth:`WorkerPool.map` invocation."""

    parallelism: int
    spans: list[TaskSpan] = field(default_factory=list)
    inline: bool = False  # ran serially on the calling thread
    label: str | None = None
    backend: str = "thread"  # executor that ran the tasks

    @property
    def tasks(self) -> int:
        return len(self.spans)

    @property
    def total_seconds(self) -> float:
        """Sum of task spans — the serial-equivalent cost."""
        return sum(s.seconds for s in self.spans)

    @property
    def makespan_seconds(self) -> float:
        """Simulated parallel elapsed time: max of worker spans, not sum."""
        return greedy_makespan(
            (s.seconds for s in self.spans), self.parallelism
        )

    def worker_busy(self) -> dict[int, float]:
        """Measured busy seconds per worker (dense ids, gather order)."""
        busy: dict[int, float] = {}
        for span in self.spans:
            busy[span.worker] = busy.get(span.worker, 0.0) + span.seconds
        return dict(sorted(busy.items()))

    def utilisation(self) -> float:
        """Mean worker busy fraction over the run's makespan (0..1)."""
        makespan = self.makespan_seconds
        if makespan <= 0.0:
            return 1.0
        return self.total_seconds / (makespan * max(1, self.parallelism))


def _process_invoke(fn, index, item):
    """Task trampoline executed inside a pool worker process.

    Measures the task's CPU and wall time in the child and ships them back
    with the worker's pid, so the parent can build :class:`TaskSpan` records
    identical in shape to the thread backend's.
    """
    w0 = time.perf_counter()
    c0 = time.thread_time()
    value = fn(item)
    cpu = time.thread_time() - c0
    wall = time.perf_counter() - w0
    if cpu <= 0.0:
        cpu = wall
    return value, index, cpu, wall, os.getpid()


class WorkerPool:
    """A fixed-width worker pool shared by one engine (or one cluster).

    Args:
        parallelism: worker count; ``None`` resolves via
            :func:`default_parallelism` (env var, else serial).
        clock: optional :class:`~repro.util.timer.SimClock`; kept so owners
            can call :meth:`charge_clock` after a run.
        metrics: optional :class:`~repro.monitor.metrics.MetricsRegistry`
            fed with ``parallel.*`` counters.
        name: label used in metric names and thread names.
        backend: ``"thread"`` (default) or ``"process"``; ``None`` resolves
            via :func:`default_backend` (the ``REPRO_POOL_BACKEND`` env
            var).  The process backend ships tasks to worker processes and
            falls back to threads per-run when a kernel is not picklable,
            when the sanitizer needs in-process instrumentation, or when
            the model checker owns the schedule.
    """

    def __init__(self, parallelism: int | None = None, clock=None,
                 metrics=None, name: str = "pool", backend: str | None = None):
        self.parallelism = max(
            1,
            parallelism if parallelism is not None else default_parallelism(),
        )
        self.backend = backend if backend is not None else default_backend()
        if self.backend not in POOL_BACKENDS:
            raise ValueError(
                "backend must be one of %s, got %r"
                % ("/".join(POOL_BACKENDS), backend)
            )
        self.clock = clock
        self.name = name
        self.metrics = metrics
        #: ``last_run`` is *thread-local*: concurrent sessions each read the
        #: run their own ``map()`` just produced, so a plain attribute would
        #: be a write-write race between session threads (found by the
        #: lockset sanitizer; every consumer reads it on the calling thread
        #: immediately after ``map()`` returns, so TLS preserves the API).
        self._tls = threading.local()
        #: Lifetime accumulators (monitor/report + benchmark surfaces).
        self.runs_total = 0
        self.tasks_total = 0
        self.busy_seconds_total = 0.0      # serial-equivalent cost
        self.makespan_seconds_total = 0.0  # simulated parallel cost
        self.process_fallbacks_total = 0   # process-backend runs demoted to threads
        self.process_runs_total = 0        # runs that executed in worker processes
        self._executor: ThreadPoolExecutor | None = None
        self._process_executor: ProcessPoolExecutor | None = None
        self._executor_lock = sanitizer.make_lock("pool:%s:executor" % name)
        self._stats_lock = sanitizer.make_lock("pool:%s:stats" % name)

    @property
    def last_run(self) -> PoolRun | None:
        """The most recent run *on this thread* (None before the first)."""
        return getattr(self._tls, "last_run", None)

    @last_run.setter
    def last_run(self, run: PoolRun | None) -> None:
        self._tls.last_run = run

    @property
    def is_parallel(self) -> bool:
        return self.parallelism > 1

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.parallelism,
                    thread_name_prefix="repro-%s" % self.name,
                )
            return self._executor

    def _ensure_process_executor(self) -> ProcessPoolExecutor:
        with self._executor_lock:
            if self._process_executor is None:
                try:
                    context = multiprocessing.get_context("fork")
                except ValueError:  # platform without fork: spawn workers
                    context = multiprocessing.get_context("spawn")
                self._process_executor = ProcessPoolExecutor(
                    max_workers=self.parallelism, mp_context=context
                )
            return self._process_executor

    def _reset_process_executor(self) -> None:
        """Discard a broken process executor so later runs get fresh workers."""
        with self._executor_lock:
            executor, self._process_executor = self._process_executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
            if self._process_executor is not None:
                self._process_executor.shutdown(wait=True)
                self._process_executor = None

    # -- execution -------------------------------------------------------------

    def map(self, fn, items, label: str | None = None) -> list:
        """Run ``fn`` over ``items``; results gather in submission order.

        With ``parallelism=1`` (or fewer than two items) the tasks run
        inline on the calling thread in submission order — the exact serial
        code path.  Otherwise tasks run on the executor and the first
        failing task's exception (in submission order) propagates after all
        futures settle, so error behaviour is deterministic too.
        """
        items = list(items)
        if not self.is_parallel or len(items) <= 1:
            return self._map_inline(fn, items, label)
        hook = sanitizer.mc_hook()
        if hook is not None and hook.governs_current_thread():
            # Under the model checker, tasks become model threads so the
            # checker explores morsel interleavings too (no real executor).
            return self._map_modelled(hook, fn, items, label)
        if self.backend == "process" and not sanitizer.ENABLED:
            # The sanitizer's lockset/span instrumentation lives in this
            # process; with it enabled the thread backend keeps races
            # observable, so process dispatch is reserved for clean runs.
            if self._picklable(fn):
                return self._map_process(fn, items, label)
            self._note_process_fallback()
        executor = self._ensure_executor()
        worker_ids: dict[int, int] = {}
        # lint-ok: raw-lock (per-invocation lock guarding only this call's local worker_ids dict; never shared beyond the run, so lockset tracking would be noise)
        ids_lock = threading.Lock()

        def task(index, item):
            span = (
                sanitizer.task_span(label or self.name)
                if sanitizer.ENABLED
                else _NULL_SPAN
            )
            with span:
                w0 = time.perf_counter()
                c0 = time.thread_time()
                value = fn(item)
                cpu = time.thread_time() - c0
                wall = time.perf_counter() - w0
            if cpu <= 0.0:  # coarse CPU clock: fall back to wall
                cpu = wall
            ident = threading.get_ident()
            with ids_lock:
                worker = worker_ids.setdefault(ident, len(worker_ids))
            return value, TaskSpan(index, worker, cpu, wall, label)

        futures = [executor.submit(task, i, item) for i, item in enumerate(items)]
        results: list = [None] * len(items)
        spans: list[TaskSpan | None] = [None] * len(items)
        first_error: BaseException | None = None
        for i, future in enumerate(futures):
            try:
                value, span = future.result()
            except BaseException as exc:  # lint-ok: broad-except (not a swallow: the first failure, in submission order, re-raises after every future settles — deterministic error behaviour)
                if first_error is None:
                    first_error = exc
                continue
            results[i] = value
            spans[i] = span
        run = PoolRun(
            parallelism=self.parallelism,
            spans=[s for s in spans if s is not None],
            inline=False,
            label=label,
        )
        self.last_run = run
        self._note_metrics(run)
        if first_error is not None:
            raise first_error
        return results

    @staticmethod
    def _picklable(fn) -> bool:
        """Whether ``fn`` can cross a process boundary.

        Closures and bound methods of non-picklable objects (operators
        holding locks, bufferpools, executors) fail here and demote the run
        to the thread backend.
        """
        try:
            pickle.dumps(fn)
        except Exception:  # lint-ok: broad-except (any pickling failure means thread fallback, never an error)
            return False
        return True

    def _note_process_fallback(self) -> None:
        with self._stats_lock:
            self.process_fallbacks_total += 1
        if self.metrics is not None:
            self.metrics.counter("parallel.process_fallbacks").inc()

    def _map_process(self, fn, items, label) -> list:
        """``map()`` on the process executor.

        Task payloads pickle into worker processes; per-task CPU/wall times
        are measured in the child and gathered in submission order, exactly
        like the thread backend.  A crashed worker breaks the executor —
        that surfaces as a deterministic query error (not a hang) and the
        executor is discarded so the pool stays usable.
        """
        executor = self._ensure_process_executor()
        futures = [
            executor.submit(_process_invoke, fn, i, item)
            for i, item in enumerate(items)
        ]
        worker_ids: dict[int, int] = {}
        results: list = [None] * len(items)
        spans: list[TaskSpan | None] = [None] * len(items)
        first_error: BaseException | None = None
        broken = False
        for i, future in enumerate(futures):
            try:
                value, index, cpu, wall, pid = future.result()
            except BrokenProcessPool:
                broken = True
                if first_error is None:
                    first_error = RuntimeError(
                        "parallel task %d (%s) lost: a %s pool worker "
                        "process crashed" % (i, label or self.name, self.name)
                    )
                continue
            except BaseException as exc:  # lint-ok: broad-except (not a swallow: the first failure, in submission order, re-raises after every future settles — deterministic error behaviour)
                if first_error is None:
                    first_error = exc
                continue
            worker = worker_ids.setdefault(pid, len(worker_ids))
            results[i] = value
            spans[i] = TaskSpan(index, worker, cpu, wall, label)
        if broken:
            self._reset_process_executor()
        run = PoolRun(
            parallelism=self.parallelism,
            spans=[s for s in spans if s is not None],
            inline=False,
            label=label,
            backend="process",
        )
        self.last_run = run
        self._note_metrics(run)
        if first_error is not None:
            raise first_error
        return results

    def _map_modelled(self, hook, fn, items, label) -> list:
        """``map()`` with the model checker owning the schedule: each task
        runs as a model thread, the calling thread joins, and gather order
        / first-error semantics match the executor path."""

        def task(pair):
            index, item = pair
            w0 = time.perf_counter()
            c0 = time.thread_time()
            value = fn(item)
            cpu = time.thread_time() - c0
            wall = time.perf_counter() - w0
            if cpu <= 0.0:
                cpu = wall
            return value, TaskSpan(index, index, cpu, wall, label)

        pairs = hook.run_pool_tasks(
            self, task, list(enumerate(items)), label or self.name
        )
        run = PoolRun(
            parallelism=self.parallelism,
            spans=[span for _, span in pairs],
            inline=False,
            label=label,
        )
        self.last_run = run
        self._note_metrics(run)
        return [value for value, _ in pairs]

    def _map_inline(self, fn, items, label) -> list:
        results = []
        spans = []
        for i, item in enumerate(items):
            w0 = time.perf_counter()
            c0 = time.thread_time()
            results.append(fn(item))
            cpu = time.thread_time() - c0
            wall = time.perf_counter() - w0
            if cpu <= 0.0:
                cpu = wall
            spans.append(TaskSpan(i, 0, cpu, wall, label))
        run = PoolRun(
            parallelism=self.parallelism, spans=spans, inline=True, label=label
        )
        self.last_run = run
        self._note_metrics(run)
        return results

    # -- sim clock / metrics ----------------------------------------------------

    def charge_clock(self, run: PoolRun | None = None) -> float:
        """Advance the sim clock by the run's makespan (max of worker
        spans, never their sum).  Returns the seconds charged."""
        run = run or self.last_run
        if run is None:
            return 0.0
        seconds = run.makespan_seconds
        if self.clock is not None and seconds > 0.0:
            self.clock.advance(seconds)
        return seconds

    def _note_metrics(self, run: PoolRun) -> None:
        busy = run.total_seconds
        makespan = run.makespan_seconds
        with self._stats_lock:
            if sanitizer.ENABLED:
                sanitizer.access(
                    "pool:%s" % self.name, "accumulators",
                    site="WorkerPool._note_metrics",
                )
            self.runs_total += 1
            self.tasks_total += run.tasks
            self.busy_seconds_total += busy
            self.makespan_seconds_total += makespan
            if run.backend == "process":
                self.process_runs_total += 1
        metrics = self.metrics
        if metrics is None:
            return
        metrics.counter("parallel.runs").inc()
        if run.backend == "process":
            metrics.counter("parallel.process_runs").inc()
        metrics.counter("parallel.tasks").inc(run.tasks)
        if run.inline:
            metrics.counter("parallel.tasks_inline").inc(run.tasks)
        metrics.gauge("parallel.workers").set(self.parallelism)
        metrics.gauge("parallel.busy_seconds").add(busy)
        metrics.gauge("parallel.makespan_seconds").add(makespan)
