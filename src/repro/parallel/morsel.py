"""Morsel splitting and associativity-safe partial-aggregate combiners.

A *morsel* is a contiguous row range of a batch (Leis et al.'s
morsel-driven parallelism): workers evaluate predicate masks and partial
aggregates per morsel, and the results merge back **in morsel order**, so a
parallel plan yields exactly the rows a serial plan would.

The combiners here are restricted to operations that are associative in
machine arithmetic, which makes the merge invariant to morsel size and
worker count:

* COUNT / COUNT(x) — integer addition;
* MIN / MAX — idempotent semilattice operations;
* SUM over integer/decimal physical values — int64 (modular) addition;
* SUM / AVG over integer-typed arguments accumulated in float64 — exact
  while partial sums stay below 2**53 (integer-valued doubles).

Float-accumulating aggregates whose rounding depends on addition order
(AVG/SUM over DOUBLE or DECIMAL-scaled floats, the variance family,
MEDIAN/percentiles, DISTINCT forms) deliberately stay on the serial path —
determinism is part of the engine's contract (see DESIGN.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Default rows per morsel for engine-level parallel operators.
DEFAULT_MORSEL_ROWS = 8_192

#: Environment override for morsels batched per pool task.
MORSEL_BATCH_ENV_VAR = "REPRO_MORSEL_BATCH"


def morsel_ranges(n_rows: int, morsel_rows: int | None = None) -> list[tuple[int, int]]:
    """Split ``n_rows`` into contiguous ``[start, stop)`` morsels."""
    size = morsel_rows or DEFAULT_MORSEL_ROWS
    if size < 1:
        raise ValueError("morsel size must be positive, got %d" % size)
    if n_rows <= 0:
        return []
    return [(start, min(start + size, n_rows)) for start in range(0, n_rows, size)]


def batch_size(n_items: int, parallelism: int, batch: int | None = None) -> int:
    """Morsels (or regions) batched into one pool task.

    Priority: the explicit ``batch`` argument, then the
    ``REPRO_MORSEL_BATCH`` environment variable, then an automatic size
    targeting ~2 tasks per worker — enough tasks that the greedy scheduler
    can balance the load, few enough that per-task dispatch overhead
    amortises over K morsels.
    """
    if batch is None:
        env = os.environ.get(MORSEL_BATCH_ENV_VAR)
        if env:
            try:
                batch = int(env)
            except ValueError:
                raise ValueError(
                    "%s must be an integer, got %r" % (MORSEL_BATCH_ENV_VAR, env)
                ) from None
            if batch < 1:
                raise ValueError(
                    "%s must be positive, got %d" % (MORSEL_BATCH_ENV_VAR, batch)
                )
    if batch is not None:
        if batch < 1:
            raise ValueError("morsel batch must be positive, got %d" % batch)
        return batch
    if n_items <= 0:
        return 1
    return max(1, -(-n_items // (2 * max(1, parallelism))))


def batch_items(items: list, parallelism: int, batch: int | None = None) -> list[list]:
    """Group ``items`` into per-task batches of K consecutive items.

    Batches preserve submission order, so flattening per-task results in
    task order reproduces the unbatched gather order exactly.
    """
    items = list(items)
    k = batch_size(len(items), parallelism, batch)
    return [items[i : i + k] for i in range(0, len(items), k)]


def batch_spans(
    n_rows: int,
    morsel_rows: int | None,
    parallelism: int,
    batch: int | None = None,
) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` spans of K morsels each.

    Because morsels are contiguous row ranges, a batch of K consecutive
    morsels is itself one contiguous span — each pool task then makes one
    vectorised pass over its span instead of K small ones.
    """
    ranges = morsel_ranges(n_rows, morsel_rows)
    batched = batch_items(ranges, parallelism, batch)
    return [(group[0][0], group[-1][1]) for group in batched]


@dataclass
class PartialAgg:
    """Partial state for one (group, aggregate) pair within one morsel.

    ``rows`` counts every input row of the group (COUNT(*)); ``count``
    counts non-NULL aggregate inputs; ``total`` accumulates SUM/AVG (int for
    exact paths, float for integer-valued float64 sums); ``minimum`` /
    ``maximum`` hold MIN/MAX over non-NULL inputs (None when the morsel
    contributed none).
    """

    rows: int = 0
    count: int = 0
    total: object = 0
    minimum: object = None
    maximum: object = None

    def merge(self, other: "PartialAgg") -> "PartialAgg":
        """Fold ``other`` (a later morsel) into this state, in place."""
        self.rows += other.rows
        self.count += other.count
        self.total = self.total + other.total
        if other.minimum is not None and (
            self.minimum is None or other.minimum < self.minimum
        ):
            self.minimum = other.minimum
        if other.maximum is not None and (
            self.maximum is None or other.maximum > self.maximum
        ):
            self.maximum = other.maximum
        return self


def partial_from_values(values, rows: int | None = None) -> PartialAgg:
    """Build a :class:`PartialAgg` from one morsel's non-NULL input values.

    ``values`` is any iterable of plain Python scalars (NULLs already
    filtered out); ``rows`` is the group's total row count in the morsel
    (defaults to ``len(values)`` — i.e. no NULLs).
    """
    values = list(values)
    state = PartialAgg(rows=len(values) if rows is None else rows)
    for value in values:
        state.count += 1
        state.total = state.total + value
        if state.minimum is None or value < state.minimum:
            state.minimum = value
        if state.maximum is None or value > state.maximum:
            state.maximum = value
    return state


def merge_partials(partials) -> PartialAgg:
    """Fold a sequence of morsel states in order into one state."""
    merged = PartialAgg()
    for partial in partials:
        merged.merge(partial)
    return merged


class MorselMerger:
    """Order-preserving merge of per-morsel group dictionaries.

    Each morsel contributes ``{group_key: [PartialAgg, ...]}`` (one state
    per aggregate).  Groups keep **first-appearance order across morsels**
    and states merge in morsel order, so the result is independent of which
    worker computed which morsel — only the (deterministic) morsel order
    matters.
    """

    def __init__(self, n_aggregates: int):
        self.n_aggregates = n_aggregates
        self.groups: dict = {}

    def add_morsel(self, morsel_groups: dict) -> None:
        for key, states in morsel_groups.items():
            if len(states) != self.n_aggregates:
                raise ValueError(
                    "group %r carries %d states, expected %d"
                    % (key, len(states), self.n_aggregates)
                )
            existing = self.groups.get(key)
            if existing is None:
                self.groups[key] = [
                    PartialAgg().merge(state) for state in states
                ]
            else:
                for slot, state in zip(existing, states):
                    slot.merge(state)

    def ordered_groups(self, sort_key=None) -> list:
        """Group keys — first-appearance order, or sorted via ``sort_key``."""
        keys = list(self.groups)
        if sort_key is not None:
            keys.sort(key=sort_key)
        return keys
