"""Morsel-driven parallel execution: shared worker pool + combiners."""

from repro.parallel.morsel import (
    DEFAULT_MORSEL_ROWS,
    MorselMerger,
    PartialAgg,
    merge_partials,
    morsel_ranges,
    partial_from_values,
)
from repro.parallel.pool import (
    PARALLELISM_ENV_VAR,
    PoolRun,
    TaskSpan,
    WorkerPool,
    default_parallelism,
    greedy_makespan,
)

__all__ = [
    "DEFAULT_MORSEL_ROWS",
    "MorselMerger",
    "PARALLELISM_ENV_VAR",
    "PartialAgg",
    "PoolRun",
    "TaskSpan",
    "WorkerPool",
    "default_parallelism",
    "greedy_makespan",
    "merge_partials",
    "morsel_ranges",
    "partial_from_values",
]
