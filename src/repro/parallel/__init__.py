"""Morsel-driven parallel execution: shared worker pool + combiners."""

from repro.parallel.morsel import (
    DEFAULT_MORSEL_ROWS,
    MORSEL_BATCH_ENV_VAR,
    MorselMerger,
    PartialAgg,
    batch_items,
    batch_size,
    batch_spans,
    merge_partials,
    morsel_ranges,
    partial_from_values,
)
from repro.parallel.pool import (
    PARALLELISM_ENV_VAR,
    POOL_BACKEND_ENV_VAR,
    POOL_BACKENDS,
    PoolRun,
    TaskSpan,
    WorkerPool,
    default_backend,
    default_parallelism,
    greedy_makespan,
)

__all__ = [
    "DEFAULT_MORSEL_ROWS",
    "MORSEL_BATCH_ENV_VAR",
    "MorselMerger",
    "PARALLELISM_ENV_VAR",
    "POOL_BACKENDS",
    "POOL_BACKEND_ENV_VAR",
    "PartialAgg",
    "PoolRun",
    "TaskSpan",
    "WorkerPool",
    "batch_items",
    "batch_size",
    "batch_spans",
    "default_backend",
    "default_parallelism",
    "greedy_makespan",
    "merge_partials",
    "morsel_ranges",
    "partial_from_values",
]
