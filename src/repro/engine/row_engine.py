"""The row-at-a-time baseline engine.

This is the comparison engine for the paper's row-vs-column claims: it
processes one row dict at a time over a :class:`~repro.storage.rowtable.
RowTable`, optionally using secondary B-tree indexes for selective
predicates — i.e. the access-pattern profile of a classic row store with
secondary indexing (II.B.7).  All expression evaluation goes through
``Expr.eval_row``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.expression import Expr
from repro.engine.operators import SimplePredicate
from repro.storage.rowtable import RowTable


class RowOperator:
    """Base: row operators yield dicts of physical values."""

    def rows(self):
        raise NotImplementedError

    def run(self) -> list[dict]:
        return list(self.rows())


class RowScan(RowOperator):
    """Scan a row table, choosing an index when one predicate allows it."""

    def __init__(
        self,
        table: RowTable,
        pushed: list[SimplePredicate] | None = None,
        residual: Expr | None = None,
    ):
        self.table = table
        self.pushed = list(pushed or [])
        self.residual = residual
        self.used_index: str | None = None
        self.rows_examined = 0

    def _index_candidate(self) -> SimplePredicate | None:
        for pred in self.pushed:
            if pred.column in self.table.indexes and pred.op in ("=", "BETWEEN", "<", "<=", ">", ">="):
                return pred
        return None

    def _candidate_row_ids(self, pred: SimplePredicate):
        column = pred.column
        if pred.op == "=":
            return self.table.indexes[column].search(pred.value)
        if pred.op == "BETWEEN":
            lo, hi = pred.value
            return self.table.indexes[column].range_search(lo, hi)
        if pred.op == "<":
            return self.table.indexes[column].range_search(None, pred.value, hi_open=True)
        if pred.op == "<=":
            return self.table.indexes[column].range_search(None, pred.value)
        if pred.op == ">":
            return self.table.indexes[column].range_search(pred.value, None, lo_open=True)
        return self.table.indexes[column].range_search(pred.value, None)

    def rows(self):
        names = self.table.schema.column_names
        index_pred = self._index_candidate()
        if index_pred is not None:
            self.used_index = index_pred.column
            others = [p for p in self.pushed if p is not index_pred]
            deleted = self.table._deleted
            for row_id in self._candidate_row_ids(index_pred):
                if row_id in deleted:
                    continue
                self.rows_examined += 1
                raw = self.table.fetch(row_id)
                row = dict(zip(names, raw))
                if self._passes(row, others):
                    yield row
            return
        for _, raw in self.table.scan():
            self.rows_examined += 1
            row = dict(zip(names, raw))
            if self._passes(row, self.pushed):
                yield row

    def _passes(self, row: dict, preds) -> bool:
        for pred in preds:
            if not pred.eval_row_value(row[pred.column]):
                return False
        if self.residual is not None:
            verdict = self.residual.eval_row(row)
            if not verdict:
                return False
        return True


class RowSource(RowOperator):
    """Wrap a materialised list of row dicts."""

    def __init__(self, rows: list[dict]):
        self._rows = rows

    def rows(self):
        yield from self._rows


class RowFilter(RowOperator):
    def __init__(self, child: RowOperator, predicate: Expr):
        self.child = child
        self.predicate = predicate

    def rows(self):
        for row in self.child.rows():
            if self.predicate.eval_row(row):
                yield row


class RowProject(RowOperator):
    def __init__(self, child: RowOperator, outputs: list[tuple[str, Expr]]):
        self.child = child
        self.outputs = outputs

    def rows(self):
        for row in self.child.rows():
            yield {alias: expr.eval_row(row) for alias, expr in self.outputs}


class RowNestedLoopJoin(RowOperator):
    """Tuple-at-a-time join; uses the inner table's index when possible."""

    def __init__(
        self,
        outer: RowOperator,
        inner_table: RowTable,
        outer_key: str,
        inner_key: str,
        join_type: str = "inner",
    ):
        if join_type not in ("inner", "left"):
            raise ValueError("row nested-loop join supports inner/left")
        self.outer = outer
        self.inner_table = inner_table
        self.outer_key = outer_key
        self.inner_key = inner_key
        self.join_type = join_type

    def rows(self):
        inner_names = self.inner_table.schema.column_names
        use_index = self.inner_key in self.inner_table.indexes
        for outer_row in self.outer.rows():
            key = outer_row[self.outer_key]
            matched = False
            if key is not None:
                if use_index:
                    candidates = self.inner_table.indexes[self.inner_key].search(key)
                    candidates = [
                        c for c in candidates if c not in self.inner_table._deleted
                    ]
                    inner_rows = (self.inner_table.fetch(c) for c in candidates)
                else:
                    key_idx = self.inner_table.schema.column_index(self.inner_key)
                    inner_rows = (
                        raw for _, raw in self.inner_table.scan() if raw[key_idx] == key
                    )
                for raw in inner_rows:
                    matched = True
                    joined = dict(outer_row)
                    for name, value in zip(inner_names, raw):
                        joined.setdefault(name, value)
                    yield joined
            if not matched and self.join_type == "left":
                joined = dict(outer_row)
                for name in inner_names:
                    joined.setdefault(name, None)
                yield joined


class RowHashJoin(RowOperator):
    """Tuple-at-a-time hash join (row stores have these too; the contrast
    with the columnar engine is per-row interpretation overhead)."""

    def __init__(
        self,
        left: RowOperator,
        right: RowOperator,
        left_key: str,
        right_key: str,
    ):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key

    def rows(self):
        table: dict = {}
        for row in self.right.rows():
            key = row[self.right_key]
            if key is not None:
                table.setdefault(key, []).append(row)
        for row in self.left.rows():
            key = row[self.left_key]
            if key is None:
                continue
            for match in table.get(key, ()):
                joined = dict(row)
                for name, value in match.items():
                    joined.setdefault(name, value)
                yield joined


class RowGroupBy(RowOperator):
    """Dict-based grouping with row-at-a-time accumulation."""

    def __init__(
        self,
        child: RowOperator,
        keys: list[tuple[str, Expr]],
        aggregates: list,  # AggregateSpec
    ):
        self.child = child
        self.keys = keys
        self.aggregates = aggregates

    def rows(self):
        groups: dict = {}
        for row in self.child.rows():
            key = tuple(expr.eval_row(row) for _, expr in self.keys)
            state = groups.get(key)
            if state is None:
                state = [_AggState(spec) for spec in self.aggregates]
                groups[key] = state
            for agg in state:
                agg.update(row)
        if not groups and not self.keys:
            state = [_AggState(spec) for spec in self.aggregates]
            groups[()] = state
        for key, state in groups.items():
            out = {alias: value for (alias, _), value in zip(self.keys, key)}
            for spec, agg in zip(self.aggregates, state):
                out[spec.alias] = agg.result()
            yield out


class _AggState:
    """Scalar accumulator mirroring the vectorised aggregate set.

    Values arrive in *physical* form; results are produced in the physical
    form matching :meth:`AggregateSpec.output_type` (exact scaled integers
    for SUM over decimals, true doubles for moments).
    """

    def __init__(self, spec):
        self.spec = spec
        self.count = 0
        self.total = 0.0       # descaled (true-value) accumulation
        self.total_sq = 0.0
        self.total_raw = 0     # exact physical accumulation (SUM)
        self.min = None
        self.max = None
        self.values = [] if spec.func in ("MEDIAN",) or spec.distinct else None
        self._scale_div = 1
        if spec.args:
            dt = spec.args[0].dtype
            if dt.kind.value == "DECIMAL":
                self._scale_div = 10 ** dt.scale

    def update(self, row: dict) -> None:
        spec = self.spec
        if spec.func == "COUNT" and not spec.args:
            self.count += 1
            return
        value = spec.args[0].eval_row(row)
        if value is None:
            return
        if self.values is not None:
            self.values.append(value)
        self.count += 1
        if isinstance(value, (int, float)):
            numeric = value / self._scale_div if self._scale_div != 1 else value
            self.total += numeric
            self.total_sq += numeric * numeric
            if isinstance(value, int):
                self.total_raw += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def result(self):
        spec = self.spec
        func = spec.func
        if func == "COUNT":
            if spec.distinct and self.values is not None:
                return len(set(self.values))
            return self.count
        if self.count == 0:
            return None
        if func == "SUM":
            if spec.distinct and self.values is not None:
                return sum(set(self.values))
            out_kind = spec.output_type().kind.value
            if out_kind in ("DECIMAL", "BIGINT"):
                return self.total_raw
            return self.total
        if func == "AVG":
            return self.total / self.count
        if func == "MIN":
            return self.min
        if func == "MAX":
            return self.max
        if func == "MEDIAN":
            ordered = sorted(v / self._scale_div for v in self.values)
            mid = len(ordered) // 2
            if len(ordered) % 2:
                return float(ordered[mid])
            return (ordered[mid - 1] + ordered[mid]) / 2.0
        mean = self.total / self.count
        var_pop = max(self.total_sq / self.count - mean * mean, 0.0)
        if func == "VAR_POP":
            return var_pop
        if func == "STDDEV_POP":
            return var_pop ** 0.5
        if self.count <= 1:
            return None
        var_samp = var_pop * self.count / (self.count - 1)
        if func == "VAR_SAMP":
            return var_samp
        if func == "STDDEV_SAMP":
            return var_samp ** 0.5
        raise ValueError("row engine does not support aggregate %s" % func)


class RowSort(RowOperator):
    def __init__(self, child: RowOperator, keys: list):
        self.child = child
        self.keys = keys  # list of SortKey

    def rows(self):
        rows = self.child.run()
        for key in reversed(self.keys):
            nulls_first = key.nulls_go_first()
            # With reverse=True the bucket comparison flips too, so place the
            # null bucket accordingly; ties across buckets never mix types.
            if key.ascending:
                null_bucket = 0 if nulls_first else 2
            else:
                null_bucket = 2 if nulls_first else 0

            def sort_key(row, key=key, null_bucket=null_bucket):
                value = key.expr.eval_row(row)
                if value is None:
                    return (null_bucket, 0)
                return (1, value)

            rows.sort(key=sort_key, reverse=not key.ascending)
        yield from rows


class RowLimit(RowOperator):
    def __init__(self, child: RowOperator, limit: int | None, offset: int = 0):
        self.child = child
        self.limit = limit
        self.offset = offset

    def rows(self):
        produced = 0
        skipped = 0
        for row in self.child.rows():
            if skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and produced >= self.limit:
                return
            produced += 1
            yield row
