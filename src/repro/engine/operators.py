"""Scan, filter, project, and limit operators.

The scan is where the paper's techniques compose (II.B): for each region it
first asks the synopsis which extents can match (data skipping), then
evaluates pushed-down simple predicates directly on the packed codes
(operating on compressed data via software-SIMD), and only decodes the
columns the query actually needs for extents that survive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.expression import Batch, Expr, selection_mask
from repro.storage.column import ColumnVector
from repro.storage.table import ColumnTable


@dataclass
class ScanStats:
    """Observability + cost-model inputs collected during a scan."""

    regions_scanned: int = 0
    extents_total: int = 0
    extents_skipped: int = 0
    rows_scanned: int = 0
    rows_matched: int = 0
    pages_read: int = 0
    bytes_scanned: int = 0       # compressed bytes touched
    raw_bytes_scanned: int = 0   # uncompressed equivalent of touched data

    def merge(self, other: "ScanStats") -> None:
        """Fold another region's counters in (parallel scans merge their
        per-task stats back in region order; all fields are sums)."""
        self.regions_scanned += other.regions_scanned
        self.extents_total += other.extents_total
        self.extents_skipped += other.extents_skipped
        self.rows_scanned += other.rows_scanned
        self.rows_matched += other.rows_matched
        self.pages_read += other.pages_read
        self.bytes_scanned += other.bytes_scanned
        self.raw_bytes_scanned += other.raw_bytes_scanned


@dataclass
class SimplePredicate:
    """A pushdown-able predicate: ``column <op> constant`` (physical form).

    op is one of the comparison operators, "BETWEEN", "IN", "IS NULL",
    "IS NOT NULL".  ``value`` holds the constant, the (lo, hi) pair, or the
    value list, in physical representation.
    """

    column: str
    op: str
    value: object = None

    def synopsis_candidates(self, synopsis) -> np.ndarray:
        if self.op == "BETWEEN":
            lo, hi = self.value
            return synopsis.candidates_between(lo, hi)
        if self.op == "IN":
            return synopsis.candidates_in(self.value)
        if self.op == "IS NULL":
            return synopsis.candidates_is_null()
        if self.op == "IS NOT NULL":
            return synopsis.candidates_is_not_null()
        return synopsis.candidates_compare(self.op, self.value)

    def eval_compressed(self, column) -> np.ndarray:
        if self.op == "BETWEEN":
            lo, hi = self.value
            return column.eval_between(lo, hi)
        if self.op == "IN":
            return column.eval_in(self.value)
        if self.op == "IS NULL":
            return column.eval_is_null()
        if self.op == "IS NOT NULL":
            return column.eval_is_not_null()
        return column.eval_compare(self.op, self.value)

    def eval_vector(self, vector: ColumnVector) -> np.ndarray:
        values, nulls = vector.values, vector.null_mask()
        if self.op == "IS NULL":
            return nulls.copy()
        if self.op == "IS NOT NULL":
            return ~nulls
        if self.op == "BETWEEN":
            lo, hi = self.value
            return (values >= lo) & (values <= hi) & ~nulls
        if self.op == "IN":
            live = [v for v in self.value if v is not None]
            return np.isin(values, live) & ~nulls
        ops = {
            "=": values == self.value,
            "<>": values != self.value,
            "<": values < self.value,
            "<=": values <= self.value,
            ">": values > self.value,
            ">=": values >= self.value,
        }
        return np.asarray(ops[self.op]) & ~nulls

    def eval_row_value(self, value) -> bool:
        if self.op == "IS NULL":
            return value is None
        if self.op == "IS NOT NULL":
            return value is not None
        if value is None:
            return False
        if self.op == "BETWEEN":
            lo, hi = self.value
            return lo <= value <= hi
        if self.op == "IN":
            return value in [v for v in self.value if v is not None]
        ops = {
            "=": value == self.value,
            "<>": value != self.value,
            "<": value < self.value,
            "<=": value <= self.value,
            ">": value > self.value,
            ">=": value >= self.value,
        }
        return bool(ops[self.op])


class Operator:
    """Base: operators produce an iterator of batches."""

    def execute(self):
        raise NotImplementedError

    def run(self) -> Batch:
        """Drain the operator into one batch (pipeline-breaker helper)."""
        return Batch.concat(list(self.execute()))


class TableScanOp(Operator):
    """Scan a column-organised table with skipping and compressed predicates.

    Args:
        table: the storage table.
        columns: column names the query needs (projection pruning, II.B.3).
        pushed: conjunctive simple predicates evaluated on compressed data.
        residual: optional residual predicate evaluated on decoded batches.
        page_source: optional callable(table_name, column, region_idx,
            loader) routing page fetches through a buffer pool.
        stride_rows: if set, emit batches of at most this many rows
            (stride-at-a-time processing, II.B.7).
        pool: optional :class:`~repro.parallel.pool.WorkerPool`.  When the
            pool is parallel, regions become independent morsel tasks whose
            batches and stats gather back **in region order**, so the output
            is identical to the serial scan.  With ``parallelism=1`` (or no
            pool) the original incremental generator path runs untouched —
            including its lazy early-exit behaviour under LIMIT.
        snapshot: optional MVCC :class:`~repro.mvcc.txn.Snapshot`.  The
            scan freezes its view of the table (region list + tail prefix)
            at construction and filters every region/tail batch through the
            snapshot's visibility mask, so concurrent writers neither block
            nor perturb the scan.  Without a snapshot the frozen view shows
            the latest state (all live rows) — the pre-MVCC behaviour.
    """

    def __init__(
        self,
        table: ColumnTable,
        columns: list[str],
        pushed: list[SimplePredicate] | None = None,
        residual: Expr | None = None,
        page_source=None,
        stride_rows: int | None = None,
        use_skipping: bool = True,
        use_compressed_eval: bool = True,
        pool=None,
        snapshot=None,
    ):
        self.table = table
        self.columns = list(columns)
        self.pushed = list(pushed or [])
        self.residual = residual
        self.page_source = page_source
        self.stride_rows = stride_rows
        self.use_skipping = use_skipping
        self.use_compressed_eval = use_compressed_eval
        self.pool = pool
        # flow-ok: snapshot-scope (operator trees are statement-scoped by construction — the planner builds a fresh tree per statement and the serving layer caches results, never planned trees)
        self.snapshot = snapshot
        self.stats = ScanStats()
        #: PoolRun of the last parallel execution (EXPLAIN ANALYZE surface).
        self.parallel_run = None
        # Freeze the view once: morsel workers (threads or pickled process
        # tasks) all scan the same captured region tuple and tail prefix.
        needed = set(self.columns) | {p.column for p in self.pushed}
        if self.residual is not None:
            needed |= self.residual.references()
        self._capture = table.capture(snapshot, columns=sorted(needed))
        #: Frozen region list for this scan (capture-time prefix).
        self.regions = self._capture.regions

    def _fetch(self, region_idx: int, column: str):
        region = self.regions[region_idx]
        if self.page_source is None:
            return region.columns[column]
        return self.page_source(
            self.table.schema.name,
            column,
            region_idx,
            lambda: region.columns[column],
        )

    def execute(self):
        needed = set(self.columns)
        if self.residual is not None:
            needed |= self.residual.references()
        pool = self.pool
        if pool is not None and pool.is_parallel and len(self.regions) > 1:
            yield from self._execute_parallel(needed, pool)
            return
        for region_idx, region in enumerate(self.regions):
            batch = self._scan_region(region_idx, region, needed, self.stats)
            if batch is not None and batch.n:
                yield from self._emit(batch)
        tail = self._scan_tail(needed)
        if tail is not None and tail.n:
            yield from self._emit(tail)

    def _execute_parallel(self, needed, pool):
        """Morsel-parallel scan: K regions per task (batched so dispatch
        overhead amortises), gathered in region order (deterministic),
        per-task stats merged back in region order."""
        from repro.parallel.morsel import batch_items

        def scan_batch(group):
            out = []
            for region_idx, region in group:
                stats = ScanStats()
                batch = self._scan_region(region_idx, region, needed, stats)
                out.append((batch, stats))
            return out

        groups = batch_items(list(enumerate(self.regions)), pool.parallelism)
        results = pool.map(
            scan_batch, groups, label="scan:%s" % self.table.schema.name
        )
        self.parallel_run = pool.last_run
        for group_result in results:
            for batch, stats in group_result:
                self.stats.merge(stats)
                if batch is not None and batch.n:
                    yield from self._emit(batch)
        tail = self._scan_tail(needed)
        if tail is not None and tail.n:
            yield from self._emit(tail)

    def _emit(self, batch: Batch):
        if self.stride_rows is None or batch.n <= self.stride_rows:
            yield batch
            return
        for start in range(0, batch.n, self.stride_rows):
            idx = np.arange(start, min(start + self.stride_rows, batch.n))
            yield batch.take(idx)

    def _scan_region(self, region_idx, region, needed, stats):
        stats.regions_scanned += 1
        n = region.n_rows
        stride = self.table.synopsis_stride
        n_extents = -(-n // stride) if n else 0
        stats.extents_total += n_extents
        # 1. Data skipping: intersect synopsis candidates per predicate.
        extent_keep = np.ones(n_extents, dtype=bool)
        if self.use_skipping:
            for pred in self.pushed:
                synopsis = region.synopses.get(pred.column)
                if synopsis is not None:
                    extent_keep &= pred.synopsis_candidates(synopsis)
        skipped = int((~extent_keep).sum())
        stats.extents_skipped += skipped
        if not extent_keep.any():
            return None
        row_keep = np.repeat(extent_keep, stride)[:n]
        rows_touched = int(row_keep.sum())
        stats.rows_scanned += rows_touched
        # Uncompressed-equivalent bytes for the touched columns/rows.
        touched_columns = {p.column for p in self.pushed} | set(needed)
        for column in touched_columns:
            per_row = region.column_raw_nbytes.get(column, 8) / max(region.n_rows, 1)
            stats.raw_bytes_scanned += int(per_row * rows_touched)
        touched_fraction = rows_touched / max(n, 1)
        # Surviving-extent window: with skipping on, predicates evaluate
        # only over the word-aligned range covering surviving extents.
        if self.use_skipping and not extent_keep.all():
            first_extent = int(np.argmax(extent_keep))
            last_extent = n_extents - int(np.argmax(extent_keep[::-1]))
            window = (first_extent * stride, min(last_extent * stride, n))
        else:
            window = None
        # One buffer-pool request and one page/byte charge per (region,
        # column), even when a column is both a pushed predicate and a
        # projected output (or appears in several predicates).  Without the
        # cache the scan issued a second pool request at decode time, so
        # pool accesses could not be reconciled with ``stats.pages_read``.
        fetched: dict[str, object] = {}

        def fetch(name: str):
            compressed = fetched.get(name)
            if compressed is None:
                compressed = self._fetch(region_idx, name)
                fetched[name] = compressed
                stats.pages_read += 1
                stats.bytes_scanned += int(
                    compressed.nbytes() * touched_fraction
                )
            return compressed

        # 2. Predicates on compressed data (no decode).
        selection = row_keep
        for pred in self.pushed:
            compressed = fetch(pred.column)
            if self.use_compressed_eval:
                if window is not None:
                    col_slice, base = compressed.slice_rows(*window)
                    mask = np.zeros(n, dtype=bool)
                    mask[base : base + col_slice.n] = pred.eval_compressed(col_slice)
                    selection = selection & mask
                else:
                    selection = selection & pred.eval_compressed(compressed)
            else:
                values, nulls = compressed.decode()
                vector = ColumnVector(
                    self.table.schema.column_type(pred.column), values, nulls
                )
                selection = selection & pred.eval_vector(vector)
            if not selection.any():
                return None
        visible = region.visible_mask(self.snapshot)
        if visible is not None:
            selection = selection & visible
            if not selection.any():
                return None
        # 3. Decode only the needed columns for surviving rows (windowed to
        # the surviving extents when skipping applies).
        columns = {}
        for name in needed:
            compressed = fetch(name)
            if window is not None:
                col_slice, base = compressed.slice_rows(*window)
                values, nulls = col_slice.decode()
                vector = ColumnVector(
                    self.table.schema.column_type(name), values, nulls
                )
                columns[name] = vector.filter(selection[base : base + col_slice.n])
            else:
                values, nulls = compressed.decode()
                vector = ColumnVector(self.table.schema.column_type(name), values, nulls)
                columns[name] = vector.filter(selection)
        batch = Batch.from_columns(columns)
        batch = self._apply_residual(batch)
        stats.rows_matched += batch.n
        return batch

    def _scan_tail(self, needed):
        capture = self._capture
        if capture.tail_rows == 0:
            return None
        self.stats.rows_scanned += capture.tail_rows
        fetch = set(needed) | {p.column for p in self.pushed}
        vectors = {name: capture.tail[name] for name in fetch}
        batch = Batch.from_columns(vectors)
        if capture.tail_mask is not None:
            selection = capture.tail_mask.copy()
        else:
            selection = np.ones(batch.n, dtype=bool)
        for pred in self.pushed:
            selection &= pred.eval_vector(batch.columns[pred.column])
        batch = batch.filter(selection)
        batch = Batch.from_columns(
            {name: batch.columns[name] for name in needed}
        )
        batch = self._apply_residual(batch)
        self.stats.rows_matched += batch.n
        return batch

    def _apply_residual(self, batch: Batch) -> Batch:
        if self.residual is None or batch.n == 0:
            return batch
        return batch.filter(selection_mask(self.residual, batch))


class VectorSourceOp(Operator):
    """Expose an in-memory batch as a plan source (VALUES, intermediate)."""

    def __init__(self, batch: Batch):
        self.batch = batch

    def execute(self):
        if self.batch.n:
            yield self.batch


class FilterOp(Operator):
    def __init__(self, child: Operator, predicate: Expr):
        self.child = child
        self.predicate = predicate

    def execute(self):
        for batch in self.child.execute():
            mask = selection_mask(self.predicate, batch)
            # Empty results still flow through so downstream operators keep
            # the batch schema.
            yield batch.filter(mask)


class ProjectOp(Operator):
    """Compute output columns as (alias, expression) pairs."""

    def __init__(self, child: Operator, outputs: list[tuple[str, Expr]]):
        self.child = child
        self.outputs = outputs

    def execute(self):
        import numpy as np

        from repro.storage.column import ColumnVector

        for batch in self.child.execute():
            if batch.n == 0 and not batch.columns:
                # A drained-empty child lost its schema; rebuild typed
                # empty outputs so downstream operators keep working.
                columns = {
                    alias: ColumnVector(
                        expr.dtype, np.empty(0, dtype=expr.dtype.numpy_dtype), None
                    )
                    for alias, expr in self.outputs
                }
            else:
                columns = {alias: expr.eval(batch) for alias, expr in self.outputs}
            yield Batch.from_columns(columns)


class LimitOp(Operator):
    """LIMIT/OFFSET (also FETCH FIRST n ROWS ONLY and ROWNUM <= n)."""

    def __init__(self, child: Operator, limit: int | None, offset: int = 0):
        self.child = child
        self.limit = limit
        self.offset = offset

    def execute(self):
        to_skip = self.offset
        remaining = self.limit
        for batch in self.child.execute():
            if to_skip >= batch.n:
                to_skip -= batch.n
                continue
            if to_skip:
                batch = batch.take(np.arange(to_skip, batch.n))
                to_skip = 0
            if remaining is not None:
                if remaining <= 0:
                    return
                if batch.n > remaining:
                    batch = batch.take(np.arange(remaining))
                remaining -= batch.n
            yield batch
