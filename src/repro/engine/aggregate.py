"""Vectorised grouping and aggregation (paper II.B.7).

Groups are resolved with a single ``np.unique(return_inverse)`` pass over
the key columns; aggregates then reduce with ``np.bincount``-style
scatter-adds, so the whole operator is a handful of vectorised passes
(the cache-efficient, partition-into-chunks strategy the paper describes,
expressed in numpy).

Supported aggregates: COUNT(*), COUNT(x), COUNT(DISTINCT x), SUM, AVG,
MIN, MAX, VAR_POP, VAR_SAMP/VARIANCE, STDDEV, STDDEV_POP, STDDEV_SAMP,
MEDIAN, COVAR_POP, COVAR_SAMP/COVARIANCE, CUME_DIST/PERCENTILE via MEDIAN's
machinery, GROUPING passthrough.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.expression import Batch, Expr
from repro.engine.operators import Operator
from repro.errors import UnsupportedFeatureError
from repro.storage.column import ColumnVector
from repro.types.datatypes import BIGINT, DOUBLE, DataType, TypeKind, decimal_type

_SINGLE_ARG = {
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
    "VAR_POP",
    "VAR_SAMP",
    "STDDEV_POP",
    "STDDEV_SAMP",
    "MEDIAN",
    "PERCENTILE_CONT",
    "PERCENTILE_DISC",
    "CUME_DIST",
}
_TWO_ARG = {"COVAR_POP", "COVAR_SAMP"}


@dataclass
class GroupStats:
    """Observability counters for one grouping execution (monitor layer)."""

    input_rows: int = 0
    groups: int = 0


@dataclass
class AggregateSpec:
    """One output aggregate: function, argument expression(s), alias."""

    func: str
    args: list[Expr]
    alias: str
    distinct: bool = False
    param: float | None = None  # percentile fraction for PERCENTILE_*

    def output_type(self) -> DataType:
        func = self.func
        if func == "COUNT":
            return BIGINT
        if func in ("SUM",):
            arg = self.args[0].dtype
            if arg.kind is TypeKind.DECIMAL:
                return decimal_type(31, arg.scale)
            if arg.is_integer:
                return BIGINT
            return DOUBLE
        if func in ("MIN", "MAX"):
            return self.args[0].dtype
        return DOUBLE


class GroupByOp(Operator):
    """GROUP BY with vectorised aggregate computation.

    Args:
        child: input operator.
        keys: (alias, expression) pairs forming the group key (empty for a
            grand total).
        aggregates: the aggregate outputs.
        pool: optional :class:`~repro.parallel.pool.WorkerPool`.  With a
            parallel pool the input splits into morsels, each worker builds
            partial per-group states, and the states merge in morsel order.
            Only aggregates whose machine arithmetic is associative take
            this path (see :meth:`parallel_safe`); everything else stays on
            the serial code, so results are bit-identical at any DOP.
        morsel_rows: rows per morsel (default
            :data:`~repro.parallel.morsel.DEFAULT_MORSEL_ROWS`).
    """

    def __init__(
        self,
        child: Operator,
        keys: list[tuple[str, Expr]],
        aggregates: list[AggregateSpec],
        pool=None,
        morsel_rows: int | None = None,
    ):
        self.child = child
        self.keys = keys
        self.aggregates = aggregates
        self.pool = pool
        self.morsel_rows = morsel_rows
        self.stats = GroupStats()
        self.parallel_run = None
        #: Fusion telemetry (EXPLAIN ANALYZE): "scan-agg" when the whole
        #: scan→aggregate chain ran fused, "batch-agg" for a fused reduce
        #: over the drained child, None for the unfused paths.
        self.fused_mode = None
        self.fused_cache = None
        #: Planner-assigned structural signature; part of the fused
        #: pipeline-cache key so shape-identical queries share a pipeline.
        self.shape_key = ""

    def parallel_safe(self) -> bool:
        """True when every aggregate merges exactly across morsels.

        COUNT / MIN / MAX always merge exactly; SUM when the physical
        accumulator is int64 (integers and scaled DECIMALs — modular int64
        addition is associative); AVG for integer arguments (integer-valued
        float64 division of an exact integer sum).  DISTINCT forms and the
        float-accumulating families (DOUBLE SUM/AVG, variance, percentiles)
        round differently under re-association, so they stay serial.
        Approximate (float) group keys also stay serial: NaN ordering under
        a partial-state merge is not worth the hazard.
        """
        for _, expr in self.keys:
            if expr.dtype.is_approximate:
                return False
        for spec in self.aggregates:
            func = spec.func.upper()
            if spec.distinct:
                return False
            if func == "COUNT":
                continue
            if func in ("MIN", "MAX"):
                continue
            if not spec.args:
                return False
            arg = spec.args[0].dtype
            if func == "SUM" and (arg.is_integer or arg.kind is TypeKind.DECIMAL):
                continue
            if func == "AVG" and arg.is_integer:
                continue
            return False
        return True

    def execute(self):
        pool = self.pool
        if pool is not None and pool.is_parallel and self.parallel_safe():
            # Whole-chain fusion: when the child is a project/filter chain
            # over a multi-region scan, each pool task scans K regions and
            # reduces them in place — the decoded scan output is never
            # materialised (see repro.engine.fused).
            from repro.engine import fused

            plan = fused.match_scan_agg(self)
            if plan is not None:
                result = fused.execute_scan_agg(self, plan, pool)
                if result is not None:
                    columns, n_groups, input_rows = result
                    self.stats = GroupStats(
                        input_rows=input_rows, groups=n_groups
                    )
                    yield Batch.from_columns(columns)
                    return
        batch = self.child.run()
        self.stats = GroupStats(input_rows=batch.n)
        if batch.n == 0 and not batch.columns:
            # A drained-empty child lost its schema: rebuild typed empty
            # columns for every column reference the aggregates/keys read.
            batch = _synthesize_empty(self.keys, self.aggregates)
        if pool is not None and pool.is_parallel and batch.n > 1 and self.parallel_safe():
            from repro.parallel.morsel import morsel_ranges

            morsels = morsel_ranges(batch.n, self.morsel_rows)
            if len(morsels) > 1:
                yield self._execute_parallel(batch, morsels, pool)
                return
        if not self.keys:
            self.stats.groups = 1
            yield self._grand_total(batch)
            return
        if batch.n == 0:
            yield Batch(
                columns={
                    **{alias: ColumnVector(e.dtype, np.empty(0, e.dtype.numpy_dtype), None)
                       for alias, e in self.keys},
                    **{s.alias: ColumnVector(s.output_type(), np.empty(0, s.output_type().numpy_dtype), None)
                       for s in self.aggregates},
                },
                n=0,
            )
            return
        key_vectors = [(alias, expr.eval(batch)) for alias, expr in self.keys]
        group_ids, representatives, n_groups = _group_ids(key_vectors, batch.n)
        self.stats.groups = int(n_groups)
        columns: dict[str, ColumnVector] = {}
        for alias, vector in key_vectors:
            columns[alias] = vector.take(representatives)
        for spec in self.aggregates:
            columns[spec.alias] = _compute_aggregate(spec, batch, group_ids, n_groups)
        yield Batch.from_columns(columns)

    def _grand_total(self, batch: Batch) -> Batch:
        group_ids = np.zeros(batch.n, dtype=np.int64)
        columns = {
            spec.alias: _compute_aggregate(spec, batch, group_ids, 1)
            for spec in self.aggregates
        }
        return Batch.from_columns(columns)

    # -- morsel-parallel path ----------------------------------------------------

    def _execute_parallel(self, batch: Batch, morsels, pool) -> Batch:
        """Fused span reduction over the drained input batch.

        Key/argument expressions evaluate once over the whole batch, then
        batched morsel spans reduce through the fused array kernels
        (:mod:`repro.engine.fused`).  Plans whose key encoding cannot be
        packed fall back to the original per-group state merge."""
        from repro.engine import fused

        try:
            columns, n_groups = fused.parallel_group_reduce(self, batch, pool)
        except fused.FusionFallback:
            return self._execute_parallel_states(batch, morsels, pool)
        self.stats.groups = n_groups
        return Batch.from_columns(columns)

    def _execute_parallel_states(self, batch: Batch, morsels, pool) -> Batch:
        """Partial per-group states per morsel, merged in morsel order, then
        groups re-sorted into the serial engine's output order (per column:
        NULL first, then ascending values — exactly ``np.unique``'s code
        order in :func:`_group_ids`)."""
        from repro.parallel.morsel import MorselMerger

        def partials(rng):
            start, stop = rng
            return self._morsel_partials(batch.take(np.arange(start, stop)))

        per_morsel = pool.map(partials, morsels, label="group-by")
        self.parallel_run = pool.last_run
        merger = MorselMerger(len(self.aggregates))
        for part in per_morsel:
            merger.add_morsel(part)
        ordered = merger.ordered_groups(sort_key=_serial_group_order)
        self.stats.groups = len(ordered)
        columns: dict[str, ColumnVector] = {}
        for k, (alias, expr) in enumerate(self.keys):
            columns[alias] = _key_column(expr.dtype, [key[k] for key in ordered])
        for j, spec in enumerate(self.aggregates):
            states = [merger.groups[key][j] for key in ordered]
            columns[spec.alias] = _partial_result(spec, states)
        return Batch.from_columns(columns)

    def _morsel_partials(self, sub: Batch) -> dict:
        """One morsel's {group key tuple: [PartialAgg per aggregate]}."""
        n = sub.n
        if self.keys:
            key_vectors = [(alias, expr.eval(sub)) for alias, expr in self.keys]
            group_ids, representatives, n_groups = _group_ids(key_vectors, n)
            group_keys = []
            for g in range(int(n_groups)):
                r = int(representatives[g])
                parts = []
                for _, vector in key_vectors:
                    if vector.null_mask()[r]:
                        parts.append(None)
                    else:
                        parts.append(_py_value(vector.values[r]))
                group_keys.append(tuple(parts))
        else:
            group_ids = np.zeros(n, dtype=np.int64)
            n_groups = 1
            group_keys = [()]
        rows_per_group = np.bincount(group_ids, minlength=n_groups)
        per_spec = [
            self._spec_states(spec, sub, group_ids, int(n_groups), rows_per_group)
            for spec in self.aggregates
        ]
        return {
            key: [states[g] for states in per_spec]
            for g, key in enumerate(group_keys)
        }

    def _spec_states(self, spec, sub, group_ids, n_groups, rows_per_group):
        from repro.parallel.morsel import PartialAgg

        func = spec.func.upper()
        states = [PartialAgg(rows=int(rows_per_group[g])) for g in range(n_groups)]
        if func == "COUNT" and not spec.args:
            return states
        vector = spec.args[0].eval(sub)
        live = ~vector.null_mask()
        ids = group_ids[live]
        values = vector.values[live]
        counts = np.bincount(ids, minlength=n_groups)
        for g in range(n_groups):
            states[g].count = int(counts[g])
        if func in ("SUM", "AVG"):
            if values.dtype != np.int64:
                # parallel_safe() guarantees an integral argument; coerce
                # stray representations to the exact accumulator.
                values = values.astype(np.int64)
            sums = np.zeros(n_groups, dtype=np.int64)
            np.add.at(sums, ids, values)
            for g in range(n_groups):
                states[g].total = int(sums[g])
        elif func in ("MIN", "MAX"):
            for g, value in zip(ids.tolist(), values.tolist()):
                state = states[g]
                if state.minimum is None or value < state.minimum:
                    state.minimum = value
                if state.maximum is None or value > state.maximum:
                    state.maximum = value
        return states


def _py_value(value):
    return value.item() if isinstance(value, np.generic) else value


def _serial_group_order(key: tuple):
    """Sort key reproducing the serial engine's group order: per column,
    NULL sorts first (code 0 in :func:`_group_ids`), then values ascend."""
    return tuple((0,) if v is None else (1, v) for v in key)


def _key_column(dtype: DataType, values_list) -> ColumnVector:
    np_dtype = dtype.numpy_dtype
    n = len(values_list)
    out = np.empty(n, dtype=np_dtype)
    nulls = np.zeros(n, dtype=bool)
    filler = "" if np_dtype == object else 0
    for i, value in enumerate(values_list):
        if value is None:
            nulls[i] = True
            out[i] = filler
        else:
            out[i] = value
    return ColumnVector(dtype, out, nulls if nulls.any() else None)


def _partial_result(spec: AggregateSpec, states) -> ColumnVector:
    """Finalise merged :class:`~repro.parallel.morsel.PartialAgg` states."""
    func = spec.func.upper()
    n = len(states)
    if func == "COUNT":
        if not spec.args:
            source = [s.rows for s in states]
        else:
            source = [s.count for s in states]
        return ColumnVector(BIGINT, np.array(source, dtype=np.int64), None)
    empty = np.array([s.count == 0 for s in states], dtype=bool)
    nulls = empty if empty.any() else None
    out_dt = spec.output_type()
    if func in ("MIN", "MAX"):
        np_dtype = out_dt.numpy_dtype
        filler = "" if np_dtype == object else 0
        out = np.full(n, filler, dtype=np_dtype)
        for i, state in enumerate(states):
            value = state.minimum if func == "MIN" else state.maximum
            if value is not None:
                out[i] = value
        return ColumnVector(out_dt, out, nulls)
    if func == "SUM":
        out = np.array([int(s.total) for s in states], dtype=np.int64)
        return ColumnVector(out_dt, out, nulls)
    # AVG over integer arguments: the integer partial sums are exact, so a
    # single float64 division reproduces the serial bincount/divide result.
    out = np.array(
        [float(s.total) / s.count if s.count else 0.0 for s in states],
        dtype=np.float64,
    )
    return ColumnVector(DOUBLE, out, nulls)


def _synthesize_empty(keys, aggregates) -> Batch:
    """An empty batch whose columns cover every ColumnRef in the exprs."""
    from repro.engine.expression import ColumnRef as _ColumnRef

    columns: dict[str, ColumnVector] = {}

    def walk(expr):
        if isinstance(expr, _ColumnRef):
            columns[expr.name] = ColumnVector(
                expr.dtype, np.empty(0, dtype=expr.dtype.numpy_dtype), None
            )
            return
        for attr in ("left", "right", "child", "low", "high", "default"):
            sub = getattr(expr, attr, None)
            if isinstance(sub, Expr):
                walk(sub)
        for attr in ("operands", "args"):
            for sub in getattr(expr, attr, []) or []:
                if isinstance(sub, Expr):
                    walk(sub)
        for pair in getattr(expr, "whens", []) or []:
            for sub in pair:
                if isinstance(sub, Expr):
                    walk(sub)

    for _, expr in keys:
        walk(expr)
    for spec in aggregates:
        for arg in spec.args:
            walk(arg)
    return Batch(columns=columns, n=0)


def _group_ids(key_vectors, n: int):
    """Assign dense group ids; returns (ids, representative row per group, k).

    NULL forms its own group (SQL GROUP BY treats NULLs as equal).
    """
    encoded = []
    for _, vector in key_vectors:
        values = vector.values
        nulls = vector.null_mask()
        # Factorise each key column independently, reserving code 0 for NULL.
        uniq, inverse = np.unique(values, return_inverse=True)
        codes = inverse.astype(np.int64) + 1
        codes[nulls] = 0
        encoded.append(codes)
    combined = encoded[0]
    for codes in encoded[1:]:
        combined = combined * (int(codes.max()) + 1) + codes
    uniq, first_index, inverse = np.unique(
        combined, return_index=True, return_inverse=True
    )
    return inverse.astype(np.int64), first_index, uniq.size


def _compute_aggregate(
    spec: AggregateSpec, batch: Batch, group_ids: np.ndarray, n_groups: int
) -> ColumnVector:
    func = spec.func.upper()
    out_dt = spec.output_type()
    if func == "COUNT" and not spec.args:
        counts = np.bincount(group_ids, minlength=n_groups).astype(np.int64)
        return ColumnVector(BIGINT, counts, None)
    if func in _TWO_ARG:
        return _covariance(spec, batch, group_ids, n_groups, sample=func.endswith("SAMP"))
    if func not in _SINGLE_ARG:
        raise UnsupportedFeatureError("aggregate function %s" % func)
    vector = spec.args[0].eval(batch)
    live = ~vector.null_mask()
    ids = group_ids[live]
    values = vector.values[live]
    if func == "COUNT":
        if spec.distinct:
            counts = np.zeros(n_groups, dtype=np.int64)
            seen = set()
            for g, v in zip(ids.tolist(), values.tolist()):
                if (g, v) not in seen:
                    seen.add((g, v))
                    counts[g] += 1
        else:
            counts = np.bincount(ids, minlength=n_groups).astype(np.int64)
        return ColumnVector(BIGINT, counts, None)

    group_counts = np.bincount(ids, minlength=n_groups).astype(np.int64)
    empty = group_counts == 0  # groups where every input was NULL
    if func in ("MIN", "MAX"):
        return _min_max(vector, values, ids, n_groups, empty, func, out_dt)
    if spec.distinct:
        ids, values = _distinct_pairs(ids, values)
        group_counts = np.bincount(ids, minlength=n_groups).astype(np.int64)
        empty = group_counts == 0
    numeric = values.astype(np.float64)
    arg_dt = spec.args[0].dtype
    if arg_dt.kind is TypeKind.DECIMAL:
        # Physical decimals are scaled integers; statistics need true values.
        numeric = numeric / (10 ** arg_dt.scale)
    sums = np.bincount(ids, weights=numeric, minlength=n_groups)
    if func == "SUM":
        return _sum_result(vector, values, ids, n_groups, sums, empty, out_dt)
    safe_counts = np.maximum(group_counts, 1)
    means = sums / safe_counts
    if func == "AVG":
        return ColumnVector(DOUBLE, means, empty if empty.any() else None)
    if func == "CUME_DIST":
        # Hypothetical-set aggregate: the relative position the constant
        # spec.param would take if inserted into each group:
        # (rows <= value, counting itself) / (n + 1).
        value = float(spec.param or 0.0)
        out = np.zeros(n_groups, dtype=np.float64)
        for g in range(n_groups):
            members = numeric[ids == g]
            if members.size:
                out[g] = (int((members <= value).sum()) + 1) / (members.size + 1)
        return ColumnVector(DOUBLE, out, empty if empty.any() else None)
    if func in ("MEDIAN", "PERCENTILE_CONT", "PERCENTILE_DISC"):
        fraction = 0.5 if func == "MEDIAN" else float(spec.param or 0.5)
        method = "lower" if func == "PERCENTILE_DISC" else "linear"
        out = np.zeros(n_groups, dtype=np.float64)
        for g in range(n_groups):
            members = numeric[ids == g]
            if members.size:
                out[g] = np.percentile(members, fraction * 100.0, method=method)
        return ColumnVector(DOUBLE, out, empty if empty.any() else None)
    # Variance family.
    sq = np.bincount(ids, weights=numeric * numeric, minlength=n_groups)
    var_pop = np.maximum(sq / safe_counts - means * means, 0.0)
    if func == "VAR_POP":
        return ColumnVector(DOUBLE, var_pop, empty if empty.any() else None)
    if func == "STDDEV_POP":
        return ColumnVector(DOUBLE, np.sqrt(var_pop), empty if empty.any() else None)
    denom = np.maximum(group_counts - 1, 1)
    var_samp = var_pop * group_counts / denom
    nulls = empty | (group_counts <= 1)
    if func == "VAR_SAMP":
        return ColumnVector(DOUBLE, var_samp, nulls if nulls.any() else None)
    # STDDEV_SAMP
    return ColumnVector(DOUBLE, np.sqrt(var_samp), nulls if nulls.any() else None)


def _distinct_pairs(ids: np.ndarray, values: np.ndarray):
    seen = set()
    keep = np.zeros(ids.size, dtype=bool)
    for i, (g, v) in enumerate(zip(ids.tolist(), values.tolist())):
        if (g, v) not in seen:
            seen.add((g, v))
            keep[i] = True
    return ids[keep], values[keep]


def _min_max(vector, values, ids, n_groups, empty, func, out_dt):
    np_dtype = vector.values.dtype
    filler = "" if np_dtype == object else 0
    out = np.full(n_groups, filler, dtype=np_dtype)
    initialised = np.zeros(n_groups, dtype=bool)
    better = (lambda a, b: a < b) if func == "MIN" else (lambda a, b: a > b)
    for g, v in zip(ids.tolist(), values.tolist()):
        if not initialised[g] or better(v, out[g]):
            out[g] = v
            initialised[g] = True
    return ColumnVector(out_dt, out, empty if empty.any() else None)


def _sum_result(vector, values, ids, n_groups, float_sums, empty, out_dt):
    if vector.values.dtype == np.int64:
        # Exact integer accumulation (money sums on scaled decimals).
        sums = np.zeros(n_groups, dtype=np.int64)
        np.add.at(sums, ids, values)
        return ColumnVector(out_dt, sums, empty if empty.any() else None)
    return ColumnVector(DOUBLE, float_sums, empty if empty.any() else None)


def _covariance(spec, batch, group_ids, n_groups, sample: bool):
    xv = spec.args[0].eval(batch)
    yv = spec.args[1].eval(batch)
    live = ~xv.null_mask() & ~yv.null_mask()
    ids = group_ids[live]
    x = xv.values[live].astype(np.float64)
    y = yv.values[live].astype(np.float64)
    if xv.dtype.kind is TypeKind.DECIMAL:
        x = x / (10 ** xv.dtype.scale)
    if yv.dtype.kind is TypeKind.DECIMAL:
        y = y / (10 ** yv.dtype.scale)
    counts = np.bincount(ids, minlength=n_groups).astype(np.int64)
    empty = counts == 0
    safe = np.maximum(counts, 1)
    mx = np.bincount(ids, weights=x, minlength=n_groups) / safe
    my = np.bincount(ids, weights=y, minlength=n_groups) / safe
    xy = np.bincount(ids, weights=x * y, minlength=n_groups) / safe
    cov_pop = xy - mx * my
    if not sample:
        return ColumnVector(DOUBLE, cov_pop, empty if empty.any() else None)
    denom = np.maximum(counts - 1, 1)
    cov_samp = cov_pop * counts / denom
    nulls = empty | (counts <= 1)
    return ColumnVector(DOUBLE, cov_samp, nulls if nulls.any() else None)
