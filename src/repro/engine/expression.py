"""Vectorised expression evaluation with SQL three-valued logic.

Expressions evaluate in two modes:

* :meth:`Expr.eval` — over a :class:`Batch` (column vectors), returning a
  :class:`~repro.storage.column.ColumnVector`; this is the columnar engine's
  path and is fully vectorised with numpy.
* :meth:`Expr.eval_row` — over a single row dict of physical values; this is
  the row-at-a-time baseline engine's path.

BOOLEAN results use three-valued logic: the value array holds 0/1 and the
null mask marks UNKNOWN.  A WHERE clause keeps a row only when the result
is 1 and not null.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DivisionByZeroError, TypeCheckError
from repro.storage.column import ColumnVector
from repro.types.datatypes import BOOLEAN, DOUBLE, DataType, TypeKind, promote


@dataclass
class Batch:
    """A horizontal slice of rows as named column vectors."""

    columns: dict[str, ColumnVector]
    n: int

    @classmethod
    def from_columns(cls, columns: dict[str, ColumnVector]) -> "Batch":
        sizes = {len(v) for v in columns.values()}
        if len(sizes) > 1:
            raise ValueError("ragged batch: column lengths %s" % sizes)
        n = sizes.pop() if sizes else 0
        return cls(columns=columns, n=n)

    def filter(self, mask: np.ndarray) -> "Batch":
        return Batch(
            columns={k: v.filter(mask) for k, v in self.columns.items()},
            n=int(mask.sum()),
        )

    def take(self, indices: np.ndarray) -> "Batch":
        return Batch(
            columns={k: v.take(indices) for k, v in self.columns.items()},
            n=int(indices.size),
        )

    @classmethod
    def concat(cls, batches: list["Batch"]) -> "Batch":
        if not batches:
            return cls(columns={}, n=0)
        names = batches[0].columns.keys()
        merged = {
            name: ColumnVector.concat([b.columns[name] for b in batches])
            for name in names
        }
        return cls(columns=merged, n=sum(b.n for b in batches))


class Expr:
    """Base class: a typed expression evaluable per-batch or per-row."""

    dtype: DataType = BOOLEAN

    def eval(self, batch: Batch) -> ColumnVector:
        raise NotImplementedError

    def eval_row(self, row: dict):
        raise NotImplementedError

    def references(self) -> set[str]:
        """Column names this expression reads."""
        return set()


@dataclass
class ColumnRef(Expr):
    name: str
    dtype: DataType = DOUBLE

    def eval(self, batch: Batch) -> ColumnVector:
        try:
            return batch.columns[self.name]
        except KeyError:
            raise TypeCheckError("column %r not in batch" % self.name) from None

    def eval_row(self, row: dict):
        return row[self.name]

    def references(self) -> set[str]:
        return {self.name}


@dataclass
class Literal(Expr):
    """A constant, stored in physical form."""

    value: object
    dtype: DataType = DOUBLE

    def eval(self, batch: Batch) -> ColumnVector:
        n = batch.n
        np_dtype = self.dtype.numpy_dtype
        if self.value is None:
            filler = "" if np_dtype == object else 0
            values = np.full(n, filler, dtype=np_dtype)
            return ColumnVector(self.dtype, values, np.ones(n, dtype=bool))
        if np_dtype == object:
            values = np.empty(n, dtype=object)
            values[:] = self.value
        else:
            values = np.full(n, self.value, dtype=np_dtype)
        return ColumnVector(self.dtype, values, None)

    def eval_row(self, row: dict):
        return self.value


def _null_union(*vectors: ColumnVector) -> np.ndarray | None:
    masks = [v.nulls for v in vectors if v.nulls is not None]
    if not masks:
        return None
    out = masks[0].copy()
    for m in masks[1:]:
        out |= m
    return out


_ARITH_RESULT_CHECKED = {"+", "-", "*", "/", "%", "||"}


@dataclass
class Arith(Expr):
    """Binary arithmetic (+ - * / %) and string concatenation (||)."""

    op: str
    left: Expr
    right: Expr
    dtype: DataType = DOUBLE

    def __post_init__(self):
        if self.op not in _ARITH_RESULT_CHECKED:
            raise TypeCheckError("unknown arithmetic operator %r" % self.op)

    def eval(self, batch: Batch) -> ColumnVector:
        lv = self.left.eval(batch)
        rv = self.right.eval(batch)
        nulls = _null_union(lv, rv)
        values = self._compute(lv.values, rv.values, nulls)
        return ColumnVector(self.dtype, values, nulls)

    def _compute(self, lv: np.ndarray, rv: np.ndarray, nulls) -> np.ndarray:
        if self.op == "||":
            out = np.empty(lv.size, dtype=object)
            for i in range(lv.size):
                out[i] = "%s%s" % (lv[i], rv[i])
            return out
        target = self.dtype.numpy_dtype
        lv = lv.astype(target, copy=False)
        rv = rv.astype(target, copy=False)
        if self.op == "+":
            return lv + rv
        if self.op == "-":
            return lv - rv
        if self.op == "*":
            return lv * rv
        live = np.ones(lv.shape, dtype=bool) if nulls is None else ~nulls
        if self.op == "/":
            if np.any((rv == 0) & live):
                raise DivisionByZeroError()
            safe = np.where(rv == 0, 1, rv)
            if target == np.int64:
                # SQL integer division truncates toward zero.
                result = np.trunc(lv / safe).astype(np.int64)
            else:
                result = lv / safe
            return result
        # modulo
        if np.any((rv == 0) & live):
            raise DivisionByZeroError()
        safe = np.where(rv == 0, 1, rv)
        result = lv - np.trunc(lv / safe) * safe  # sign follows the dividend
        return result.astype(target, copy=False)

    def eval_row(self, row: dict):
        lv = self.left.eval_row(row)
        rv = self.right.eval_row(row)
        if lv is None or rv is None:
            return None
        if self.op == "||":
            return "%s%s" % (lv, rv)
        if self.op == "+":
            result = lv + rv
        elif self.op == "-":
            result = lv - rv
        elif self.op == "*":
            result = lv * rv
        elif self.op == "/":
            if rv == 0:
                raise DivisionByZeroError()
            if self.dtype.numpy_dtype == np.int64:
                result = int(lv / rv) if rv != 0 else 0
            else:
                result = lv / rv
        else:  # %
            if rv == 0:
                raise DivisionByZeroError()
            result = lv - int(lv / rv) * rv
        if self.dtype.numpy_dtype == np.int64:
            return int(result)
        return result

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()


_COMPARE_OPS = {"=", "<>", "<", "<=", ">", ">="}


@dataclass
class Compare(Expr):
    op: str
    left: Expr
    right: Expr
    dtype: DataType = BOOLEAN

    def __post_init__(self):
        if self.op not in _COMPARE_OPS:
            raise TypeCheckError("unknown comparison operator %r" % self.op)
        self.dtype = BOOLEAN

    def eval(self, batch: Batch) -> ColumnVector:
        lv = self.left.eval(batch)
        rv = self.right.eval(batch)
        nulls = _null_union(lv, rv)
        left, right = _align_for_compare(lv, rv)
        if self.op == "=":
            result = left == right
        elif self.op == "<>":
            result = left != right
        elif self.op == "<":
            result = left < right
        elif self.op == "<=":
            result = left <= right
        elif self.op == ">":
            result = left > right
        else:
            result = left >= right
        return ColumnVector(BOOLEAN, np.asarray(result, dtype=np.int64), nulls)

    def eval_row(self, row: dict):
        lv = self.left.eval_row(row)
        rv = self.right.eval_row(row)
        if lv is None or rv is None:
            return None
        if self.op == "=":
            return int(lv == rv)
        if self.op == "<>":
            return int(lv != rv)
        if self.op == "<":
            return int(lv < rv)
        if self.op == "<=":
            return int(lv <= rv)
        if self.op == ">":
            return int(lv > rv)
        return int(lv >= rv)

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()


def _align_for_compare(lv: ColumnVector, rv: ColumnVector):
    """Bring two physical arrays to a comparable representation."""
    left, right = lv.values, rv.values
    if left.dtype == object or right.dtype == object:
        return left, right
    if left.dtype != right.dtype:
        left = left.astype(np.float64, copy=False)
        right = right.astype(np.float64, copy=False)
    # Exact numerics with different scales were aligned by the planner via
    # Cast; here dtypes already agree.
    return left, right


@dataclass
class Logical(Expr):
    """AND / OR with three-valued logic."""

    op: str
    operands: list[Expr]
    dtype: DataType = BOOLEAN

    def __post_init__(self):
        if self.op not in ("AND", "OR"):
            raise TypeCheckError("unknown logical operator %r" % self.op)
        self.dtype = BOOLEAN

    def eval(self, batch: Batch) -> ColumnVector:
        first = self.operands[0].eval(batch)
        null = first.null_mask().copy()
        true = first.values.astype(bool) & ~null
        for operand in self.operands[1:]:
            other = operand.eval(batch)
            on = other.null_mask()
            ot = other.values.astype(bool) & ~on
            if self.op == "AND":
                # TRUE iff both TRUE; FALSE dominates NULL.
                new_true = true & ot
                known_false = (~true & ~null) | (~ot & ~on)
                null = ~new_true & ~known_false
                true = new_true
            else:
                # TRUE dominates NULL; FALSE iff both FALSE.
                new_true = true | ot
                known_false = (~true & ~null) & (~ot & ~on)
                null = ~new_true & ~known_false
                true = new_true
        return ColumnVector(BOOLEAN, true.astype(np.int64), null if null.any() else None)

    def eval_row(self, row: dict):
        if self.op == "AND":
            saw_null = False
            for operand in self.operands:
                v = operand.eval_row(row)
                if v is None:
                    saw_null = True
                elif not v:
                    return 0
            return None if saw_null else 1
        saw_null = False
        for operand in self.operands:
            v = operand.eval_row(row)
            if v is None:
                saw_null = True
            elif v:
                return 1
        return None if saw_null else 0

    def references(self) -> set[str]:
        out = set()
        for operand in self.operands:
            out |= operand.references()
        return out


@dataclass
class Not(Expr):
    child: Expr
    dtype: DataType = BOOLEAN

    def eval(self, batch: Batch) -> ColumnVector:
        v = self.child.eval(batch)
        values = (v.values == 0).astype(np.int64)
        return ColumnVector(BOOLEAN, values, v.nulls)

    def eval_row(self, row: dict):
        v = self.child.eval_row(row)
        if v is None:
            return None
        return int(not v)

    def references(self) -> set[str]:
        return self.child.references()


@dataclass
class IsNull(Expr):
    child: Expr
    negated: bool = False
    dtype: DataType = BOOLEAN

    def eval(self, batch: Batch) -> ColumnVector:
        v = self.child.eval(batch)
        mask = v.null_mask()
        result = (~mask if self.negated else mask).astype(np.int64)
        return ColumnVector(BOOLEAN, result, None)

    def eval_row(self, row: dict):
        v = self.child.eval_row(row)
        is_null = v is None
        return int(is_null != self.negated)

    def references(self) -> set[str]:
        return self.child.references()


@dataclass
class Between(Expr):
    child: Expr
    low: Expr
    high: Expr
    negated: bool = False
    dtype: DataType = BOOLEAN

    def eval(self, batch: Batch) -> ColumnVector:
        inner = Logical(
            "AND",
            [Compare(">=", self.child, self.low), Compare("<=", self.child, self.high)],
        )
        result = inner.eval(batch)
        if self.negated:
            return Not(_Materialised(result)).eval(batch)
        return result

    def eval_row(self, row: dict):
        v = self.child.eval_row(row)
        lo = self.low.eval_row(row)
        hi = self.high.eval_row(row)
        if v is None or lo is None or hi is None:
            return None
        result = int(lo <= v <= hi)
        return int(not result) if self.negated else result

    def references(self) -> set[str]:
        return self.child.references() | self.low.references() | self.high.references()


@dataclass
class InList(Expr):
    child: Expr
    values: list[object]  # physical constants
    negated: bool = False
    dtype: DataType = BOOLEAN

    def eval(self, batch: Batch) -> ColumnVector:
        v = self.child.eval(batch)
        candidates = [x for x in self.values if x is not None]
        has_null_item = len(candidates) != len(self.values)
        matched = np.isin(v.values, candidates)
        nulls = v.null_mask().copy()
        if has_null_item:
            # x IN (.., NULL) is NULL when unmatched.
            nulls |= ~matched
        if self.negated:
            result = (~matched).astype(np.int64)
        else:
            result = matched.astype(np.int64)
        return ColumnVector(BOOLEAN, result, nulls if nulls.any() else None)

    def eval_row(self, row: dict):
        v = self.child.eval_row(row)
        if v is None:
            return None
        candidates = [x for x in self.values if x is not None]
        has_null_item = len(candidates) != len(self.values)
        matched = v in candidates
        if not matched and has_null_item:
            return None
        return int(matched != self.negated)

    def references(self) -> set[str]:
        return self.child.references()


@dataclass
class Like(Expr):
    child: Expr
    pattern: str
    negated: bool = False
    escape: str | None = None
    dtype: DataType = BOOLEAN

    def __post_init__(self):
        self._regex = re.compile(_like_to_regex(self.pattern, self.escape), re.S)

    def eval(self, batch: Batch) -> ColumnVector:
        v = self.child.eval(batch)
        out = np.zeros(v.values.size, dtype=np.int64)
        regex = self._regex
        for i, s in enumerate(v.values.tolist()):
            out[i] = 1 if regex.match(str(s)) else 0
        if self.negated:
            out = 1 - out
        return ColumnVector(BOOLEAN, out, v.nulls)

    def eval_row(self, row: dict):
        v = self.child.eval_row(row)
        if v is None:
            return None
        matched = bool(self._regex.match(str(v)))
        return int(matched != self.negated)

    def references(self) -> set[str]:
        return self.child.references()


def _like_to_regex(pattern: str, escape: str | None) -> str:
    out = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if escape and ch == escape and i + 1 < len(pattern):
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    return "".join(out) + r"\Z"


@dataclass
class Cast(Expr):
    child: Expr
    dtype: DataType = DOUBLE
    scale_shift: int = 0  # decimal rescaling: multiply by 10**shift

    def eval(self, batch: Batch) -> ColumnVector:
        v = self.child.eval(batch)
        values = _cast_physical(
            v.values, v.dtype, self.dtype, self.scale_shift, v.nulls
        )
        return ColumnVector(self.dtype, values, v.nulls)

    def eval_row(self, row: dict):
        v = self.child.eval_row(row)
        if v is None:
            return None
        return _cast_physical_scalar(v, self.child.dtype, self.dtype, self.scale_shift)

    def references(self) -> set[str]:
        return self.child.references()


def _cast_physical(values, from_dt, to_dt, scale_shift, nulls):
    from repro.storage.column import to_boundary_scalar, to_physical_scalar

    target = to_dt.numpy_dtype
    if from_dt.kind is TypeKind.DECIMAL and to_dt.kind is TypeKind.DECIMAL:
        if scale_shift >= 0:
            return values * (10 ** scale_shift)
        return values // (10 ** (-scale_shift))
    if from_dt.kind is TypeKind.DECIMAL and target == np.float64:
        return values.astype(np.float64) / (10 ** from_dt.scale)
    if to_dt.kind is TypeKind.DECIMAL and values.dtype != object:
        scaled = np.asarray(values, dtype=np.float64) * (10 ** to_dt.scale)
        return np.round(scaled).astype(np.int64)
    if target != object and values.dtype != object:
        if target == np.int64 and values.dtype == np.float64:
            return np.trunc(values).astype(np.int64)
        return values.astype(target)
    # Slow path through boundary values (strings <-> anything).
    out = np.empty(values.size, dtype=target)
    for i, raw in enumerate(values.tolist()):
        if nulls is not None and nulls[i]:
            out[i] = "" if target == object else 0
            continue
        boundary = to_boundary_scalar(raw, from_dt)
        out[i] = to_physical_scalar(boundary, to_dt)
    return out


def _cast_physical_scalar(value, from_dt, to_dt, scale_shift):
    from repro.storage.column import to_boundary_scalar, to_physical_scalar

    if from_dt.kind is TypeKind.DECIMAL and to_dt.kind is TypeKind.DECIMAL:
        if scale_shift >= 0:
            return value * (10 ** scale_shift)
        return value // (10 ** (-scale_shift))
    boundary = to_boundary_scalar(value, from_dt)
    return to_physical_scalar(boundary, to_dt)


@dataclass
class CaseExpr(Expr):
    """Searched CASE: WHEN <cond> THEN <value> ... ELSE <value> END."""

    whens: list[tuple[Expr, Expr]]
    default: Expr | None
    dtype: DataType = DOUBLE

    def eval(self, batch: Batch) -> ColumnVector:
        n = batch.n
        np_dtype = self.dtype.numpy_dtype
        filler = "" if np_dtype == object else 0
        values = np.full(n, filler, dtype=np_dtype)
        nulls = np.ones(n, dtype=bool)
        decided = np.zeros(n, dtype=bool)
        for cond, result in self.whens:
            cv = cond.eval(batch)
            fire = (cv.values.astype(bool)) & ~cv.null_mask() & ~decided
            if fire.any():
                rv = result.eval(batch)
                values[fire] = rv.values[fire]
                nulls[fire] = rv.null_mask()[fire]
                decided |= fire
        remaining = ~decided
        if self.default is not None and remaining.any():
            dv = self.default.eval(batch)
            values[remaining] = dv.values[remaining]
            nulls[remaining] = dv.null_mask()[remaining]
        return ColumnVector(self.dtype, values, nulls if nulls.any() else None)

    def eval_row(self, row: dict):
        for cond, result in self.whens:
            c = cond.eval_row(row)
            if c:
                return result.eval_row(row)
        if self.default is not None:
            return self.default.eval_row(row)
        return None

    def references(self) -> set[str]:
        out = set()
        for cond, result in self.whens:
            out |= cond.references() | result.references()
        if self.default is not None:
            out |= self.default.references()
        return out


@dataclass
class FuncCall(Expr):
    """A scalar function call.

    ``vector_fn(args: list[ColumnVector], batch) -> ColumnVector`` and
    ``scalar_fn(args: list[physical|None]) -> physical|None`` come from the
    SQL function registry (:mod:`repro.sql.functions`).
    """

    name: str
    args: list[Expr]
    vector_fn: object = None
    scalar_fn: object = None
    dtype: DataType = DOUBLE

    def eval(self, batch: Batch) -> ColumnVector:
        arg_vectors = [a.eval(batch) for a in self.args]
        if self.vector_fn is not None:
            return self.vector_fn(arg_vectors, batch, self.dtype)
        # Fall back to row-wise application of the scalar function.
        n = batch.n
        np_dtype = self.dtype.numpy_dtype
        filler = "" if np_dtype == object else 0
        values = np.full(n, filler, dtype=np_dtype)
        nulls = np.zeros(n, dtype=bool)
        masks = [v.null_mask() for v in arg_vectors]
        lists = [v.values.tolist() for v in arg_vectors]
        for i in range(n):
            args = [
                None if masks[j][i] else lists[j][i] for j in range(len(arg_vectors))
            ]
            result = self.scalar_fn(args)
            if result is None:
                nulls[i] = True
            else:
                values[i] = result
        return ColumnVector(self.dtype, values, nulls if nulls.any() else None)

    def eval_row(self, row: dict):
        args = [a.eval_row(row) for a in self.args]
        return self.scalar_fn(args)

    def references(self) -> set[str]:
        out = set()
        for a in self.args:
            out |= a.references()
        return out


@dataclass
class _Materialised(Expr):
    """Wrap an already-computed vector as an expression (internal)."""

    vector: ColumnVector
    dtype: DataType = BOOLEAN

    def __post_init__(self):
        self.dtype = self.vector.dtype

    def eval(self, batch: Batch) -> ColumnVector:
        return self.vector


def selection_mask(predicate: Expr, batch: Batch) -> np.ndarray:
    """Evaluate a predicate and return the rows it keeps (TRUE only)."""
    result = predicate.eval(batch)
    return result.values.astype(bool) & ~result.null_mask()


def make_arith(op: str, left: Expr, right: Expr) -> Arith:
    """Build an Arith node with SQL result typing (scale alignment for
    exact numerics is the planner's job; here we derive the output type)."""
    if op == "||":
        from repro.types.datatypes import varchar_type

        return Arith(op, left, right, varchar_type())
    result = promote(left.dtype, right.dtype)
    if op == "/" and result.kind is TypeKind.DECIMAL:
        result = DOUBLE
    if result.kind is TypeKind.DECIMAL:
        left, right, result = _align_decimals(op, left, right, result)
    elif result.is_approximate:
        # Mixed decimal/approximate arithmetic: descale the decimal side.
        if left.dtype.kind is TypeKind.DECIMAL:
            left = Cast(left, result)
        if right.dtype.kind is TypeKind.DECIMAL:
            right = Cast(right, result)
    return Arith(op, left, right, result)


def _align_decimals(op, left, right, result):
    """Rescale decimal operands so int64 arithmetic is exact."""
    from repro.types.datatypes import decimal_type

    def scale_of(e: Expr) -> int:
        return e.dtype.scale if e.dtype.kind is TypeKind.DECIMAL else 0

    ls, rs = scale_of(left), scale_of(right)
    if op in ("+", "-", "%"):
        target = max(ls, rs)
        if ls < target:
            left = Cast(left, decimal_type(31, target), scale_shift=target - ls)
        if rs < target:
            right = Cast(right, decimal_type(31, target), scale_shift=target - rs)
        return left, right, decimal_type(31, target)
    if op == "*":
        return left, right, decimal_type(31, min(31, ls + rs))
    return left, right, result
