"""ORDER BY: multi-key vectorised sort with null placement."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.expression import Batch, Expr
from repro.engine.operators import Operator


@dataclass
class SortKey:
    """One ORDER BY term."""

    expr: Expr
    ascending: bool = True
    nulls_first: bool | None = None  # None = dialect default (last for ASC)

    def nulls_go_first(self) -> bool:
        if self.nulls_first is not None:
            return self.nulls_first
        # Default: NULLs sort as the largest value (DB2/Oracle behaviour):
        # last for ASC, first for DESC.
        return not self.ascending


class SortOp(Operator):
    """Stable multi-key sort (pipeline breaker)."""

    def __init__(self, child: Operator, keys: list[SortKey]):
        if not keys:
            raise ValueError("sort needs at least one key")
        self.child = child
        self.keys = keys

    def execute(self):
        batch = self.child.run()
        if batch.n == 0:
            yield batch
            return
        order = np.arange(batch.n)
        # Stable sorts applied from the least-significant key to the most.
        for key in reversed(self.keys):
            vector = key.expr.eval(batch)
            values = vector.values[order]
            nulls = vector.null_mask()[order]
            rank = _sortable_rank(values, nulls, key)
            order = order[np.argsort(rank, kind="stable")]
        yield batch.take(order)


def _sortable_rank(values: np.ndarray, nulls: np.ndarray, key: SortKey) -> np.ndarray:
    """Produce an int rank array encoding direction and null placement."""
    # Dense-rank the values so equal values share a rank (ties must not
    # perturb later, less-significant sort keys).
    uniq, inverse = np.unique(values, return_inverse=True)
    numeric = inverse.astype(np.int64)
    span = len(uniq)
    if not key.ascending:
        numeric = span - numeric
    # Push NULLs beyond either end.
    numeric = numeric + 1  # reserve 0 / span+2 for nulls
    numeric[nulls] = 0 if key.nulls_go_first() else span + 2
    return numeric
