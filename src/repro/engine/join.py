"""Cache-conscious partitioned hash join (paper II.B.7).

The build side is partitioned by hash into chunks sized to fit a processor
cache before hash tables are built — the Hybrid-Hash-Join / MonetDB lineage
the paper cites.  The probe side is partitioned the same way, so each probe
touches exactly one cache-sized table.  Join types: inner, left, right,
full, semi, anti.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.expression import Batch, Expr, selection_mask
from repro.engine.operators import Operator
from repro.storage.column import ColumnVector


@dataclass
class JoinStats:
    """Observability counters for one join execution (monitor layer)."""

    build_rows: int = 0
    probe_rows: int = 0
    matched_pairs: int = 0
    output_rows: int = 0

#: Target build-partition size: rows per partition such that a small hash
#: table stays cache-resident (an L2/L3-sized chunk in the paper's terms).
DEFAULT_PARTITION_ROWS = 8_192

_JOIN_TYPES = {"inner", "left", "right", "full", "semi", "anti"}


class HashJoinOp(Operator):
    """Equi-join two operators on lists of key columns.

    Args:
        left / right: child operators (left is the probe side; right is
            built into hash tables).
        left_keys / right_keys: equal-length column name lists.
        join_type: inner / left / right / full / semi / anti (semi and anti
            emit only left columns).
        residual: optional non-equi condition evaluated on joined rows.
        partition_rows: advisory partition size.  The execution strategy
            (factorise keys, sort the build side, binary-search probes) is
            the vectorised analogue of cache-sized partitioning: the sort
            clusters equal keys so each probe touches one dense run.  With
            a parallel ``pool`` it doubles as the probe morsel size.
        pool: optional :class:`~repro.parallel.pool.WorkerPool`.  When
            parallel, probe morsels binary-search the (shared, read-only)
            sorted build side concurrently; per-morsel match lists
            concatenate in morsel order, which reproduces the serial
            probe's output exactly (each probe row's matches depend only
            on that row).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: list[str],
        right_keys: list[str],
        join_type: str = "inner",
        residual: Expr | None = None,
        partition_rows: int = DEFAULT_PARTITION_ROWS,
        pool=None,
    ):
        if join_type not in _JOIN_TYPES:
            raise ValueError("unknown join type %r" % join_type)
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ValueError("join needs matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.join_type = join_type
        self.residual = residual
        self.partition_rows = partition_rows
        self.pool = pool
        self.stats = JoinStats()
        self.parallel_run = None

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _encoded_keys(probe: Batch, build: Batch, left_keys, right_keys):
        """Factorise both sides' keys into comparable int64 codes.

        Returns (probe_codes, probe_valid, build_codes, build_valid): equal
        codes mean equal key tuples; rows with NULL key parts are invalid.
        The factorisation pass is the "partition both sides the same way"
        step of a partitioned join, expressed as vectorised dictionary
        coding.
        """
        n_probe, n_build = probe.n, build.n
        probe_valid = np.ones(n_probe, dtype=bool)
        build_valid = np.ones(n_build, dtype=bool)
        probe_combined = np.zeros(n_probe, dtype=np.int64)
        build_combined = np.zeros(n_build, dtype=np.int64)
        for lk, rk in zip(left_keys, right_keys):
            lv = probe.columns[lk]
            rv = build.columns[rk]
            probe_valid &= ~lv.null_mask()
            build_valid &= ~rv.null_mask()
            left_vals, right_vals = _align_key_arrays(lv.values, rv.values)
            union = np.concatenate([left_vals, right_vals])
            distinct, inverse = np.unique(union, return_inverse=True)
            lcodes = inverse[:n_probe].astype(np.int64)
            rcodes = inverse[n_probe:].astype(np.int64)
            radix = np.int64(max(1, distinct.size))
            probe_combined = probe_combined * radix + lcodes
            build_combined = build_combined * radix + rcodes
        return probe_combined, probe_valid, build_combined, build_valid

    def _direct_lookup_join(self, probe: Batch, build: Batch,
                            matched_left: np.ndarray, pool):
        """Direct-address probe for unique small-domain int64 build keys.

        The workhorse analytical joins are foreign-key lookups against a
        dimension table: one int64 key column, unique build values in a
        dense-ish range.  For those, a direct lookup table replaces the
        factorise→sort→binary-search pipeline (three ``O(n log n)`` passes)
        with two ``O(n)`` scatter/gather passes.  Returns None when the
        shape does not apply — multi-column keys, non-int64 keys, sparse
        domains, duplicate build keys — leaving the sorted path's multi-
        match ordering untouched.  Output is byte-identical to the sorted
        probe: with unique build keys each probe row has 0 or 1 match, so
        both paths emit matches in probe-row order.
        """
        if len(self.left_keys) != 1:
            return None
        lv = probe.columns[self.left_keys[0]]
        rv = build.columns[self.right_keys[0]]
        if lv.values.dtype != np.int64 or rv.values.dtype != np.int64:
            return None
        b_valid = ~rv.null_mask()
        build_rows = np.nonzero(b_valid)[0]
        if not build_rows.size:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        bvals = rv.values[build_rows]
        bmin = int(bvals.min())
        bmax = int(bvals.max())
        span = bmax - bmin + 1
        if span > 4 * (bvals.size + probe.n) + 65_536:
            return None
        offsets = bvals - bmin
        if int(np.bincount(offsets, minlength=span).max()) > 1:
            return None
        lookup = np.full(span, -1, dtype=np.int64)
        lookup[offsets] = build_rows
        probe_rows = np.nonzero(~lv.null_mask())[0]
        pk_live = lv.values[probe_rows]

        def probe_span(rng):
            start, stop = rng
            rows = probe_rows[start:stop]
            keys = pk_live[start:stop]
            in_range = (keys >= bmin) & (keys <= bmax)
            idx = np.where(in_range, keys - bmin, 0)
            targets = lookup[idx]
            hit = in_range & (targets >= 0)
            return rows[hit], targets[hit]

        from repro.parallel.morsel import batch_spans

        spans = batch_spans(
            probe_rows.size, self.partition_rows, pool.parallelism
        )
        if not spans:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        parts = pool.map(probe_span, spans, label="join-probe")
        self.parallel_run = pool.last_run
        li = np.concatenate([part[0] for part in parts])
        ri = np.concatenate([part[1] for part in parts])
        matched_left[li] = True
        return li.astype(np.int64), ri.astype(np.int64)

    def _vector_join(self, probe: Batch, build: Batch, matched_left: np.ndarray):
        """Vectorised equi-join: factorise keys, sort the build side, and
        probe with binary search — whole-column operations only."""
        if self.pool is not None and self.pool.is_parallel:
            fast = self._direct_lookup_join(probe, build, matched_left, self.pool)
            if fast is not None:
                return fast
        pk, p_valid, bk, b_valid = self._encoded_keys(
            probe, build, self.left_keys, self.right_keys
        )
        build_rows = np.nonzero(b_valid)[0]
        if not build_rows.size:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        bk_live = bk[build_rows]
        order = np.argsort(bk_live, kind="stable")
        sorted_bk = bk_live[order]
        sorted_build_rows = build_rows[order]
        probe_rows = np.nonzero(p_valid)[0]
        pk_live = pk[probe_rows]
        pool = self.pool
        if pool is not None and pool.is_parallel:
            from repro.parallel.morsel import morsel_ranges

            morsels = morsel_ranges(probe_rows.size, self.partition_rows)
            if len(morsels) > 1:
                return self._parallel_probe(
                    pool, morsels, probe_rows, pk_live,
                    sorted_bk, sorted_build_rows, matched_left,
                )
        lo = np.searchsorted(sorted_bk, pk_live, side="left")
        hi = np.searchsorted(sorted_bk, pk_live, side="right")
        counts = hi - lo
        hit = counts > 0
        matched_left[probe_rows[hit]] = True
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        li = np.repeat(probe_rows, counts)
        starts = np.repeat(lo, counts)
        cumulative = np.repeat(np.cumsum(counts) - counts, counts)
        positions = starts + (np.arange(total) - cumulative)
        ri = sorted_build_rows[positions]
        return li.astype(np.int64), ri.astype(np.int64)

    def _parallel_probe(self, pool, morsels, probe_rows, pk_live,
                        sorted_bk, sorted_build_rows, matched_left):
        """Probe morsels against the shared sorted build side in parallel.

        Each probe row's matches are a function of that row alone
        (``positions = lo[r] + 0..count[r]-1``), so concatenating the
        per-morsel (li, ri) pairs in morsel order is byte-identical to the
        single whole-column probe.  Workers only read the shared arrays and
        write disjoint slices of nothing — ``matched_left`` updates happen
        on the gather side.
        """

        def probe_morsel(rng):
            start, stop = rng
            rows = probe_rows[start:stop]
            keys = pk_live[start:stop]
            lo = np.searchsorted(sorted_bk, keys, side="left")
            hi = np.searchsorted(sorted_bk, keys, side="right")
            counts = hi - lo
            hit_rows = rows[counts > 0]
            total = int(counts.sum())
            if total == 0:
                empty = np.zeros(0, dtype=np.int64)
                return hit_rows, empty, empty
            li = np.repeat(rows, counts)
            starts = np.repeat(lo, counts)
            cumulative = np.repeat(np.cumsum(counts) - counts, counts)
            positions = starts + (np.arange(total) - cumulative)
            ri = sorted_build_rows[positions]
            return hit_rows, li.astype(np.int64), ri.astype(np.int64)

        parts = pool.map(probe_morsel, morsels, label="join-probe")
        self.parallel_run = pool.last_run
        for hit_rows, _, _ in parts:
            matched_left[hit_rows] = True
        li = np.concatenate([part[1] for part in parts])
        ri = np.concatenate([part[2] for part in parts])
        return li, ri

    # -- execution ---------------------------------------------------------------

    def execute(self):
        build = self.right.run()
        probe = self.left.run()
        self.stats = JoinStats(build_rows=build.n, probe_rows=probe.n)
        have_schemas = bool(probe.columns) and bool(build.columns)
        matched_left = np.zeros(probe.n, dtype=bool)
        matched_right = np.zeros(build.n, dtype=bool)
        if have_schemas and probe.n and build.n:
            li, ri = self._vector_join(probe, build, matched_left)
        else:
            li = np.zeros(0, dtype=np.int64)
            ri = np.zeros(0, dtype=np.int64)

        if self.residual is not None and li.size:
            joined = self._stitch(probe, build, li, ri)
            keep = selection_mask(self.residual, joined)
            # Residual failures void the match for outer bookkeeping.
            matched_left[:] = False
            matched_left[li[keep]] = True
            li, ri = li[keep], ri[keep]
        if ri.size:
            matched_right[ri] = True
        self.stats.matched_pairs = int(li.size)

        if self.join_type == "semi":
            result = probe.filter(matched_left)
            self.stats.output_rows = result.n
            if result.n:
                yield result
            return
        if self.join_type == "anti":
            # NULL keys never match, and in NOT-IN-style anti joins they
            # still qualify here (planner handles NOT IN null semantics).
            result = probe.filter(~matched_left)
            self.stats.output_rows = result.n
            if result.n:
                yield result
            return

        batches = []
        inner = self._stitch(probe, build, li, ri)
        if inner.n:
            batches.append(inner)
        if self.join_type in ("left", "full"):
            unmatched = ~matched_left
            if unmatched.any():
                batches.append(self._null_extend(probe.filter(unmatched), build, right_null=True))
        if self.join_type in ("right", "full"):
            unmatched = ~matched_right
            if unmatched.any():
                batches.append(self._null_extend(build.filter(unmatched), probe, right_null=False))
        merged = Batch.concat(batches) if batches else Batch(columns={}, n=0)
        self.stats.output_rows = merged.n
        if merged.n:
            yield merged

    def _stitch(self, probe: Batch, build: Batch, li: np.ndarray, ri: np.ndarray) -> Batch:
        columns = {}
        for name, vector in probe.columns.items():
            columns[name] = vector.take(li)
        for name, vector in build.columns.items():
            if name not in columns:
                columns[name] = vector.take(ri)
        return Batch.from_columns(columns)

    def _null_extend(self, kept: Batch, other: Batch, right_null: bool) -> Batch:
        return null_extend(kept, other, right_null)


def _align_key_arrays(left: np.ndarray, right: np.ndarray):
    """Bring two key arrays to a unifiable dtype for factorisation."""
    if left.dtype == object or right.dtype == object:
        if left.dtype != object:
            boxed = np.empty(left.size, dtype=object)
            boxed[:] = left.tolist()
            left = boxed
        if right.dtype != object:
            boxed = np.empty(right.size, dtype=object)
            boxed[:] = right.tolist()
            right = boxed
        return left, right
    if left.dtype != right.dtype:
        return left.astype(np.float64), right.astype(np.float64)
    return left, right


def null_extend(kept: Batch, other: Batch, right_null: bool) -> Batch:
    """Pad unmatched outer rows with NULLs for the other side's columns."""
    columns = dict(kept.columns)
    n = kept.n
    for name, vector in other.columns.items():
        if name in columns:
            continue
        np_dtype = vector.dtype.numpy_dtype
        filler = "" if np_dtype == object else 0
        values = np.full(n, filler, dtype=np_dtype)
        columns[name] = ColumnVector(vector.dtype, values, np.ones(n, dtype=bool))
    if not right_null:
        # Keep probe-side column ordering stable for right/full joins.
        ordered = {}
        for name in other.columns:
            ordered[name] = columns[name]
        for name in kept.columns:
            if name not in ordered:
                ordered[name] = columns[name]
        columns = ordered
    return Batch.from_columns(columns)


class NestedLoopJoinOp(Operator):
    """Fallback join for arbitrary (non-equi) conditions."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        condition: Expr | None,
        join_type: str = "inner",
    ):
        if join_type not in ("inner", "left", "cross"):
            raise ValueError("nested-loop join supports inner/left/cross")
        self.left = left
        self.right = right
        self.condition = condition
        self.join_type = join_type
        self.stats = JoinStats()

    def execute(self):
        left = self.left.run()
        right = self.right.run()
        self.stats = JoinStats(build_rows=right.n, probe_rows=left.n)
        if left.n == 0 or (right.n == 0 and self.join_type != "left"):
            return
        li = np.repeat(np.arange(left.n), max(right.n, 1))
        ri = np.tile(np.arange(right.n), left.n) if right.n else np.zeros(0, np.int64)
        if right.n == 0:
            cross = None
        else:
            columns = {}
            for name, vector in left.columns.items():
                columns[name] = vector.take(li)
            for name, vector in right.columns.items():
                if name not in columns:
                    columns[name] = vector.take(ri)
            cross = Batch.from_columns(columns)
        if self.condition is not None and cross is not None:
            keep = selection_mask(self.condition, cross)
            matched = np.zeros(left.n, dtype=bool)
            matched[li[keep]] = True
            cross = cross.filter(keep)
        else:
            matched = np.ones(left.n, dtype=bool) if cross is not None else np.zeros(left.n, bool)
        batches = [cross] if cross is not None and cross.n else []
        if self.join_type == "left":
            unmatched = ~matched
            if unmatched.any():
                batches.append(null_extend(left.filter(unmatched), right, right_null=True))
        if batches:
            merged = Batch.concat(batches)
            self.stats.output_rows = merged.n
            yield merged
