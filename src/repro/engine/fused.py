"""Fused region pipelines: predicate→project→aggregate in whole-array passes.

The paper's BLU engine gets its speed from running each query stage as a
vectorised kernel over columnar data rather than interpreting tuples.  Our
morsel-parallel group-by originally did the opposite inside each task —
per-group Python dictionaries of ``PartialAgg`` states — so DOP-4 execution
lost to the serial engine on wall clock.  This module compiles a
parallel-safe ``GroupByOp`` (and, when the plan allows, its whole
project/filter/scan chain) into *fused kernels*: every pool task makes a
handful of GIL-releasing numpy calls over its span of rows and returns
small per-group accumulator arrays that merge associatively.

Three layers:

* **Span reduction** (:func:`_reduce_span`): factorise the span's group
  keys with the :mod:`repro.simd.factorize` kernels, then reduce every
  aggregate with ``bincount`` / ``ufunc.at`` scatter ops.  The accumulator
  arithmetic is exactly the serial engine's (modular int64 sums, float64
  division of exact integer sums for AVG), so merged results are
  bit-identical to the unfused operator for every ``parallel_safe()`` plan.
* **Scan fusion** (:func:`match_scan_agg` / :func:`execute_scan_agg`):
  when the group-by sits on a project/filter chain over a region-organised
  table scan, each pool task scans K regions (synopsis skipping and
  compressed predicates included) and reduces them in place — the full
  decoded scan output is never materialised or concatenated.  Compiled
  chains are cached in :data:`PIPELINE_CACHE`, an LRU keyed on plan shape.
* **Transport**: thread-backend tasks close over the arrays; under the
  process backend numeric inputs ship via ``multiprocessing.shared_memory``
  (:func:`_map_spans_shm`) so worker processes read the buffers without
  copying them through pickles.  Non-picklable kernels (object columns,
  buffer-pool closures) fall back to the thread backend inside
  :class:`~repro.parallel.pool.WorkerPool`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.engine.expression import Batch, selection_mask
from repro.engine.operators import FilterOp, ProjectOp, ScanStats, TableScanOp
from repro.parallel.morsel import batch_items, batch_spans
from repro.simd.factorize import factorize, factorize_int
from repro.storage.column import ColumnVector
from repro.types.datatypes import BIGINT, DOUBLE
from repro.verify import sanitizer

#: Combined radix beyond which multi-column key packing would overflow
#: int64; such plans revert to the unfused (state-merging) path.
_RADIX_LIMIT = 1 << 62

_INT64_MAX = np.iinfo(np.int64).max
_INT64_MIN = np.iinfo(np.int64).min


class FusionFallback(Exception):
    """A fused kernel cannot reproduce serial semantics for this input;
    the caller must revert to the unfused execution path."""


# -- group-key encoding ----------------------------------------------------------


def group_codes(key_pairs):
    """Dense group ids plus per-group key columns for one row span.

    ``key_pairs`` is one ``(values, nulls-or-None)`` pair per key column.
    Returns ``(ids, key_cols, k)``: int64 ids in ``0..k-1`` whose ascending
    order is the serial engine's group output order (per column NULL first,
    then values ascending), and ``key_cols`` as ``(values, nulls)`` pairs
    holding each group's key with the physical filler (0 / "") under NULL —
    the same representation :func:`repro.engine.aggregate._key_column`
    produces.
    """
    encoded = []
    uniques = []
    radixes = []
    for values, nulls in key_pairs:
        codes, uniq = factorize(values, nulls)
        encoded.append(codes)
        uniques.append(uniq)
        radixes.append(uniq.size + 1)
    combined = encoded[0]
    size = radixes[0]
    for codes, radix in zip(encoded[1:], radixes[1:]):
        if size > _RADIX_LIMIT // radix:
            raise FusionFallback("combined group-key radix exceeds int64")
        size *= radix
        combined = combined * radix + codes
    packed_codes, packed_uniques = factorize_int(combined)
    ids = packed_codes - 1
    k = packed_uniques.size
    # Unpack each group's per-column code right-to-left.
    codes_per_col: list = [None] * len(key_pairs)
    rem = packed_uniques
    for i in range(len(key_pairs) - 1, 0, -1):
        codes_per_col[i] = rem % radixes[i]
        rem = rem // radixes[i]
    codes_per_col[0] = rem
    key_cols = []
    for (values, _), uniq, codes in zip(key_pairs, uniques, codes_per_col):
        nulls = codes == 0
        filler = "" if values.dtype == object else 0
        vals = np.full(k, filler, dtype=values.dtype)
        live = ~nulls
        if live.any():
            vals[live] = uniq[codes[live] - 1]
        key_cols.append((vals, nulls if nulls.any() else None))
    return ids, key_cols, k


# -- aggregate recipes -----------------------------------------------------------


@dataclass
class AggRecipe:
    """One aggregate compiled to a fused reduction.

    ``kind``: ``rows`` (COUNT(*)), ``count``, ``sum``, ``avg``, ``min``,
    ``max``.  ``arg_index`` points into the evaluated argument-vector list
    (-1 for ``rows``).
    """

    kind: str
    alias: str
    out_dtype: object
    arg_index: int = -1


_RECIPE_KINDS = {"COUNT": "count", "SUM": "sum", "AVG": "avg", "MIN": "min", "MAX": "max"}


def compile_recipes(aggregates):
    """Compile parallel-safe :class:`AggregateSpec` entries into recipes.

    Returns ``(recipes, arg_exprs)``; the caller evaluates ``arg_exprs``
    once per input batch/region and hands raw arrays to the span kernels.
    Only call for plans where ``GroupByOp.parallel_safe()`` holds.
    """
    recipes = []
    arg_exprs = []
    for spec in aggregates:
        func = spec.func.upper()
        if func == "COUNT" and not spec.args:
            recipes.append(AggRecipe("rows", spec.alias, spec.output_type()))
            continue
        kind = _RECIPE_KINDS.get(func)
        if kind is None or spec.distinct:
            raise FusionFallback("aggregate %s is not fusable" % spec.func)
        recipes.append(
            AggRecipe(kind, spec.alias, spec.output_type(), len(arg_exprs))
        )
        arg_exprs.append(spec.args[0])
    return recipes, arg_exprs


# -- span kernels (run inside pool tasks) ----------------------------------------


def _min_max_span(kind, ids, values, k):
    """Per-group MIN/MAX accumulators for one span.

    Numeric arrays use a single ``ufunc.at`` scatter with the identity
    sentinel (the merge distinguishes empty groups by count, never by
    sentinel value); object (string) arrays keep a ``None``-marked Python
    reduction over the span's distinct-rows only.
    """
    if values.dtype == object:
        out = np.full(k, None, dtype=object)
        if kind == "min":
            for g, v in zip(ids.tolist(), values.tolist()):
                cur = out[g]
                if cur is None or v < cur:
                    out[g] = v
        else:
            for g, v in zip(ids.tolist(), values.tolist()):
                cur = out[g]
                if cur is None or v > cur:
                    out[g] = v
        return out
    if values.dtype == np.int64:
        sentinel = _INT64_MAX if kind == "min" else _INT64_MIN
    else:
        sentinel = np.inf if kind == "min" else -np.inf
    out = np.full(k, sentinel, dtype=values.dtype)
    if values.size:
        (np.minimum if kind == "min" else np.maximum).at(out, ids, values)
    return out


def _reduce_span(n, key_pairs, arg_pairs, recipe_kinds):
    """Reduce one contiguous span into per-group accumulator arrays.

    Returns ``(key_cols, rows, accs)`` — everything sized to the span's
    local group count k, so a task's result is tiny regardless of span
    length.  ``accs`` holds ``None`` for ``rows`` recipes, else
    ``(counts, payload)`` with payload ``None`` (count), int64 sums
    (sum/avg), or min/max accumulators.
    """
    if key_pairs:
        ids, key_cols, k = group_codes(key_pairs)
    else:
        ids = np.zeros(n, dtype=np.int64)
        key_cols = []
        k = 1
    rows = np.bincount(ids, minlength=k).astype(np.int64)
    accs = []
    for kind, arg_index in recipe_kinds:
        if kind == "rows":
            accs.append(None)
            continue
        values, nulls = arg_pairs[arg_index]
        if nulls is not None:
            live = ~nulls
            lids = ids[live]
            lvals = values[live]
        else:
            lids = ids
            lvals = values
        counts = np.bincount(lids, minlength=k).astype(np.int64)
        if kind == "count":
            accs.append((counts, None))
        elif kind in ("sum", "avg"):
            if lvals.dtype != np.int64:
                # parallel_safe() guarantees an integral argument; coerce
                # stray representations to the exact accumulator.
                lvals = lvals.astype(np.int64)
            sums = np.zeros(k, dtype=np.int64)
            np.add.at(sums, lids, lvals)
            accs.append((counts, sums))
        else:
            accs.append((counts, _min_max_span(kind, lids, lvals, k)))
    return key_cols, rows, accs


# -- global merge ----------------------------------------------------------------


def merge_fused(keys_meta, recipes, partials):
    """Merge span partials into final output columns.

    ``keys_meta`` is ``[(alias, DataType)]`` for the key columns.  The
    candidate group keys of all spans re-encode through
    :func:`group_codes` — a pass over per-span *group counts*, not rows —
    which also fixes the output order to the serial engine's.  Every
    accumulator merge is order-independent (modular int64 addition,
    min/max), so worker scheduling cannot affect the result.
    """
    n_keys = len(keys_meta)
    if partials:
        if n_keys:
            cand_pairs = []
            for c in range(n_keys):
                vals = np.concatenate([p[0][c][0] for p in partials])
                masks = [p[0][c][1] for p in partials]
                if any(m is not None for m in masks):
                    nulls = np.concatenate(
                        [
                            m if m is not None else np.zeros(p[0][c][0].size, dtype=bool)
                            for p, m in zip(partials, masks)
                        ]
                    )
                else:
                    nulls = None
                cand_pairs.append((vals, nulls))
            gids, key_cols, n_groups = group_codes(cand_pairs)
        else:
            total = sum(p[1].size for p in partials)
            gids = np.zeros(total, dtype=np.int64)
            key_cols = []
            n_groups = 1
    else:
        gids = np.zeros(0, dtype=np.int64)
        key_cols = [
            (np.empty(0, dtype=dt.numpy_dtype), None) for _, dt in keys_meta
        ]
        n_groups = 0 if n_keys else 1

    rows = np.zeros(n_groups, dtype=np.int64)
    counts_g: list = []
    payload_g: list = []
    for recipe in recipes:
        if recipe.kind == "rows":
            counts_g.append(None)
            payload_g.append(None)
            continue
        counts_g.append(np.zeros(n_groups, dtype=np.int64))
        if recipe.kind in ("sum", "avg"):
            payload_g.append(np.zeros(n_groups, dtype=np.int64))
        elif recipe.kind in ("min", "max"):
            np_dtype = recipe.out_dtype.numpy_dtype
            if np_dtype == object:
                payload_g.append(np.full(n_groups, None, dtype=object))
            elif np_dtype == np.int64:
                sentinel = _INT64_MAX if recipe.kind == "min" else _INT64_MIN
                payload_g.append(np.full(n_groups, sentinel, dtype=np.int64))
            else:
                sentinel = np.inf if recipe.kind == "min" else -np.inf
                payload_g.append(np.full(n_groups, sentinel, dtype=np_dtype))
        else:
            payload_g.append(None)

    offset = 0
    for key_cols_local, rows_local, accs_local in partials:
        k_local = rows_local.size
        span_ids = gids[offset : offset + k_local]
        offset += k_local
        np.add.at(rows, span_ids, rows_local)
        for j, recipe in enumerate(recipes):
            if recipe.kind == "rows":
                continue
            counts_local, payload_local = accs_local[j]
            np.add.at(counts_g[j], span_ids, counts_local)
            if recipe.kind in ("sum", "avg"):
                np.add.at(payload_g[j], span_ids, payload_local)
            elif recipe.kind in ("min", "max"):
                if payload_local.dtype == object:
                    target = payload_g[j]
                    if recipe.kind == "min":
                        for pos, value in enumerate(payload_local.tolist()):
                            if value is None:
                                continue
                            g = int(span_ids[pos])
                            cur = target[g]
                            if cur is None or value < cur:
                                target[g] = value
                    else:
                        for pos, value in enumerate(payload_local.tolist()):
                            if value is None:
                                continue
                            g = int(span_ids[pos])
                            cur = target[g]
                            if cur is None or value > cur:
                                target[g] = value
                else:
                    (np.minimum if recipe.kind == "min" else np.maximum).at(
                        payload_g[j], span_ids, payload_local
                    )

    columns: dict[str, ColumnVector] = {}
    for (alias, dtype), (vals, nulls) in zip(keys_meta, key_cols):
        columns[alias] = ColumnVector(dtype, vals, nulls)
    for j, recipe in enumerate(recipes):
        if recipe.kind == "rows":
            columns[recipe.alias] = ColumnVector(BIGINT, rows.copy(), None)
            continue
        counts = counts_g[j]
        if recipe.kind == "count":
            columns[recipe.alias] = ColumnVector(BIGINT, counts, None)
            continue
        empty = counts == 0
        nulls = empty if empty.any() else None
        if recipe.kind in ("sum",):
            columns[recipe.alias] = ColumnVector(recipe.out_dtype, payload_g[j], nulls)
        elif recipe.kind == "avg":
            # Exact integer partial sums; one float64 division reproduces
            # the serial result (empty groups: 0 / 1 == the serial filler).
            out = payload_g[j].astype(np.float64) / np.maximum(counts, 1)
            columns[recipe.alias] = ColumnVector(DOUBLE, out, nulls)
        else:
            payload = payload_g[j]
            if payload.dtype == object:
                out = payload
                out[empty] = ""
            else:
                out = payload
                out[empty] = 0  # serial filler under the NULL mask
            columns[recipe.alias] = ColumnVector(recipe.out_dtype, out, nulls)
    return columns, n_groups


# -- shared-memory transport (process backend) -----------------------------------


def _all_numeric(pairs) -> bool:
    return all(values.dtype != object for values, _ in pairs)


def _attach_shm(desc, opened):
    if desc is None:
        return None
    from multiprocessing import shared_memory

    name, dtype_str, shape = desc
    # Attaching re-registers the segment with the resource tracker, but the
    # fork-context workers share the parent's tracker and its cache is a
    # set, so the duplicate collapses and the parent's unlink() remains the
    # single unregistration.  Do NOT unregister here: that would remove the
    # entry early and make the parent's unlink() a double-unregister.
    # flow-ok: resource-pairing (registered in `opened` before any fallible op; _shm_reduce_task closes every registered segment in its finally)
    shm = shared_memory.SharedMemory(name=name)
    opened.append(shm)
    return np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm.buf)


def _shm_reduce_task(item):
    """Module-level (picklable) span task for the process backend."""
    key_descs, arg_descs, recipe_kinds, span = item
    opened: list = []
    try:
        lo, hi = span

        def load(pair):
            values = _attach_shm(pair[0], opened)
            nulls = _attach_shm(pair[1], opened)
            return (
                values[lo:hi],
                None if nulls is None else nulls[lo:hi],
            )

        key_pairs = [load(pair) for pair in key_descs]
        arg_pairs = [load(pair) for pair in arg_descs]
        # All outputs are freshly-allocated accumulator arrays, so the
        # segments can close as soon as the reduction returns.
        return _reduce_span(hi - lo, key_pairs, arg_pairs, recipe_kinds)
    finally:
        for shm in opened:
            shm.close()


def _map_spans_shm(pool, key_pairs, arg_pairs, recipe_kinds, spans, label):
    """Ship numeric input arrays once via shared memory, then map spans."""
    from multiprocessing import shared_memory

    blocks: list = []

    def ship(array):
        if array is None:
            return None
        arr = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
        blocks.append(shm)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[:] = arr
        return (shm.name, arr.dtype.str, arr.shape)

    try:
        key_descs = [(ship(v), ship(m)) for v, m in key_pairs]
        arg_descs = [(ship(v), ship(m)) for v, m in arg_pairs]
        items = [(key_descs, arg_descs, recipe_kinds, span) for span in spans]
        return pool.map(_shm_reduce_task, items, label=label)
    finally:
        for shm in blocks:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass


def _map_spans(pool, key_pairs, arg_pairs, recipe_kinds, spans, label):
    """Run the span reduction over the pool with the right transport."""
    if (
        pool.backend == "process"
        and not sanitizer.ENABLED
        and len(spans) > 1
        and _all_numeric(key_pairs)
        and _all_numeric(arg_pairs)
    ):
        return _map_spans_shm(pool, key_pairs, arg_pairs, recipe_kinds, spans, label)

    def task(span):
        lo, hi = span
        kp = [
            (v[lo:hi], None if m is None else m[lo:hi]) for v, m in key_pairs
        ]
        ap = [
            (v[lo:hi], None if m is None else m[lo:hi]) for v, m in arg_pairs
        ]
        return _reduce_span(hi - lo, kp, ap, recipe_kinds)

    return pool.map(task, spans, label=label)


# -- batch-level fused group-by (drained child) ----------------------------------


def parallel_group_reduce(op, batch, pool):
    """Fused morsel-parallel group-by over one drained input batch.

    Evaluates key and argument expressions once over the whole batch (one
    vectorised pass each), splits the rows into batched morsel spans, and
    reduces each span with the fused kernels.  Raises
    :class:`FusionFallback` when the key encoding cannot be packed.
    """
    recipes, arg_exprs = compile_recipes(op.aggregates)
    key_vectors = [(alias, expr.eval(batch)) for alias, expr in op.keys]
    arg_vectors = [expr.eval(batch) for expr in arg_exprs]
    key_pairs = [(v.values, v.nulls) for _, v in key_vectors]
    arg_pairs = [(v.values, v.nulls) for v in arg_vectors]
    spans = batch_spans(batch.n, op.morsel_rows, pool.parallelism)
    recipe_kinds = [(r.kind, r.arg_index) for r in recipes]
    partials = _map_spans(
        pool, key_pairs, arg_pairs, recipe_kinds, spans, label="group-by"
    )
    op.parallel_run = pool.last_run
    keys_meta = [(alias, v.dtype) for alias, v in key_vectors]
    columns, n_groups = merge_fused(keys_meta, recipes, partials)
    op.fused_mode = "batch-agg"
    return columns, n_groups


# -- pipeline cache --------------------------------------------------------------


class PipelineCache:
    """LRU cache of compiled fused pipelines keyed on plan shape.

    Entries hold only shape-derived data (projection keep-sets, scan
    column needs) — expression objects bind per plan instance — so a hit
    skips the reference-walking compile step without sharing state between
    queries.
    """

    def __init__(self, capacity: int = 128):
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self._lock = sanitizer.make_lock("fused:pipeline-cache")
        self.hits = 0
        self.misses = 0

    def get(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key, entry) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
            }


PIPELINE_CACHE = PipelineCache()


def _expr_sig(expr) -> str:
    return "%s[%s;%s]" % (
        type(expr).__name__,
        expr.dtype,
        ",".join(sorted(expr.references())),
    )


def _shape_key(op, steps, scan) -> str:
    """Structural signature of the group-by chain (no literal values)."""
    bits = [getattr(op, "shape_key", "") or ""]
    bits.append(
        "keys:" + "|".join("%s=%s" % (a, _expr_sig(e)) for a, e in op.keys)
    )
    bits.append(
        "aggs:"
        + "|".join(
            "%s:%s:%s(%s)"
            % (
                s.alias,
                s.func.upper(),
                int(bool(s.distinct)),
                ",".join(_expr_sig(a) for a in s.args),
            )
            for s in op.aggregates
        )
    )
    for kind, node in steps:
        if kind == "project":
            bits.append(
                "project:"
                + "|".join(
                    "%s=%s" % (a, _expr_sig(e)) for a, e in node.outputs
                )
            )
        else:
            bits.append("filter:" + _expr_sig(node.predicate))
    bits.append(
        "scan:%s(%s)%s/%s"
        % (
            scan.table.schema.name,
            ",".join(scan.columns),
            "|".join("%s %s" % (p.column, p.op) for p in scan.pushed),
            "" if scan.residual is None else _expr_sig(scan.residual),
        )
    )
    return ";".join(bits)


# -- scan→aggregate fusion -------------------------------------------------------


@dataclass
class FusedScanAgg:
    """A compiled scan→(project/filter)*→group-by pipeline."""

    scan: TableScanOp
    steps: list            # top-down [("project", outputs) | ("filter", predicate)]
    needed: frozenset      # scan columns to decode
    cache_state: str       # "hit" | "miss"


def match_scan_agg(op):
    """Compile ``op``'s child chain into a :class:`FusedScanAgg`, or None.

    Fusable shape: a (possibly instrumented) Project/Filter chain ending at
    a multi-region :class:`TableScanOp` without stride emission, sharing
    the group-by's worker pool.  Projections are pruned to the columns the
    keys, aggregates, and intermediate filters actually reference, so the
    scan decodes exactly what the reduction needs.
    """
    node = op.child
    steps = []
    while True:
        inner = getattr(node, "inner", None)
        if inner is not None:  # InstrumentedOp wrapper (EXPLAIN ANALYZE)
            node = inner
            continue
        if isinstance(node, TableScanOp):
            scan = node
            break
        if isinstance(node, (ProjectOp, FilterOp)):
            steps.append(node)
            node = node.child
            continue
        return None
    if scan.stride_rows is not None:
        return None
    if len(scan.regions) < 2:
        return None
    if scan.pool is not None and scan.pool is not op.pool:
        return None

    tagged = [
        ("project" if isinstance(s, ProjectOp) else "filter", s) for s in steps
    ]
    key = _shape_key(op, tagged, scan)
    entry = PIPELINE_CACHE.get(key)
    if entry is not None:
        bound = []
        for (kind, node), keep in zip(tagged, entry["keeps"]):
            if kind == "project":
                bound.append(
                    ("project", [(a, e) for a, e in node.outputs if a in keep])
                )
            else:
                bound.append(("filter", node.predicate))
        return FusedScanAgg(
            scan=scan, steps=bound, needed=entry["needed"], cache_state="hit"
        )

    required: set = set()
    for _, expr in op.keys:
        required |= expr.references()
    for spec in op.aggregates:
        for arg in spec.args:
            required |= arg.references()
    bound = []
    keeps = []
    for kind, node in tagged:
        if kind == "filter":
            required |= node.predicate.references()
            bound.append(("filter", node.predicate))
            keeps.append(None)
        else:
            available = {a for a, _ in node.outputs}
            if not required <= available:
                return None
            outputs = [(a, e) for a, e in node.outputs if a in required]
            if not outputs and node.outputs:
                # COUNT(*)-only plans reference no columns; keep one output
                # as a row-count carrier so batches keep their cardinality.
                outputs = node.outputs[:1]
            bound.append(("project", outputs))
            keeps.append(frozenset(a for a, _ in outputs))
            required = set()
            for _, expr in outputs:
                required |= expr.references()
    if not required and scan.columns:
        required = {scan.columns[0]}
    if not required or not required <= set(scan.columns):
        return None
    needed = frozenset(
        required
        | (scan.residual.references() if scan.residual is not None else set())
    )
    PIPELINE_CACHE.put(key, {"keeps": keeps, "needed": needed})
    return FusedScanAgg(scan=scan, steps=bound, needed=needed, cache_state="miss")


def execute_scan_agg(op, fused: FusedScanAgg, pool):
    """Run a fused scan→aggregate pipeline on the pool.

    Each task scans its batch of regions (skipping, compressed predicates,
    buffer-pool charging — all via the scan's own ``_scan_region``), applies
    the pruned project/filter chain, and reduces to per-group accumulators.
    Returns ``(columns, n_groups, input_rows)`` or ``None`` when a fused
    kernel bails (the caller then runs the unfused plan; scan stats from
    the abandoned attempt are discarded).
    """
    scan = fused.scan
    recipes, arg_exprs = compile_recipes(op.aggregates)
    recipe_kinds = [(r.kind, r.arg_index) for r in recipes]
    key_exprs = [(alias, expr) for alias, expr in op.keys]
    steps_bottom_up = list(reversed(fused.steps))
    needed = set(fused.needed)

    def apply_chain(batch):
        for kind, payload in steps_bottom_up:
            if kind == "filter":
                batch = batch.filter(selection_mask(payload, batch))
            else:
                batch = Batch.from_columns(
                    {alias: expr.eval(batch) for alias, expr in payload}
                )
            if batch.n == 0:
                return batch
        return batch

    def reduce_batch(batch):
        key_pairs = []
        for _, expr in key_exprs:
            vector = expr.eval(batch)
            key_pairs.append((vector.values, vector.nulls))
        arg_pairs = []
        for expr in arg_exprs:
            vector = expr.eval(batch)
            arg_pairs.append((vector.values, vector.nulls))
        return _reduce_span(batch.n, key_pairs, arg_pairs, recipe_kinds)

    def task(group):
        stats = ScanStats()
        n_rows = 0
        parts = []
        for region_idx, region in group:
            batch = scan._scan_region(region_idx, region, needed, stats)
            if batch is None or batch.n == 0:
                continue
            batch = apply_chain(batch)
            if batch.n == 0:
                continue
            n_rows += batch.n
            parts.append(reduce_batch(batch))
        return stats, n_rows, parts

    groups = batch_items(
        list(enumerate(scan.regions)), pool.parallelism
    )
    original_stats = scan.stats
    scan.stats = ScanStats()
    try:
        results = pool.map(
            task, groups, label="fused-scan:%s" % scan.table.schema.name
        )
        run = pool.last_run
        task_stats = ScanStats()
        partials = []
        input_rows = 0
        for stats, n_rows, parts in results:
            task_stats.merge(stats)
            input_rows += n_rows
            partials.extend(parts)
        tail = scan._scan_tail(needed)  # charges scan.stats (the fresh one)
        if tail is not None and tail.n:
            tail = apply_chain(tail)
            if tail.n:
                input_rows += tail.n
                partials.append(reduce_batch(tail))
        keys_meta = [(alias, expr.dtype) for alias, expr in key_exprs]
        columns, n_groups = merge_fused(keys_meta, recipes, partials)
    except FusionFallback:
        scan.stats = original_stats
        return None
    # Commit: task stats merge in region order, then the tail's charges.
    original_stats.merge(task_stats)
    original_stats.merge(scan.stats)
    scan.stats = original_stats
    scan.parallel_run = run
    op.parallel_run = run
    op.fused_mode = "scan-agg"
    op.fused_cache = fused.cache_state
    return columns, n_groups, input_rows
