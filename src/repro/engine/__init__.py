"""The vectorised columnar query engine (paper section II.B).

Operators process data a batch at a time over compressed, column-organised
storage: scans consult synopses (data skipping) and evaluate simple
predicates directly on packed codes (software-SIMD, operating on compressed
data); joins and grouping partition their inputs into cache-sized chunks
(II.B.7).  :mod:`repro.engine.row_engine` is the row-at-a-time baseline used
for the paper's row-vs-column comparison.
"""

from repro.engine.expression import (
    Arith,
    Batch,
    Between,
    CaseExpr,
    Cast,
    ColumnRef,
    Compare,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Logical,
    Not,
)
from repro.engine.aggregate import AggregateSpec, GroupByOp
from repro.engine.join import HashJoinOp
from repro.engine.operators import (
    FilterOp,
    LimitOp,
    ProjectOp,
    SimplePredicate,
    TableScanOp,
    VectorSourceOp,
)
from repro.engine.sort import SortKey, SortOp

__all__ = [
    "AggregateSpec",
    "Arith",
    "Batch",
    "Between",
    "CaseExpr",
    "Cast",
    "ColumnRef",
    "Compare",
    "Expr",
    "FilterOp",
    "FuncCall",
    "GroupByOp",
    "HashJoinOp",
    "InList",
    "IsNull",
    "Like",
    "LimitOp",
    "Literal",
    "Logical",
    "Not",
    "ProjectOp",
    "SimplePredicate",
    "SortKey",
    "SortOp",
    "TableScanOp",
    "VectorSourceOp",
]
