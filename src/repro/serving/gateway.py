"""The serving front door: caches + admission in front of one database.

:class:`ServingGateway` composes the serving stack for the *live* path —
every statement passes the per-tenant admission gate, then the result
cache (which consults the prepared-plan cache and the MVCC commit clock)
and only reaches the engine on a miss.  Attaching a gateway wires the
engine hooks: ``database.statement_cache`` (parse-once ASTs, memoized
view definitions in the planner) and the commit listeners that
invalidate cached results; :meth:`ServingGateway.close` unwires them.

For *scale* — the 10⁵–10⁶ session open-loop runs — the module follows
the repo's standard factoring (real engine speed × simulated
concurrency): :func:`measure_serving_pool` measures each distinct
query's miss and hit cost on the real engine through the real cache,
:func:`cache_service_profile` replays the arrival trace against a
deterministic model of the cache (first reference per invalidation epoch
misses, the rest hit), and :func:`run_open_loop` feeds the resulting
per-session service times to the event-driven
:class:`~repro.serving.admission.AdmissionSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.admission import (
    AdmissionSimulator,
    LiveAdmission,
    ServiceClass,
    ServingResult,
)
from repro.serving.cache import PlanCache, ResultCache


def default_service_classes(concurrency: int = 16) -> dict[str, ServiceClass]:
    """A generous single-tenant default for interactive use."""
    return {
        "dashboard": ServiceClass(
            name="dashboard",
            concurrency=concurrency,
            queue_limit=4 * concurrency,
            timeout_seconds=None,
        )
    }


class ServingGateway:
    """Live serving stack attached to one :class:`~repro.database.database.Database`."""

    def __init__(
        self,
        database,
        classes: dict[str, ServiceClass] | None = None,
        result_capacity: int = 2048,
        plan_capacity: int = 512,
        default_tenant: str | None = None,
    ):
        self.database = database
        self.plan_cache = PlanCache(database.name, capacity=plan_capacity)
        self.result_cache = ResultCache(database, capacity=result_capacity)
        self.classes = classes or default_service_classes()
        self.default_tenant = default_tenant or next(iter(self.classes))
        self.admission = LiveAdmission(self.classes, name=database.name)
        #: Most recent simulated open-loop outcome (monreport surface).
        self.last_open_loop: OpenLoopOutcome | None = None
        # Wire the engine hooks.
        database.statement_cache = self.plan_cache
        database.add_commit_listener(self.result_cache.on_commit)
        database.add_commit_listener(self.plan_cache.on_commit)
        database.serving = self

    def execute(self, sql: str, session=None, tenant: str | None = None):
        """Serve one statement: admission gate, then cache, then engine."""
        tenant = tenant or self.default_tenant
        self.admission.acquire(tenant)
        completed = False
        try:
            fetched = self.result_cache.fetch(sql, session)
            completed = True
            return fetched.result
        finally:
            self.admission.release(tenant, completed=completed)

    def open_loop(
        self,
        batch,
        profile: "ServingPoolProfile",
        cache_enabled: bool = True,
        invalidation_period: float | None = None,
        classes: dict[str, ServiceClass] | None = None,
    ) -> "OpenLoopOutcome":
        """Run a simulated open-loop serving pass and record it for
        monreport (:func:`repro.monitor.report.serving_report`)."""
        outcome = run_open_loop(
            batch,
            profile,
            classes or self.classes,
            cache_enabled=cache_enabled,
            invalidation_period=invalidation_period,
        )
        self.last_open_loop = outcome
        return outcome

    def close(self) -> None:
        """Detach from the database, restoring the plain engine path."""
        db = self.database
        db.remove_commit_listener(self.result_cache.on_commit)
        db.remove_commit_listener(self.plan_cache.on_commit)
        if db.statement_cache is self.plan_cache:
            db.statement_cache = None
        if getattr(db, "serving", None) is self:
            db.serving = None

    def report(self) -> dict:
        from repro.monitor.report import serving_report

        return serving_report(self)


# -- scale path: measured costs + simulated million-session timeline ----------


@dataclass
class ServingPoolProfile:
    """Measured serving costs for one query pool.

    ``measurement`` holds per-query **miss** service times (engine
    execution under a pinned snapshot); ``hit_seconds`` is the measured
    cost of answering from the result cache (normalize + validate +
    replay), which is what repeats cost.
    """

    measurement: object  # repro.workloads.streams.PoolMeasurement
    hit_seconds: float


def measure_serving_pool(
    gateway: ServingGateway,
    pool: list[tuple[str, str]],
    repeats: int = 3,
    session=None,
) -> ServingPoolProfile:
    """Measure miss and hit costs of *pool* through the live gateway.

    Uses the shared closed-loop measurement path
    (:func:`repro.workloads.streams.measure_pool`): the first pass runs
    with the result cache cleared (miss costs), the second pass measures
    the same pool again when every query answers from cache.
    """
    from repro.workloads.streams import measure_pool

    def execute(sql):
        return gateway.execute(sql, session=session)

    gateway.result_cache.clear()
    misses = measure_pool(execute, pool, repeats=1)
    # Hit pass: every query is now cached; best-of-N for a stable floor.
    hits = measure_pool(execute, pool, repeats=repeats)
    hit_seconds = hits.total / max(1, len(hits.query_ids))
    return ServingPoolProfile(measurement=misses, hit_seconds=hit_seconds)


def cache_service_profile(
    batch,
    profile: ServingPoolProfile,
    cache_enabled: bool = True,
    invalidation_period: float | None = None,
) -> tuple[np.ndarray, float]:
    """Per-session service times under the cache model.

    Deterministic replay of the arrival trace: within each invalidation
    epoch (``invalidation_period`` sim seconds; None = never invalidated)
    the first session asking a distinct query pays the measured miss
    cost, every later one pays the hit cost.  Returns
    ``(service_seconds, modeled_hit_rate)``.
    """
    miss = np.array(
        [profile.measurement.seconds[q] for q in batch.query_ids],
        dtype=np.float64,
    )
    service = miss[batch.query_index]
    if not cache_enabled:
        return service, 0.0
    if invalidation_period is None:
        epoch = np.zeros(len(batch), dtype=np.int64)
    else:
        epoch = (batch.times / invalidation_period).astype(np.int64)
    # First arrival of each (query, epoch) pair is the miss; arrivals are
    # time-sorted, so "first index" is "earliest".
    key = batch.query_index.astype(np.int64) * (epoch.max() + 1) + epoch
    _, first_index = np.unique(key, return_index=True)
    hit_mask = np.ones(len(batch), dtype=bool)
    hit_mask[first_index] = False
    service = np.where(hit_mask, profile.hit_seconds, service)
    return service, float(hit_mask.mean())


@dataclass
class OpenLoopOutcome:
    """One simulated open-loop run plus its cache model."""

    result: ServingResult
    hit_rate: float
    cache_enabled: bool

    def report(self) -> dict:
        return {
            **self.result.report(),
            "cache_enabled": self.cache_enabled,
            "cache_hit_rate": self.hit_rate,
        }


def run_open_loop(
    batch,
    profile: ServingPoolProfile,
    classes: dict[str, ServiceClass],
    cache_enabled: bool = True,
    invalidation_period: float | None = None,
) -> OpenLoopOutcome:
    """Play *batch* through admission control with measured service times."""
    service, hit_rate = cache_service_profile(
        batch, profile, cache_enabled, invalidation_period
    )
    result = AdmissionSimulator(classes).run(batch, service)
    return OpenLoopOutcome(
        result=result, hit_rate=hit_rate, cache_enabled=cache_enabled
    )
