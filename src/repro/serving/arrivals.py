"""Open-loop session arrivals on the simulated clock.

The closed-loop streams harness (:mod:`repro.workloads.streams`) models a
fixed number of benchmark streams that each wait for their previous query
— throughput is bounded by the stream count.  A serving system faces the
opposite regime: an **open loop**, where sessions arrive whether or not
the system keeps up, at rates far beyond what closed-loop streams can
express.  This module generates those arrivals deterministically:

* inter-arrival gaps are **heavy-tailed** (lognormal): web dashboards
  produce bursts and lulls, not Poisson smoothness — the tail is what
  stresses admission control;
* the query mix is drawn from :class:`repro.workloads.customer`
  conventions — a hot set of short operational lookups hit with Zipf
  popularity (the dashboard-repeat pattern the result cache exploits)
  plus a long tail of heavy analytics;
* everything derives from :func:`repro.util.rng.derive_rng`, so a run is
  a pure function of its seed.

Generation is vectorized (numpy arrays, ~20 bytes/session), so 10⁶
sessions are cheap; the event-driven admission simulator consumes the
arrays directly.  :func:`stream_orders` holds the stream-permutation
logic shared with the closed-loop harness so both paths use one
generator (and one measured :class:`~repro.workloads.streams.PoolMeasurement`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import derive_rng


def stream_orders(n_queries: int, n_streams: int, seed: int) -> list[list[int]]:
    """Per-stream query permutations (the TPC multi-stream convention).

    Extracted from the closed-loop harness so open- and closed-loop runs
    share one generator; the RNG scope (``seed, "streams"``) and the
    draw order are kept byte-identical to the original
    ``run_multistream`` implementation.
    """
    rng = derive_rng(seed, "streams")
    return [list(rng.permutation(n_queries)) for _ in range(n_streams)]


def zipf_weights(n: int, s: float = 1.1) -> np.ndarray:
    """Normalized Zipf popularity over ``n`` ranked items."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** -s
    return weights / weights.sum()


@dataclass
class ArrivalBatch:
    """One deterministic open-loop trace.

    Arrays are parallel, one element per session, sorted by arrival
    time.  ``query_index`` points into ``query_ids``; ``tenant_index``
    into ``tenants``.
    """

    times: np.ndarray  # float64 sim seconds, non-decreasing
    query_index: np.ndarray  # int32
    tenant_index: np.ndarray  # int8
    query_ids: list[str]
    tenants: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.times)

    @property
    def span_seconds(self) -> float:
        return float(self.times[-1]) if len(self.times) else 0.0

    @property
    def offered_qps(self) -> float:
        span = self.span_seconds
        return len(self.times) / span if span > 0 else 0.0

    def query_id(self, i: int) -> str:
        return self.query_ids[int(self.query_index[i])]

    def tenant(self, i: int) -> str:
        return self.tenants[int(self.tenant_index[i])]


def open_loop_arrivals(
    query_ids: list[str],
    n_sessions: int,
    offered_qps: float,
    seed: int = 23,
    sigma: float = 1.0,
    zipf_s: float = 1.1,
    tenants: tuple[str, ...] = ("dashboard",),
    tenant_shares: tuple[float, ...] | None = None,
    tenant_pools: dict[str, list[int]] | None = None,
) -> ArrivalBatch:
    """Generate ``n_sessions`` open-loop arrivals at ``offered_qps``.

    Inter-arrival gaps are lognormal with shape ``sigma`` scaled so the
    *mean* rate is ``offered_qps`` (sigma=0 degenerates to a uniform
    pacing; sigma≈1 gives realistic burstiness with a long quiet tail).
    Query popularity within each tenant's pool is Zipf(``zipf_s``) over
    the pool order — put the hot dashboard queries first.

    ``tenant_pools`` optionally restricts each tenant to a subset of
    ``query_ids`` (by index); tenants default to sharing the whole pool.
    """
    if n_sessions < 1:
        raise ValueError("need at least one session")
    if offered_qps <= 0:
        raise ValueError("offered_qps must be positive")
    rng = derive_rng(seed, "serving", "arrivals")
    # Lognormal with mean 1/qps: mean = exp(mu + sigma^2/2).
    mu = -np.log(offered_qps) - sigma * sigma / 2.0
    gaps = rng.lognormal(mean=mu, sigma=sigma, size=n_sessions)
    times = np.cumsum(gaps)
    times[0] = 0.0  # the trace starts at the first arrival
    shares = (
        np.asarray(tenant_shares, dtype=np.float64)
        if tenant_shares is not None
        else np.full(len(tenants), 1.0 / len(tenants))
    )
    shares = shares / shares.sum()
    tenant_index = rng.choice(
        len(tenants), size=n_sessions, p=shares
    ).astype(np.int8)
    query_index = np.zeros(n_sessions, dtype=np.int32)
    for t, tenant in enumerate(tenants):
        mask = tenant_index == t
        count = int(mask.sum())
        if count == 0:
            continue
        pool = (
            tenant_pools.get(tenant) if tenant_pools is not None else None
        )
        if pool is None:
            pool = list(range(len(query_ids)))
        picks = rng.choice(
            len(pool), size=count, p=zipf_weights(len(pool), zipf_s)
        )
        query_index[mask] = np.asarray(pool, dtype=np.int32)[picks]
    return ArrivalBatch(
        times=times.astype(np.float64),
        query_index=query_index,
        tenant_index=tenant_index,
        query_ids=list(query_ids),
        tenants=tuple(tenants),
    )
