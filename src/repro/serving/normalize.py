"""SQL normalization for serving-layer cache keys.

The serving caches key on *normalized* statement text so that
dashboard-style repeats — same query, different whitespace, comments or
keyword casing — collapse onto one cache entry, while statements that
differ in any literal or identifier stay distinct (no false merges).

Two normal forms are produced from the repo's own lexer
(:mod:`repro.sql.lexer`), so normalization agrees with the parser about
token boundaries, comments and string escapes:

* :func:`normalize` — whitespace/case folding with literals preserved.
  This is the **result-cache** key: two statements with equal normal
  forms compute the same answer under the same snapshot.
* :func:`parameterize` — additionally replaces every NUMBER and STRING
  literal with ``?`` and returns the extracted parameters.  The template
  is the **prepared-plan** grouping key: point lookups that differ only
  in the bound constant share one plan shape.

:func:`statement_key` combines both with a cacheability check: only pure
read statements (SELECT / WITH / VALUES) free of volatile expressions
(RAND, sequence access, CURRENT DATE/TIMESTAMP, ...) get a key at all —
everything else must reach the engine untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLSyntaxError
from repro.sql import lexer

#: Functions/pseudocolumns whose value changes between executions even
#: against identical data: caching their results would be wrong.
VOLATILE_IDENTS = frozenset(
    {
        "RAND",
        "RANDOM",
        "SYSDATE",
        "NEXTVAL",
        "CURRVAL",
        "CURRENT_DATE",
        "CURRENT_TIMESTAMP",
        "CURRENT_TIME",
        "SYSTIMESTAMP",
    }
)

#: ``CURRENT DATE`` / ``NEXT VALUE FOR s`` spellings (two-token forms).
_VOLATILE_PAIRS = frozenset(
    {
        ("CURRENT", "DATE"),
        ("CURRENT", "TIMESTAMP"),
        ("CURRENT", "TIME"),
        ("NEXT", "VALUE"),
        ("PREVIOUS", "VALUE"),
    }
)

#: Leading keywords of statements that read without mutating shared state.
_READ_VERBS = frozenset({"SELECT", "WITH", "VALUES"})


def _render(token: lexer.Token, parameterized: bool) -> str:
    """One token's canonical spelling."""
    if token.kind == lexer.IDENT:
        return token.value.upper()
    if token.kind == lexer.QIDENT:
        # Quoted identifiers are case-significant: keep them verbatim,
        # re-quoted so they can never merge with a plain identifier.
        return '"%s"' % token.value.replace('"', '""')
    if token.kind == lexer.NUMBER:
        return "?" if parameterized else token.value
    if token.kind == lexer.STRING:
        return "?" if parameterized else "'%s'" % token.value.replace("'", "''")
    return token.value  # OP


def _normal_form(tokens: list[lexer.Token], parameterized: bool) -> str:
    return " ".join(
        _render(t, parameterized) for t in tokens if t.kind != lexer.EOF
    )


def normalize(sql: str) -> str:
    """Whitespace/case-folded normal form with literals preserved.

    ``SELECT  balance from ACCOUNTS where acct_id=5 -- x`` and
    ``select balance FROM accounts WHERE acct_id = 5`` normalize
    identically; changing ``5`` to ``6`` (or ``'a'`` to ``'A'``) yields a
    distinct form.
    """
    return _normal_form(lexer.tokenize(sql), parameterized=False)


def parameterize(sql: str) -> tuple[str, tuple]:
    """``(template, params)``: literals replaced by ``?`` left-to-right."""
    tokens = lexer.tokenize(sql)
    params = tuple(
        t.value for t in tokens if t.kind in (lexer.NUMBER, lexer.STRING)
    )
    return _normal_form(tokens, parameterized=True), params


def is_volatile(tokens: list[lexer.Token]) -> bool:
    """Whether the token stream contains an execution-varying expression."""
    idents = [t.value.upper() for t in tokens if t.kind == lexer.IDENT]
    if any(name in VOLATILE_IDENTS for name in idents):
        return True
    return any(pair in _VOLATILE_PAIRS for pair in zip(idents, idents[1:]))


@dataclass(frozen=True)
class StatementKey:
    """Cache identity of one cacheable read statement."""

    text: str  # literal-preserving normal form (result-cache key)
    template: str  # parameterized normal form (plan grouping key)
    params: tuple


def statement_key(sql: str) -> StatementKey | None:
    """Cache key for *sql*, or None when it must not be cached.

    None means: not a pure read (any DML/DDL/CALL), contains a volatile
    expression, or does not even lex — the engine deals with it.
    """
    try:
        tokens = lexer.tokenize(sql)
    except SQLSyntaxError:
        return None
    first = next((t for t in tokens if t.kind != lexer.EOF), None)
    if first is None or first.kind != lexer.IDENT:
        return None
    if first.value.upper() not in _READ_VERBS:
        return None
    if is_volatile(tokens):
        return None
    template = _normal_form(tokens, parameterized=True)
    params = tuple(
        t.value for t in tokens if t.kind in (lexer.NUMBER, lexer.STRING)
    )
    return StatementKey(
        text=_normal_form(tokens, parameterized=False),
        template=template,
        params=params,
    )
