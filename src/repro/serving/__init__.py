"""Million-session serving layer (ROADMAP: "Million-user serving layer").

Open-loop arrival generation (:mod:`~repro.serving.arrivals`), per-tenant
admission control with timeout shedding (:mod:`~repro.serving.admission`),
MVCC-correct result/plan caches keyed on normalized SQL
(:mod:`~repro.serving.cache`, :mod:`~repro.serving.normalize`), a capacity
sizer (:mod:`~repro.serving.sizer`), and the gateway composing the live
stack (:mod:`~repro.serving.gateway`).
"""

from repro.serving.admission import (
    SHED_SQLSTATE,
    AdmissionSimulator,
    LiveAdmission,
    ServiceClass,
    ServingResult,
    TenantStats,
    shed_error,
)
from repro.serving.arrivals import (
    ArrivalBatch,
    open_loop_arrivals,
    stream_orders,
    zipf_weights,
)
from repro.serving.cache import (
    CacheStats,
    PlanCache,
    ResultCache,
    read_dependencies,
)
from repro.serving.gateway import (
    OpenLoopOutcome,
    ServingGateway,
    ServingPoolProfile,
    cache_service_profile,
    default_service_classes,
    measure_serving_pool,
    run_open_loop,
)
from repro.serving.normalize import (
    StatementKey,
    normalize,
    parameterize,
    statement_key,
)
from repro.serving.sizer import SizingRecommendation, erlang_c, recommend

__all__ = [
    "SHED_SQLSTATE",
    "AdmissionSimulator",
    "ArrivalBatch",
    "CacheStats",
    "LiveAdmission",
    "OpenLoopOutcome",
    "PlanCache",
    "ResultCache",
    "ServiceClass",
    "ServingGateway",
    "ServingPoolProfile",
    "ServingResult",
    "SizingRecommendation",
    "StatementKey",
    "TenantStats",
    "cache_service_profile",
    "default_service_classes",
    "erlang_c",
    "measure_serving_pool",
    "normalize",
    "open_loop_arrivals",
    "parameterize",
    "read_dependencies",
    "recommend",
    "run_open_loop",
    "shed_error",
    "statement_key",
    "stream_orders",
    "zipf_weights",
]
