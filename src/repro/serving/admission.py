"""Admission control for open-loop serving traffic.

Layered on the WLM substrate (:mod:`repro.cluster.wlm`): each *tenant*
gets a :class:`ServiceClass` — a bounded number of concurrency slots, a
bounded FIFO queue, and a queue-wait timeout.  Overload is handled by
**shedding**, not by unbounded queueing: a session that arrives to a full
queue is rejected immediately, and a queued session whose wait exceeds
the class timeout is cancelled at dequeue time.  Both produce the
DB2-style SQLSTATE ``57014`` ("processing was cancelled") surfaced by
:data:`SHED_SQLSTATE`.

Two consumers:

* :class:`AdmissionSimulator` — a deterministic event-driven scheduler
  that plays an :class:`~repro.serving.arrivals.ArrivalBatch` of 10⁵–10⁶
  sessions against the service-time profile measured on the real engine.
  This follows the repo's standard factoring (real engine speed ×
  simulated concurrency, as in ``workloads.streams``): the engine is
  measured once per distinct query, the million-session timeline is pure
  simulation on the sim clock.

* :class:`LiveAdmission` — a thread-safe no-wait slot gate for the live
  gateway path, enforcing per-tenant concurrency on real executions.
"""

from __future__ import annotations

import heapq
from array import array
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import AdmissionError
from repro.verify import sanitizer

#: SQLSTATE reported on shed/cancelled work (DB2 57014).
SHED_SQLSTATE = "57014"


def shed_error(message: str) -> AdmissionError:
    """An AdmissionError carrying the shed SQLSTATE."""
    err = AdmissionError(message)
    err.sqlstate = SHED_SQLSTATE
    return err


@dataclass(frozen=True)
class ServiceClass:
    """One tenant's WLM class: slots, queue bound, queue-wait timeout."""

    name: str
    concurrency: int
    queue_limit: int = 0  # 0 = shed immediately when all slots busy
    timeout_seconds: float | None = None  # None = queued work never times out

    def __post_init__(self):
        if self.concurrency < 1:
            raise AdmissionError(
                "service class %s needs at least one slot" % self.name
            )
        if self.queue_limit < 0:
            raise AdmissionError("queue_limit must be >= 0")


@dataclass
class TenantStats:
    """Per-tenant outcome counters for one simulated run."""

    arrivals: int = 0
    completed: int = 0
    shed_queue_full: int = 0
    shed_timeout: int = 0
    busy_seconds: float = 0.0
    queue_wait_seconds: float = 0.0

    @property
    def shed(self) -> int:
        return self.shed_queue_full + self.shed_timeout

    @property
    def shed_rate(self) -> float:
        return self.shed / self.arrivals if self.arrivals else 0.0


@dataclass
class ServingResult:
    """Aggregate outcome of one open-loop admission run."""

    n_sessions: int
    completed: int
    shed_queue_full: int
    shed_timeout: int
    makespan_seconds: float
    offered_qps: float
    latencies: np.ndarray  # response times of completed sessions
    tenants: dict[str, TenantStats] = field(default_factory=dict)

    @property
    def shed(self) -> int:
        return self.shed_queue_full + self.shed_timeout

    @property
    def shed_rate(self) -> float:
        return self.shed / self.n_sessions if self.n_sessions else 0.0

    @property
    def qph(self) -> float:
        """Completed queries per hour of simulated time."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.completed * 3600.0 / self.makespan_seconds

    def latency_percentile(self, q: float) -> float:
        if len(self.latencies) == 0:
            return 0.0
        return float(np.percentile(self.latencies, q))

    @property
    def p50(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99(self) -> float:
        return self.latency_percentile(99.0)

    def report(self) -> dict:
        return {
            "sessions": self.n_sessions,
            "completed": self.completed,
            "shed_queue_full": self.shed_queue_full,
            "shed_timeout": self.shed_timeout,
            "shed_rate": self.shed_rate,
            "offered_qps": self.offered_qps,
            "makespan_seconds": self.makespan_seconds,
            "qph": self.qph,
            "p50_seconds": self.p50,
            "p99_seconds": self.p99,
            "tenants": {
                name: {
                    "arrivals": t.arrivals,
                    "completed": t.completed,
                    "shed_queue_full": t.shed_queue_full,
                    "shed_timeout": t.shed_timeout,
                    "shed_rate": t.shed_rate,
                    "busy_seconds": t.busy_seconds,
                }
                for name, t in sorted(self.tenants.items())
            },
        }


class _TenantState:
    __slots__ = ("running", "queue", "stats")

    def __init__(self):
        self.running = 0
        self.queue: deque = deque()  # (arrival_time, service_seconds)
        self.stats = TenantStats()


class AdmissionSimulator:
    """Deterministic event-driven open-loop scheduler.

    Plays arrivals against per-tenant service classes on the simulated
    timeline.  Completed-session response times are accumulated in a
    compact ``array('d')`` so million-session runs stay within tens of
    megabytes.
    """

    def __init__(self, classes: dict[str, ServiceClass]):
        if not classes:
            raise AdmissionError("need at least one service class")
        self.classes = dict(classes)

    def run(self, batch, service_seconds: np.ndarray) -> ServingResult:
        """Schedule every session of *batch*.

        ``service_seconds[i]`` is session *i*'s engine service time (the
        gateway derives it from the measured pool profile and its cache
        model).
        """
        times = batch.times
        tenant_index = batch.tenant_index
        tenants = batch.tenants
        for name in tenants:
            if name not in self.classes:
                raise AdmissionError("no service class for tenant %s" % name)
        states = {name: _TenantState() for name in tenants}
        class_by_idx = [self.classes[name] for name in tenants]
        state_by_idx = [states[name] for name in tenants]
        latencies = array("d")
        finish_heap: list[tuple[float, int, int]] = []  # (finish, seq, tidx)
        seq = 0
        last_finish = 0.0
        n = len(batch)

        def _start(tidx, state, now, arrival, service):
            nonlocal seq, last_finish
            state.running += 1
            state.stats.completed += 1
            state.stats.busy_seconds += service
            state.stats.queue_wait_seconds += now - arrival
            finish = now + service
            latencies.append(finish - arrival)
            if finish > last_finish:
                last_finish = finish
            heapq.heappush(finish_heap, (finish, seq, tidx))
            seq += 1

        def _drain_queue(tidx, state, sc, now):
            while state.queue and state.running < sc.concurrency:
                arrival, service = state.queue.popleft()
                if (
                    sc.timeout_seconds is not None
                    and now - arrival > sc.timeout_seconds
                ):
                    state.stats.shed_timeout += 1  # SQLSTATE 57014
                    continue
                _start(tidx, state, now, arrival, service)

        i = 0
        while i < n or finish_heap:
            next_arrival = times[i] if i < n else None
            next_finish = finish_heap[0][0] if finish_heap else None
            if next_finish is not None and (
                next_arrival is None or next_finish <= next_arrival
            ):
                now, _, tidx = heapq.heappop(finish_heap)
                state = state_by_idx[tidx]
                state.running -= 1
                _drain_queue(tidx, state, class_by_idx[tidx], now)
                continue
            now = float(next_arrival)
            tidx = int(tenant_index[i])
            state = state_by_idx[tidx]
            sc = class_by_idx[tidx]
            state.stats.arrivals += 1
            service = float(service_seconds[i])
            if state.running < sc.concurrency and not state.queue:
                _start(tidx, state, now, now, service)
            elif len(state.queue) < sc.queue_limit:
                state.queue.append((now, service))
            else:
                state.stats.shed_queue_full += 1  # SQLSTATE 57014
            i += 1

        tenant_stats = {name: states[name].stats for name in tenants}
        return ServingResult(
            n_sessions=n,
            completed=sum(t.completed for t in tenant_stats.values()),
            shed_queue_full=sum(
                t.shed_queue_full for t in tenant_stats.values()
            ),
            shed_timeout=sum(t.shed_timeout for t in tenant_stats.values()),
            makespan_seconds=last_finish,
            offered_qps=batch.offered_qps,
            latencies=np.frombuffer(latencies, dtype=np.float64)
            if latencies
            else np.empty(0, dtype=np.float64),
            tenants=tenant_stats,
        )


class LiveAdmission:
    """No-wait per-tenant slot gate for the live gateway path.

    The live path is synchronous, so queueing cannot be modelled here —
    a session either gets a slot or is shed immediately with SQLSTATE
    57014 (the simulator models bounded queues and timeouts).
    """

    def __init__(self, classes: dict[str, ServiceClass], name: str = "db"):
        self.classes = dict(classes)
        self._lock = sanitizer.make_lock("serving:%s:admission" % name)
        self._running = {tenant: 0 for tenant in self.classes}
        self.stats = {tenant: TenantStats() for tenant in self.classes}

    def acquire(self, tenant: str) -> None:
        with self._lock:
            sc = self.classes.get(tenant)
            if sc is None:
                raise AdmissionError("unknown tenant %s" % tenant)
            stats = self.stats[tenant]
            stats.arrivals += 1
            if self._running[tenant] >= sc.concurrency:
                stats.shed_queue_full += 1
                raise shed_error(
                    "tenant %s over %d admission slots"
                    % (tenant, sc.concurrency)
                )
            self._running[tenant] += 1

    def release(self, tenant: str, completed: bool = True) -> None:
        with self._lock:
            self._running[tenant] -= 1
            if completed:
                self.stats[tenant].completed += 1

    def report(self) -> dict:
        with self._lock:
            return {
                tenant: {
                    "slots": self.classes[tenant].concurrency,
                    "running": self._running[tenant],
                    "arrivals": self.stats[tenant].arrivals,
                    "completed": self.stats[tenant].completed,
                    "shed": self.stats[tenant].shed,
                }
                for tenant in sorted(self.classes)
            }
