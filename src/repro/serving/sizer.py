"""Capacity sizing: nodes/shards from offered load and measured service times.

The dashDB Local pitch is a warehouse that arrives pre-configured for its
hardware (paper II.A); the serving layer closes the loop in the other
direction — given an *offered load* (sessions/second at the front door)
and the service-time profile measured on the real engine, recommend how
much hardware to deploy.  The model is a standard M/M/c-style sizing
pass, deliberately simple and fully deterministic:

* the cache-adjusted mean service time is
  ``hit_rate * hit_seconds + (1 - hit_rate) * E[S_miss]``, with the miss
  profile weighted by the workload mix;
* required slots come from the utilization bound
  ``c >= lambda * E[S] / target_utilization``;
* the Erlang-C delay probability (computed with the numerically stable
  recurrence) grows the slot count until the predicted queueing delay
  is acceptable;
* slots map to nodes through the same WLM-concurrency rule automatic
  configuration uses (:func:`repro.cluster.autoconfig.wlm_concurrency`),
  and shards through :func:`repro.cluster.autoconfig.shards_for_cluster`
  (paper II.E's "several factors more shards than servers").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.autoconfig import shards_for_cluster, wlm_concurrency
from repro.cluster.hardware import HardwareSpec


def erlang_c(servers: int, offered_erlangs: float) -> float:
    """P(wait > 0) for M/M/c with ``offered_erlangs = lambda * E[S]``.

    Uses the stable recurrence for the Erlang-B blocking probability,
    then converts to Erlang C.  Returns 1.0 when the system is at or
    beyond saturation (rho >= 1), where the queue grows without bound.
    """
    if servers < 1:
        return 1.0
    if offered_erlangs <= 0:
        return 0.0
    if offered_erlangs >= servers:
        return 1.0
    # Erlang-B recurrence: B(0) = 1; B(k) = a*B(k-1) / (k + a*B(k-1)).
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = (
            offered_erlangs * blocking / (k + offered_erlangs * blocking)
        )
    rho = offered_erlangs / servers
    return blocking / (1.0 - rho + rho * blocking)


@dataclass(frozen=True)
class SizingRecommendation:
    """What to deploy for one offered load."""

    offered_qps: float
    hit_rate: float
    service_seconds: float  # cache-adjusted mean service time
    required_slots: int
    slots_per_node: int
    nodes: int
    shards: int
    utilization: float  # at the recommended slot count
    wait_probability: float  # Erlang-C P(wait) at that count
    expected_wait_seconds: float

    def report(self) -> dict:
        return {
            "offered_qps": self.offered_qps,
            "hit_rate": self.hit_rate,
            "service_seconds": self.service_seconds,
            "required_slots": self.required_slots,
            "slots_per_node": self.slots_per_node,
            "nodes": self.nodes,
            "shards": self.shards,
            "utilization": self.utilization,
            "wait_probability": self.wait_probability,
            "expected_wait_seconds": self.expected_wait_seconds,
        }


def mean_service_seconds(
    measurement, weights: dict[str, float] | None = None
) -> float:
    """Mix-weighted mean service time of a measured pool.

    ``measurement`` is any object with the
    :class:`~repro.workloads.streams.PoolMeasurement` shape
    (``query_ids`` + ``seconds``); ``weights`` maps query id to its share
    of the traffic (unnormalized ok; missing ids weigh zero).  Without
    weights every pool query is equally likely.
    """
    ids = list(measurement.query_ids)
    if not ids:
        raise ValueError("empty pool measurement")
    if weights is None:
        return sum(measurement.seconds[q] for q in ids) / len(ids)
    total = sum(weights.get(q, 0.0) for q in ids)
    if total <= 0:
        raise ValueError("weights assign no mass to the measured pool")
    return (
        sum(measurement.seconds[q] * weights.get(q, 0.0) for q in ids) / total
    )


def recommend(
    offered_qps: float,
    measurement,
    hardware: HardwareSpec,
    hit_rate: float = 0.0,
    hit_seconds: float = 0.0,
    weights: dict[str, float] | None = None,
    target_utilization: float = 0.70,
    max_wait_probability: float = 0.20,
) -> SizingRecommendation:
    """Recommend node/shard counts for ``offered_qps`` sessions/second.

    ``hit_rate``/``hit_seconds`` fold the result cache into the service
    profile — a measured (or simulated) hit ratio shrinks the effective
    demand and therefore the fleet.
    """
    if offered_qps <= 0:
        raise ValueError("offered_qps must be positive")
    if not 0.0 <= hit_rate <= 1.0:
        raise ValueError("hit_rate must be within [0, 1]")
    if not 0.0 < target_utilization < 1.0:
        raise ValueError("target_utilization must be within (0, 1)")
    miss_seconds = mean_service_seconds(measurement, weights)
    service = hit_rate * hit_seconds + (1.0 - hit_rate) * miss_seconds
    offered_erlangs = offered_qps * service
    slots = max(1, math.ceil(offered_erlangs / target_utilization))
    # Grow until the Erlang-C delay probability is acceptable (bounded:
    # P(wait) is monotonically decreasing in the server count).
    while erlang_c(slots, offered_erlangs) > max_wait_probability:
        slots += 1
    wait_probability = erlang_c(slots, offered_erlangs)
    rho = offered_erlangs / slots
    # M/M/c mean wait: P(wait) * E[S] / (c * (1 - rho)).
    expected_wait = (
        wait_probability * service / (slots * (1.0 - rho))
        if rho < 1.0
        else float("inf")
    )
    slots_per_node = wlm_concurrency(hardware)
    nodes = max(1, math.ceil(slots / slots_per_node))
    shards = shards_for_cluster(nodes, hardware.cores)
    return SizingRecommendation(
        offered_qps=offered_qps,
        hit_rate=hit_rate,
        service_seconds=service,
        required_slots=slots,
        slots_per_node=slots_per_node,
        nodes=nodes,
        shards=shards,
        utilization=rho,
        wait_probability=wait_probability,
        expected_wait_seconds=expected_wait,
    )
