"""Result cache and prepared-plan cache with MVCC-correct invalidation.

The serving layer's big win on dashboard-style BD Insight traffic is that
the same handful of reports is asked over and over.  Two caches exploit
that, both keyed on normalized SQL (:mod:`repro.serving.normalize`):

* :class:`PlanCache` — parse-once prepared statements.  It memoizes the
  parsed AST of cacheable read statements and of view definitions.  It
  deliberately does **not** memoize planned operator trees: the planner
  pins the statement's MVCC snapshot into every scan at plan time
  (``TableScanOp`` captures table state in its constructor), so a reused
  plan object would replay stale data.  ASTs are safe — planning and
  binding never mutate them in place.

* :class:`ResultCache` — whole result sets.  Correctness contract: a
  cached answer is **byte-identical** to what an uncached execution would
  return at that moment.  That holds because of how entries are produced
  and validated:

  1. the statement's base-table dependencies are resolved (through
     views, recursively); anything unresolvable — temp tables, federation
     nicknames, CTE/table name shadowing — makes the statement
     uncacheable rather than approximately tracked;
  2. a version *token* for those tables is read from the database's
     commit clock **before** the snapshot is pinned, so a commit racing
     the execution leaves the new entry already-stale (conservative,
     never wrong);
  3. the query runs under a pinned snapshot and the entry is stamped
     with that snapshot's visibility *horizon*
     (:attr:`repro.mvcc.txn.Snapshot.horizon`);
  4. a hit requires the token to still be valid — no commit has touched
     any dependency — or, as a fallback, the current read snapshot to
     have the exact same horizon as the producing one (equal horizons
     see identical committed state by construction);
  5. the database's commit hook (:meth:`ResultCache.on_commit`) drops
     touched entries eagerly, and drops *everything* when the touched
     set is unknowable (CALL, recovery).

Lock discipline: cache locks are class ``serving``, ranked between
``database`` and ``txn`` in the declared global order — the commit hook
acquires them under the statement lock (database → serving), and token
validation reads the version clock (a ``txn``-class lock) under them
(serving → txn).  The caches never hold their locks across an engine
call.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import UnknownObjectError
from repro.serving.normalize import StatementKey, statement_key
from repro.sql import ast
from repro.verify import sanitizer


@dataclass
class CacheStats:
    """Lifetime counters for one cache."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    bypass: int = 0  # uncacheable statements that went straight through
    stale_drops: int = 0  # entries found invalid on lookup
    invalidations: int = 0  # entries dropped by the commit hook
    evictions: int = 0  # LRU capacity evictions

    @property
    def hit_rate(self) -> float:
        asked = self.hits + self.misses
        return self.hits / asked if asked else 0.0

    def snapshot(self) -> dict:
        return {**dataclasses.asdict(self), "hit_rate": self.hit_rate}


# -- read-dependency extraction -----------------------------------------------


def _walk_nodes(value, refs: list, ctes: set, flags: dict) -> None:
    """Collect TableRefs, CTE names and volatility over an AST subtree."""
    if isinstance(value, ast.TableRef):
        refs.append(value)
        return
    if isinstance(value, ast.SequenceRef):
        flags["volatile"] = True
        return
    if isinstance(value, ast.Select):
        for name, cte_select, _cols in value.ctes:
            ctes.add(name.upper())
            _walk_nodes(cte_select, refs, ctes, flags)
    if dataclasses.is_dataclass(value):
        for f in dataclasses.fields(value):
            if f.name == "ctes":
                continue  # handled above (names + bodies)
            _walk_nodes(getattr(value, f.name), refs, ctes, flags)
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            _walk_nodes(item, refs, ctes, flags)


def read_dependencies(node, database, session=None, _depth: int = 0):
    """Base tables a read statement depends on, or None if untrackable.

    Resolves references through views (recursively) and aliases using the
    catalog.  Returns a frozenset of uppercase base-table names — the
    same names the commit hook sees — or None when the statement touches
    anything whose changes the version clock cannot observe: session temp
    tables, federation nicknames, unresolvable names, or a CTE name that
    shadows a real catalog object (ambiguous without full scoping).
    """
    from repro.catalog.catalog import NicknameInfo, TableInfo, ViewInfo

    if _depth > 8:  # pathological view nesting: give up, stay correct
        return None
    refs: list[ast.TableRef] = []
    ctes: set[str] = set()
    flags = {"volatile": False}
    _walk_nodes(node, refs, ctes, flags)
    if flags["volatile"]:
        return None
    deps: set[str] = set()
    for name in ctes:
        if database.catalog.try_resolve(name) is not None:
            return None  # CTE shadows a catalog object: scoping ambiguous
    for ref in refs:
        name = ref.name.upper()
        if ref.schema is None and name in ctes:
            continue
        if session is not None and ref.schema in (None, "SESSION"):
            if session.get_temp_table(name) is not None:
                return None  # session-local data: not shared, not tracked
        if ref.schema == "SESSION":
            return None
        try:
            info = database.catalog.resolve(name, ref.schema)
        except UnknownObjectError:
            return None
        if isinstance(info, TableInfo):
            deps.add(info.table.schema.name.upper())
        elif isinstance(info, ViewInfo):
            from repro.sql.parser import parse_statement

            cache = getattr(database, "statement_cache", None)
            if cache is not None:
                view_node = cache.view_ast(info.text, parse_statement)
            else:
                view_node = parse_statement(info.text)
            inner = read_dependencies(
                view_node, database, session, _depth=_depth + 1
            )
            if inner is None:
                return None
            deps.update(inner)
        elif isinstance(info, NicknameInfo):
            return None  # remote data: invisible to the commit clock
        else:
            return None
    return frozenset(deps)


# -- prepared-plan (AST) cache ------------------------------------------------


class PlanCache:
    """Parse-once statement/view cache attached as ``database.statement_cache``.

    Stores parsed ASTs keyed on the parameterized normal form is *not*
    possible for execution (literals matter), so statement ASTs key on
    the literal-preserving normal form; the parameterized template is
    tracked purely as a grouping statistic (distinct plan shapes).
    """

    def __init__(self, name: str = "db", capacity: int = 512):
        self.capacity = capacity
        self._lock = sanitizer.make_lock("serving:%s:plans" % name)
        self._asts: OrderedDict[str, ast.Node] = OrderedDict()
        self._views: OrderedDict[str, ast.Node] = OrderedDict()
        self._templates: set[str] = set()
        self.stats = CacheStats()
        self.view_stats = CacheStats()

    def statement_ast(self, sql: str, parse) -> ast.Node:
        """Parsed AST for *sql*, reusing a prior parse when cacheable."""
        key = statement_key(sql)
        if key is None:
            with self._lock:
                self.stats.bypass += 1
            return parse()
        with self._lock:
            node = self._asts.get(key.text)
            if node is not None:
                self._asts.move_to_end(key.text)
                self.stats.hits += 1
                return node
            self.stats.misses += 1
        node = parse()  # parse outside the lock: it can be slow
        with self._lock:
            self._asts[key.text] = node
            self._templates.add(key.template)
            self.stats.stores += 1
            while len(self._asts) > self.capacity:
                self._asts.popitem(last=False)
                self.stats.evictions += 1
        return node

    def view_ast(self, text: str, parse) -> ast.Node:
        """Parsed definition of a view, memoized on its stored text."""
        with self._lock:
            node = self._views.get(text)
            if node is not None:
                self._views.move_to_end(text)
                self.view_stats.hits += 1
                return node
            self.view_stats.misses += 1
        node = parse(text)
        with self._lock:
            self._views[text] = node
            self.view_stats.stores += 1
            while len(self._views) > self.capacity:
                self._views.popitem(last=False)
                self.view_stats.evictions += 1
        return node

    def on_commit(self, tables) -> None:
        """DDL can redefine names: drop cached view parses on DDL-ish
        commits.  Statement ASTs survive (they are pure syntax — name
        resolution happens at plan time)."""
        if tables is None:
            with self._lock:
                dropped = len(self._views)
                self._views.clear()
                self.view_stats.invalidations += dropped

    def template_count(self) -> int:
        with self._lock:
            return len(self._templates)

    def report(self) -> dict:
        with self._lock:
            return {
                "statements": self.stats.snapshot(),
                "views": self.view_stats.snapshot(),
                "cached_asts": len(self._asts),
                "cached_views": len(self._views),
                "plan_templates": len(self._templates),
            }


# -- result cache -------------------------------------------------------------


@dataclass
class _Entry:
    result: object  # repro.database.result.Result
    token: tuple  # (global_version, {table: version}) at production
    horizon: tuple  # producing snapshot's visibility horizon
    tables: frozenset
    hits: int = 0


@dataclass
class CachedExecution:
    """What :meth:`ResultCache.fetch` resolved for one statement."""

    result: object
    hit: bool
    key: StatementKey | None = None


class ResultCache:
    """MVCC-validated whole-result cache in front of one database."""

    def __init__(self, database, capacity: int = 2048):
        self.database = database
        self.capacity = capacity
        self._lock = sanitizer.make_lock("serving:%s:results" % database.name)
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._by_table: dict[str, set] = {}
        self.stats = CacheStats()

    # -- bookkeeping (call with self._lock held) --------------------------------

    def _drop(self, key: tuple, counter: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for table in entry.tables:
            keys = self._by_table.get(table)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_table[table]
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)

    def _cache_key(self, key: StatementKey, session) -> tuple:
        # Dialect changes expression semantics (Oracle ''-is-NULL, date
        # arithmetic), so results are cached per dialect.
        dialect = ""
        if session is not None:
            dialect = getattr(session.dialect, "name", type(session.dialect).__name__)
        return (dialect, key.text)

    # -- the serving path -------------------------------------------------------

    def fetch(self, sql: str, session=None) -> CachedExecution:
        """Execute *sql* through the cache.

        Uncacheable statements run on the ordinary engine path.  Misses
        run under a freshly pinned snapshot and populate the cache; hits
        replay the stored result (a fresh Result wrapper over the same
        immutable rows).
        """
        db = self.database
        key = statement_key(sql)
        if key is None:
            with self._lock:
                self.stats.bypass += 1
            return CachedExecution(result=db.execute(sql, session), hit=False)
        cache_key = self._cache_key(key, session)
        with self._lock:
            entry = self._entries.get(cache_key)
            if entry is not None:
                if db.versions_valid(entry.token):
                    valid = True
                else:
                    # Commits elsewhere advanced the clock; equal horizon
                    # still proves the committed state is unchanged.
                    valid = db.txn.snapshot().horizon == entry.horizon
                    if valid:
                        entry.token = db.versions_token(entry.tables)
                if valid:
                    self._entries.move_to_end(cache_key)
                    entry.hits += 1
                    self.stats.hits += 1
                    return CachedExecution(
                        result=self._replay(entry.result), hit=True, key=key
                    )
                self._drop(cache_key, "stale_drops")
            self.stats.misses += 1
        return CachedExecution(
            result=self._produce(sql, key, cache_key, session),
            hit=False,
            key=key,
        )

    def _produce(self, sql: str, key: StatementKey, cache_key: tuple, session):
        """Miss path: execute under a pinned snapshot, then store."""
        db = self.database
        from repro.sql.parser import parse_statement

        cache = getattr(db, "statement_cache", None)
        if cache is not None:
            node = cache.statement_ast(sql, lambda: parse_statement(sql))
        else:
            node = parse_statement(sql)
        deps = read_dependencies(node, db, session)
        if deps is None:
            return db.execute_ast(node, session)
        # Order matters: token BEFORE snapshot.  A commit that lands in
        # between bumps the token, so the entry stored below is already
        # invalid — we can never publish a result older than its token.
        token = db.versions_token(deps)
        snap = db.txn.snapshot()
        result = db.execute_ast(node, session, snapshot=snap)
        # Store a private copy: the caller owns `result` and may mutate
        # its rows list; the cached entry must stay pristine.
        entry = _Entry(
            result=self._replay(result),
            token=token,
            horizon=snap.horizon,
            tables=deps,
        )
        with self._lock:
            if db.versions_valid(token) and cache_key not in self._entries:
                self._entries[cache_key] = entry
                for table in deps:
                    self._by_table.setdefault(table, set()).add(cache_key)
                self.stats.stores += 1
                while len(self._entries) > self.capacity:
                    oldest = next(iter(self._entries))
                    self._drop(oldest, "evictions")
        return result

    @staticmethod
    def _replay(result):
        """Fresh Result wrapper so callers can't mutate the cached rows."""
        return dataclasses.replace(result, rows=list(result.rows))

    # -- invalidation -----------------------------------------------------------

    def on_commit(self, tables) -> None:
        """Database commit hook: drop entries reading any touched table."""
        with self._lock:
            if tables is None:
                for key in list(self._entries):
                    self._drop(key, "invalidations")
                return
            for table in tables:
                for key in list(self._by_table.get(table, ())):
                    self._drop(key, "invalidations")

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_table.clear()

    def report(self) -> dict:
        with self._lock:
            return {
                **self.stats.snapshot(),
                "entries": len(self._entries),
                "capacity": self.capacity,
            }
