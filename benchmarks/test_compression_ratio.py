"""Section II.B.1 — compression: "regularly compress data 2-3x smaller than
previous generations of compression techniques", values "as small as one
bit" via frequency encoding.
"""

from __future__ import annotations

import numpy as np

from repro.compression import FrequencyEncoding, compress_column

from conftest import banner, record


def test_compression_ratio_on_tpcds(dashdb_tpcds, benchmark):
    db = dashdb_tpcds.database
    lines = ["paper:    2-3x smaller than prior-generation compression", ""]
    ratios = {}
    for name in db.table_names():
        table = db.catalog.get_table(name).table
        if table.raw_nbytes() == 0:
            continue
        ratio = table.compression_ratio()
        ratios[name] = ratio
        lines.append(
            "%-14s raw %8.1f KB -> compressed %8.1f KB   (%.1fx)"
            % (
                name,
                table.raw_nbytes() / 1024,
                table.compressed_nbytes() / 1024,
                ratio,
            )
        )
    fact_ratio = ratios["STORE_SALES"]
    benchmark.pedantic(
        lambda: compress_column(np.arange(0, 200_000, 3) % 1000),
        rounds=3,
        iterations=1,
    )
    banner("II.B.1 — compression ratios (raw / compressed)", lines)
    record("compression", ratios=ratios, paper_claim="2-3x over prior gen")
    # Prior-generation row compression achieved ~2x on this kind of data;
    # the claim translates to >= 3x over raw for the columnar encodings.
    assert fact_ratio > 3.0
    # Per-table ratios only mean something once fixed dictionary/synopsis
    # overheads amortise (tiny dimension tables don't compress).
    big_enough = {
        name: r for name, r in ratios.items()
        if db.catalog.get_table(name).table.raw_nbytes() > 4096
    }
    assert all(r > 1.5 for r in big_enough.values())


def test_one_bit_frequency_encoding(benchmark):
    # A flag column: two hot values -> exactly one bit per value.
    values = np.array(["Y"] * 900_000 + ["N"] * 100_000, dtype=object)
    encoding = FrequencyEncoding(values)
    bits = encoding.expected_bits_per_value(values)
    column = compress_column(values)
    packed_bits = column.packed.nbytes() * 8 / len(values)

    benchmark.pedantic(lambda: FrequencyEncoding(values[:100_000]), rounds=3, iterations=1)

    banner(
        "II.B.1 — one-bit encoding for hot values",
        [
            "paper:    'compress data as small as one bit'",
            "measured: %.2f code bits/value; %.2f packed bits/value"
            % (bits, packed_bits),
        ],
    )
    record("one-bit-encoding", code_bits=bits, packed_bits=packed_bits)
    assert bits == 1.0
    assert packed_bits <= 2.5  # field padding + words, still ~2 bits
