"""Section II.B.6 — software-SIMD predicate evaluation.

Paper: predicates apply "simultaneously on all values in a word, for any
code size"; this is additional to thread parallelism and is what makes the
scan-centric model fast.  The benchmark compares the word-parallel kernels
against per-value evaluation across code widths, plus the order-preserving
ablation (II.B.2): without order-preserving codes, range predicates must
decode before comparing.
"""

from __future__ import annotations

import time

import numpy as np

from repro.compression.codec import compress_column
from repro.simd.predicates import eval_compare, eval_compare_scalar
from repro.util.bitpack import pack_codes

from conftest import banner, record

N_CODES = 200_000


def test_simd_vs_scalar_across_widths(benchmark):
    rng = np.random.default_rng(0)
    lines = ["paper:    all codes in a word evaluated simultaneously", ""]
    speedups = {}
    for width in (1, 4, 8, 13, 21):
        codes = rng.integers(0, 1 << width, size=N_CODES, dtype=np.uint64)
        packed = pack_codes(codes, width)
        k = int(codes[0])
        t0 = time.perf_counter()
        simd_result = eval_compare(packed, "<=", k)
        t_simd = time.perf_counter() - t0
        sample = min(N_CODES, 20_000)
        sampled = pack_codes(codes[:sample], width)
        t0 = time.perf_counter()
        scalar_result = eval_compare_scalar(sampled, "<=", k)
        t_scalar = (time.perf_counter() - t0) * (N_CODES / sample)
        assert np.array_equal(simd_result[:sample], scalar_result)
        ratio = t_scalar / t_simd
        speedups[width] = ratio
        lines.append(
            "width %2d bits: %5.1f codes/word   SIMD %.4fs vs per-value %.2fs  (%.0fx)"
            % (width, packed.codes_per_word, t_simd, t_scalar, ratio)
        )

    codes8 = rng.integers(0, 256, size=N_CODES, dtype=np.uint64)
    packed8 = pack_codes(codes8, 8)
    benchmark.pedantic(lambda: eval_compare(packed8, "<=", 100), rounds=5, iterations=1)

    banner("II.B.6 — software-SIMD predicate evaluation", lines)
    record("simd", speedups={str(k): round(v) for k, v in speedups.items()})
    assert all(ratio > 20 for ratio in speedups.values())
    # Narrow codes fit more per word -> more parallelism per instruction.
    assert packed8.codes_per_word < pack_codes(codes8 % 2, 1).codes_per_word


def test_order_preserving_ablation(benchmark):
    """II.B.2 ablation: order-preserving codes let ranges run compressed;
    without the property the scan must decode every value first."""
    rng = np.random.default_rng(1)
    values = rng.integers(0, 5_000, size=N_CODES).astype(np.int64)
    column = compress_column(values, force="dictionary")

    t0 = time.perf_counter()
    on_codes = column.eval_compare("<", 2_500)
    t_compressed = time.perf_counter() - t0

    def decoded_range():
        decoded, _ = column.decode()
        return decoded < 2_500

    t0 = time.perf_counter()
    on_decoded = decoded_range()
    t_decoded = time.perf_counter() - t0

    benchmark.pedantic(lambda: column.eval_compare("<", 2_500), rounds=5, iterations=1)

    assert np.array_equal(on_codes, on_decoded)
    # The hardware-relevant quantity is memory traffic: on codes the scan
    # touches only the packed words; decode-then-compare must materialise
    # the full uncompressed vector first.  (numpy wall times do not model
    # register-resident compares, so the assertion is on bytes.)
    packed_bytes = column.packed.nbytes()
    decoded_bytes = column.decode()[0].nbytes
    banner(
        "II.B.2 — operating on compressed data (order-preserving ablation)",
        [
            "range predicate on codes:   %.4fs over %6.1f KB of packed words"
            % (t_compressed, packed_bytes / 1024),
            "decode-then-compare:        %.4fs over %6.1f KB materialised"
            % (t_decoded, decoded_bytes / 1024),
            "memory traffic ratio:       %.1fx" % (decoded_bytes / packed_bytes),
        ],
    )
    record(
        "order-preserving-ablation",
        packed_kb=packed_bytes / 1024,
        decoded_kb=decoded_bytes / 1024,
    )
    assert packed_bytes * 3 < decoded_bytes
