"""Section II.B.7 — "Entire workloads run on column-organized tables in
dashDB are typically 10 to 50 times faster than the same workloads run on
row-organized tables with secondary indexing."

The same analytic statements run on the columnar engine and on the
row-store engine (which *does* get secondary indexes here, per the claim's
wording); the stride-size ablation follows.
"""

from __future__ import annotations

import time

from repro.baselines.costmodel import speedup_stats
from repro.baselines.rowdb import RowDatabase
from repro.database import Database
from repro.engine.operators import SimplePredicate, TableScanOp
from repro.workloads import load_into
from repro.workloads.tpcds import generate

from conftest import banner, record

WORKLOAD = [
    "SELECT COUNT(*), SUM(ss_quantity) FROM store_sales WHERE ss_sales_price > 50",
    "SELECT ss_store_sk, SUM(ss_net_profit) FROM store_sales GROUP BY ss_store_sk",
    "SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk >= 700",
    "SELECT i_category, COUNT(*) FROM store_sales, item"
    " WHERE ss_item_sk = i_item_sk GROUP BY i_category",
    "SELECT MAX(ss_net_profit), MIN(ss_net_profit) FROM store_sales"
    " WHERE ss_quantity BETWEEN 5 AND 10",
    "SELECT COUNT(DISTINCT ss_item_sk) FROM store_sales WHERE ss_sold_date_sk >= 650",
]


def test_row_vs_column_workload(dashdb_tpcds, tpcds_data, benchmark):
    rowdb = RowDatabase()
    load_into(rowdb, tpcds_data)
    # The row store gets the secondary indexing the claim mentions.
    rowdb.create_index("store_sales", "ss_sold_date_sk")
    rowdb.create_index("store_sales", "ss_item_sk")

    col_times, row_times, lines = [], [], []
    for sql in WORKLOAD:
        # No ORDER BY in this suite: compare as sorted row sets.
        assert sorted(map(repr, dashdb_tpcds.execute(sql).rows)) == sorted(
            map(repr, rowdb.execute(sql).rows)
        )
        t0 = time.perf_counter()
        dashdb_tpcds.execute(sql)
        col = time.perf_counter() - t0
        t0 = time.perf_counter()
        rowdb.execute(sql)
        row = time.perf_counter() - t0
        col_times.append(col)
        row_times.append(row)
        lines.append("%6.1fx   %s" % (row / col, sql[:70]))

    benchmark.pedantic(
        lambda: [dashdb_tpcds.execute(sql) for sql in WORKLOAD], rounds=2, iterations=1
    )

    stats = speedup_stats(col_times, row_times)
    banner(
        "II.B.7 — column-organized vs row-organized (with indexes)",
        ["paper:    typically 10-50x faster", ""]
        + lines
        + ["", "avg %.1fx  median %.1fx" % (stats["avg"], stats["median"])],
    )
    record("row-vs-column", avg=stats["avg"], median=stats["median"], paper="10-50x")
    assert stats["avg"] > 8.0, "workload-level gap should reach the claim's range"
    assert stats["min"] > 1.0, "the column store should win every statement"


def test_stride_size_ablation(dashdb_tpcds, benchmark):
    """Design-choice ablation: stride (batch) size for scan emission."""
    table = dashdb_tpcds.database.catalog.get_table("STORE_SALES").table
    pred = [SimplePredicate("SS_SALES_PRICE", ">", 5000)]  # physical cents
    timings = {}
    for stride in (128, 1024, 8192, None):
        scan = TableScanOp(table, ["SS_QUANTITY"], pushed=pred, stride_rows=stride)
        t0 = time.perf_counter()
        scan.run()
        timings["region" if stride is None else stride] = time.perf_counter() - t0
    benchmark.pedantic(
        lambda: TableScanOp(table, ["SS_QUANTITY"], pushed=pred).run(),
        rounds=3,
        iterations=1,
    )
    lines = ["stride ablation (II.B.7 'strides'):"]
    for stride, seconds in timings.items():
        lines.append("  stride %-8s %.4fs" % (stride, seconds))
    banner("II.B.7 — stride-size ablation", lines)
    record("stride-ablation", timings={str(k): v for k, v in timings.items()})
    # Tiny strides pay per-batch overhead; region-at-a-time should not lose
    # to the smallest stride.
    assert timings["region"] <= timings[128] * 1.5
