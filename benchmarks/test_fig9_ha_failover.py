"""Figure 9 — HA failover by shard reassociation.

Paper: 4 servers x 6 shards; server D fails; shards reassociate so A, B, C
serve 8 each; "the cluster continues as a well-balanced unit, albeit with
fewer total cores and less total RAM per byte of user data".
"""

from __future__ import annotations

import time

import pytest

from repro.cluster import Cluster, HardwareSpec, fail_node, reinstate_node
from repro.util.timer import SimClock

from conftest import banner, record

HW = HardwareSpec(cores=24, ram_gb=64, storage_tb=1.0)


@pytest.fixture(scope="module")
def loaded_cluster():
    clock = SimClock()
    cluster = Cluster([HW] * 4, clock=clock)
    session = cluster.connect("db2")
    session.execute(
        "CREATE TABLE sales (id INT, region VARCHAR(10), amt DECIMAL(10,2))"
        " DISTRIBUTE BY HASH (id)"
    )
    values = ", ".join(
        "(%d, '%s', %d.50)" % (i, ["east", "west", "north"][i % 3], i % 1000)
        for i in range(6000)
    )
    session.execute("INSERT INTO sales VALUES " + values)
    return cluster, session, clock


def test_fig9_failover(loaded_cluster, benchmark):
    cluster, session, clock = loaded_cluster
    query = "SELECT region, SUM(amt) FROM sales GROUP BY region ORDER BY region"
    before_counts = dict(cluster.shard_counts())
    before_rows = session.execute(query).rows
    node0 = cluster.node_by_id("node0")
    memory_before = node0.memory_per_shard_bytes
    parallelism_before = node0.parallelism_per_shard

    t_sim0 = clock.now
    moves = fail_node(cluster, "node3")
    failover_sim_seconds = clock.now - t_sim0

    after_counts = dict(cluster.shard_counts())
    t0 = time.perf_counter()
    after_rows = session.execute(query).rows
    query_after_wall = time.perf_counter() - t0

    benchmark.pedantic(lambda: session.execute(query), rounds=3, iterations=1)

    banner(
        "Figure 9 — HA failover (4 servers x 6 shards, server D fails)",
        [
            "paper:    shards of D reassociate; A,B,C serve 8 each; balanced",
            "before:   %s" % before_counts,
            "after:    %s  (moves: %d, %.1f simulated s)"
            % (after_counts, len(moves), failover_sim_seconds),
            "node0 RAM/shard: %.1f -> %.1f GiB; parallelism %d -> %d"
            % (
                memory_before / 2**30,
                node0.memory_per_shard_bytes / 2**30,
                parallelism_before,
                node0.parallelism_per_shard,
            ),
            "query answers identical after failover: %s" % (before_rows == after_rows),
        ],
    )
    record(
        "fig9-ha",
        before=str(before_counts),
        after=str(after_counts),
        answers_identical=before_rows == after_rows,
        failover_sim_seconds=failover_sim_seconds,
    )
    assert before_counts == {"node0": 6, "node1": 6, "node2": 6, "node3": 6}
    assert after_counts == {"node0": 8, "node1": 8, "node2": 8}
    assert cluster.is_balanced()
    assert before_rows == after_rows
    # Degraded capacity: per-shard memory and parallelism shrink (II.E).
    assert node0.memory_per_shard_bytes < memory_before
    assert node0.parallelism_per_shard <= parallelism_before
    reinstate_node(cluster, "node3")
    assert set(cluster.shard_counts().values()) == {6}
