"""Shared fixtures for the paper-reproduction benchmarks.

Systems are loaded once per session at a laptop-friendly scale; every
benchmark prints a paper-style summary table (run pytest with ``-s`` to see
them) and records its headline numbers into ``RESULTS`` for the
EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

import pytest

from repro.baselines import ApplianceSystem, CloudWarehouse
from repro.database import Database
from repro.workloads import CustomerWorkload, load_into
from repro.workloads.tpcds import flush_tables, generate

#: Fact-table scale for benchmark runs (20k rows per 1.0).
TPCDS_SCALE = 2.0

#: Collected headline numbers: {experiment id: {metric: value}}.
RESULTS: dict[str, dict] = {}


def record(experiment: str, **metrics) -> None:
    RESULTS.setdefault(experiment, {}).update(metrics)


def banner(title: str, lines: list[str]) -> None:
    print()
    print("=" * 72)
    print(title)
    print("-" * 72)
    for line in lines:
        print(line)
    print("=" * 72)


@pytest.fixture(scope="session")
def tpcds_data():
    return generate(scale=TPCDS_SCALE, seed=42)


@pytest.fixture(scope="session")
def dashdb_tpcds(tpcds_data):
    """dashDB Local (single node) loaded with the TPC-DS-shaped data."""
    db = Database()
    session = db.connect("db2")
    load_into(session, tpcds_data)
    return session


@pytest.fixture(scope="session")
def appliance_tpcds(tpcds_data):
    """The appliance baseline loaded with the same data."""
    appliance = ApplianceSystem()
    load_into(appliance.engine, tpcds_data)
    return appliance


@pytest.fixture(scope="session")
def cloudwh_tpcds(tpcds_data):
    """The cloud-warehouse baseline loaded with the same data."""
    warehouse = CloudWarehouse()
    load_into(warehouse._session, tpcds_data)
    flush_tables(warehouse.database)
    return warehouse


@pytest.fixture(scope="session")
def customer_workload():
    return CustomerWorkload(scale=1 / 1000, n_trades=160_000, seed=7)


@pytest.fixture(scope="session")
def dashdb_customer(customer_workload):
    db = Database()
    session = db.connect("db2")
    customer_workload.load_base(session)
    flush_tables(session.database)
    return session


@pytest.fixture(scope="session")
def appliance_customer(customer_workload):
    # Netezza-class appliances have no secondary indexes: every query is a
    # (FPGA-assisted) scan.  Primary-key B-trees still exist for uniqueness
    # (the paper: only uniqueness-enforcing indexes are allowed/needed).
    appliance = ApplianceSystem()
    customer_workload.load_base(appliance.engine)
    return appliance
