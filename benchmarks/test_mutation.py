"""Mutation-adequacy benchmark — does the verification matrix bite?

Runs the canonical repromutate configuration (seed 0, full operator
catalog, curated engine surfaces, default mutant cap) and scores the
battery: every sampled mutant is either killed by the test files that
statically reach it, reported as a survivor with a witness diff, or
listed as unreached (a static finding about the battery).  Gates:

* kill rate on reached mutants >= 0.80 (the adequacy floor);
* every repo-specific operator found targets (the catalog is not
  vacuous against this tree);
* generation is deterministic (two same-seed generations byte-match).

The summary lands in ``BENCH_mutation.json`` at the repo root — the
committed copy is the baseline CI's ``mutate`` job gates against.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.verify.mutate import MutationRun, generate_mutants, resolve_operators

from conftest import banner, record

_ROOT = pathlib.Path(__file__).resolve().parent.parent
_RESULT_PATH = _ROOT / "BENCH_mutation.json"

#: The canonical CI configuration: pinned so the committed baseline and
#: the CI run sample the identical mutant population.
CANONICAL_SEED = 0
KILL_RATE_FLOOR = 0.80


def _budget() -> float:
    return float(os.environ.get("REPRO_MUTATE_BUDGET", "1500"))


def test_mutation_adequacy():
    run = MutationRun(root=str(_ROOT), seed=CANONICAL_SEED, budget=_budget())

    # Generation determinism is cheap to check here and load-bearing for
    # the baseline: CI re-samples the same population only because the
    # generator is seed-pure.
    ops = resolve_operators(None)
    sources = run.target_sources()
    first = [m.to_json() for m in generate_mutants(sources, ops, run.seed,
                                                   run.max_mutants)]
    second = [m.to_json() for m in generate_mutants(sources, ops, run.seed,
                                                    run.max_mutants)]
    assert first == second

    report = run.execute()
    payload = report.to_json()
    counts = payload["counts"]

    banner(
        "Mutation adequacy (seed=%d, %d mutants, budget=%.0fs)"
        % (report.seed, len(report.results), report.budget),
        [
            "%-18s sampled=%-3d killed=%-3d survived=%-3d unreached=%-3d "
            "rate=%s"
            % (
                name, stats["sampled"], stats["killed"], stats["survived"],
                stats["unreached"],
                "n/a" if stats["kill_rate"] is None
                else "%.2f" % stats["kill_rate"],
            )
            for name, stats in payload["per_operator"].items()
        ]
        + [
            "overall: killed=%d survived=%d timeout=%d unreached=%d "
            "skipped=%d -> kill rate %.2f"
            % (counts["killed"], counts["survived"], counts["timeout"],
               counts["unreached"], counts["skipped"],
               payload["kill_rate"] or 0.0),
        ],
    )
    record(
        "mutation",
        mutants=len(report.results),
        killed=counts["killed"],
        survived=counts["survived"],
        unreached=counts["unreached"],
        kill_rate=payload["kill_rate"],
    )

    # Every repo-specific operator must have found real targets: an
    # operator with zero sites would make its baseline row vacuous.
    for name in ("drop-wal", "drop-commit-hook", "swap-xmin-xmax",
                 "off-by-one", "drop-lock", "commute-merge",
                 "invert-predicate"):
        assert payload["per_operator"][name]["sampled"] >= 1, name

    # Unreached mutants are findings, never silent drops: the bucket
    # count must match the explicit listing.
    assert len(payload["unreached"]) == counts["unreached"]
    for entry in payload["unreached"]:
        assert entry["symbol"] is not None or entry["module"]

    # The adequacy floor. Survivors are allowed (they are the product —
    # see tests/test_mutation_gaps.py for the pinned harvest) but the
    # battery must kill at least 4 of 5 reached mutants.
    assert payload["kill_rate"] is not None, "no mutants were reached"
    assert payload["kill_rate"] >= KILL_RATE_FLOOR, (
        "kill rate %.2f below floor %.2f; survivors:\n%s"
        % (
            payload["kill_rate"], KILL_RATE_FLOOR,
            "\n".join(s["id"] for s in payload["survivors"]),
        )
    )

    _RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True)
                            + "\n")
