"""Section II.B.4 — data skipping.

Paper: synopsis metadata every ~1K tuples is "three orders of magnitude
smaller than the user data" and "can be scanned three orders of magnitude
faster"; restrictive date predicates (e.g. recent months of a seven-year
repository) skip almost everything.
"""

from __future__ import annotations

import time

from repro.engine.operators import SimplePredicate, TableScanOp

from conftest import banner, record


def test_synopsis_size_claim(dashdb_tpcds, benchmark):
    table = dashdb_tpcds.database.catalog.get_table("STORE_SALES").table
    data_bytes = table.raw_nbytes()
    synopsis_bytes = sum(r.synopsis_nbytes() for r in table.regions)
    ratio = data_bytes / synopsis_bytes
    benchmark.pedantic(lambda: table.compressed_nbytes(), rounds=3, iterations=1)
    banner(
        "II.B.4 — synopsis footprint",
        [
            "paper:    metadata ~3 orders of magnitude smaller than user data",
            "measured: data %.1f KB, synopsis %.2f KB  (%.0fx smaller)"
            % (data_bytes / 1024, synopsis_bytes / 1024, ratio),
        ],
    )
    record("skipping-size", ratio=ratio)
    # int64 min+max+counts per 1024 rows: bounded by format, ~2 orders at
    # this row width; the per-column ratio is ~3 orders for wide tables.
    assert ratio > 25


def _seven_year_table(n_rows=2_000_000):
    """A seven-year fact loaded in date order (paper II.B.4's scenario:
    'a data repository may store data for seven years, but most queries ask
    questions over the most recent few months')."""
    import numpy as np

    from repro.storage.table import ColumnTable, TableSchema
    from repro.types import INTEGER

    schema = TableSchema("FACT7Y", (("DAY_SK", INTEGER), ("QTY", INTEGER)))
    table = ColumnTable(schema, region_rows=n_rows)
    rng = np.random.default_rng(0)
    days = np.sort(rng.integers(0, 7 * 365, size=n_rows))
    qty = rng.integers(1, 100, size=n_rows)
    table._tail[0] = days.tolist()
    table._tail[1] = qty.tolist()
    table._tail_rows = n_rows
    table.flush()
    return table


def test_skipping_effect_on_recent_window(benchmark):
    table = _seven_year_table()
    recent = 7 * 365 - 60  # the most recent two months
    pred = [SimplePredicate("DAY_SK", ">=", recent)]

    with_skip = TableScanOp(table, ["QTY"], pushed=pred, use_skipping=True)
    t0 = time.perf_counter()
    batch_skip = with_skip.run()
    t_skip = time.perf_counter() - t0

    without = TableScanOp(table, ["QTY"], pushed=pred, use_skipping=False)
    t0 = time.perf_counter()
    batch_full = without.run()
    t_full = time.perf_counter() - t0

    benchmark.pedantic(
        lambda: TableScanOp(table, ["QTY"], pushed=pred).run(),
        rounds=5,
        iterations=1,
    )

    skipped_fraction = with_skip.stats.extents_skipped / max(
        with_skip.stats.extents_total, 1
    )
    banner(
        "II.B.4 — data skipping on a recent-window predicate",
        [
            "paper:    most queries ask about recent months; extents skip",
            "measured: %d/%d extents skipped (%.0f%%)"
            % (
                with_skip.stats.extents_skipped,
                with_skip.stats.extents_total,
                100 * skipped_fraction,
            ),
            "          scan %.4fs with skipping vs %.4fs without (%.1fx)"
            % (t_skip, t_full, t_full / t_skip if t_skip > 0 else 0),
            "          identical results: %s" % (batch_skip.n == batch_full.n),
        ],
    )
    record(
        "skipping-effect",
        extents_skipped_pct=100 * skipped_fraction,
        speedup=t_full / t_skip if t_skip > 0 else None,
    )
    assert batch_skip.n == batch_full.n
    assert skipped_fraction > 0.8, "a recent window should skip most extents"
    assert with_skip.stats.rows_scanned < without.stats.rows_scanned / 3
