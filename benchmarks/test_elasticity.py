"""Section II.E — elastic growth and contraction.

Paper: scale-in reuses the failover path deliberately; scale-out mirrors
reinstating a repaired node; both are shard reassociation with RAM and
parallelism adjusted, "largely automated" given the new hardware.
"""

from __future__ import annotations

from repro.cluster import Cluster, HardwareSpec, scale_in, scale_out
from repro.util.timer import SimClock

from conftest import banner, record

HW = HardwareSpec(cores=8, ram_gb=64, storage_tb=1.0)


def _loaded(clock):
    cluster = Cluster([HW] * 4, clock=clock)
    session = cluster.connect("db2")
    session.execute(
        "CREATE TABLE metrics (id INT, v DECIMAL(10,2)) DISTRIBUTE BY HASH (id)"
    )
    session.execute(
        "INSERT INTO metrics VALUES "
        + ", ".join("(%d, %d.25)" % (i, i) for i in range(4000))
    )
    return cluster, session


def test_elastic_cycle(benchmark):
    clock = SimClock()
    cluster, session = _loaded(clock)
    checksum = session.execute("SELECT SUM(v), COUNT(*) FROM metrics").rows

    t0 = clock.now
    node = scale_out(cluster, HW)
    grow_seconds = clock.now - t0
    counts_grown = dict(cluster.shard_counts())
    assert cluster.is_balanced()
    assert session.execute("SELECT SUM(v), COUNT(*) FROM metrics").rows == checksum

    t0 = clock.now
    moves = scale_in(cluster, node.node_id)
    shrink_seconds = clock.now - t0
    counts_shrunk = dict(cluster.shard_counts())
    assert cluster.is_balanced()
    assert session.execute("SELECT SUM(v), COUNT(*) FROM metrics").rows == checksum

    benchmark.pedantic(
        lambda: session.execute("SELECT SUM(v) FROM metrics"), rounds=3, iterations=1
    )

    banner(
        "II.E — elastic growth and contraction",
        [
            "paper:    add/remove a server; shards reassociate; RAM and",
            "          parallelism per shard adjust; no data moves",
            "grow:     4 -> 5 nodes in %.1f simulated s  -> %s"
            % (grow_seconds, counts_grown),
            "shrink:   5 -> 4 nodes in %.1f simulated s  -> %s (%d moves)"
            % (shrink_seconds, counts_shrunk, len(moves)),
            "answers stable throughout: True",
        ],
    )
    record(
        "elasticity",
        grow_seconds=grow_seconds,
        shrink_seconds=shrink_seconds,
    )
    assert grow_seconds < 120
    assert shrink_seconds < 60
    assert set(counts_shrunk.values()) == {6}
