"""Table 1, Test 4 — BD Insight 5-stream throughput vs. a cloud warehouse.

Paper: "we ran a throughput test of dashDB running on the Amazon Cloud AWS,
executing a 5-stream workload of IBM BD Insight workload and compared these
results to a popular cloud data warehouse running on the same platform with
identical hardware ... dashDB achieved a 3.2x throughput advantage" (QpH).

The baseline here is a column store sharing dashDB's storage but with the
seven BLU techniques disabled (no operate-on-compressed / software-SIMD, no
data skipping, LRU caching) — the ablation distance Test 4 measures.
"""

from __future__ import annotations

import time

from repro.baselines.costmodel import CLOUDWH_PROFILE, DASHDB_PROFILE
from repro.workloads import BDINSIGHT_QUERIES, measure_pool, run_multistream

from conftest import banner, record

N_STREAMS = 5  # the paper's stream count
CONCURRENCY = 5


def test_test4_bdinsight_throughput(dashdb_tpcds, cloudwh_tpcds, benchmark):
    # Correctness parity between the two columnar systems.
    for query_id, sql in BDINSIGHT_QUERIES:
        assert (
            dashdb_tpcds.execute(sql).rows
            == cloudwh_tpcds.execute(sql).result.rows
        ), "mismatch on %s" % query_id

    from repro.baselines.costmodel import SCAN_SECONDS_PER_MB

    def dash_seconds(result, wall):
        compressed, _ = dashdb_tpcds.database.last_query_bytes()
        # Operating on compressed data: dashDB streams compressed bytes.
        return DASHDB_PROFILE.query_seconds(wall) + (
            compressed / 1e6
        ) * SCAN_SECONDS_PER_MB

    dash_measure = measure_pool(
        lambda sql: dashdb_tpcds.execute(sql),
        BDINSIGHT_QUERIES,
        repeats=2,
        seconds_of=dash_seconds,
    )
    cloud_measure = measure_pool(
        lambda sql: cloudwh_tpcds.execute(sql),
        BDINSIGHT_QUERIES,
        repeats=2,
        seconds_of=lambda timed, wall: timed.seconds,
    )

    benchmark.pedantic(
        lambda: [dashdb_tpcds.execute(sql) for _, sql in BDINSIGHT_QUERIES],
        rounds=2,
        iterations=1,
    )

    dash_sched = run_multistream(dash_measure, N_STREAMS, CONCURRENCY)
    cloud_sched = run_multistream(cloud_measure, N_STREAMS, CONCURRENCY)
    ratio = dash_sched.throughput_per_hour / cloud_sched.throughput_per_hour

    banner(
        "Table 1 / Test 4 — BD Insight 5-stream throughput (QpH)",
        [
            "paper:    3.2x QpH advantage on identical AWS hardware",
            "measured: dashDB %.0f QpH vs cloud warehouse %.0f QpH -> %.1fx"
            % (dash_sched.throughput_per_hour, cloud_sched.throughput_per_hour, ratio),
            "          serial pool: dashDB %.2fs vs cloud %.2fs"
            % (dash_measure.total, cloud_measure.total),
        ],
    )
    record("table1-test4", qph_ratio=ratio, paper_ratio=3.2)
    assert ratio > 1.5, "the seven techniques should buy a clear QpH advantage"
