"""Table 1, Test 3 — TPC-DS queries, dashDB vs. appliance.

Paper: "we tested dashDB Local using TPCDS queries, and compared these to a
high performance analytics appliance ... dashDB achieved a better than 2x
average query speedup" (6x24-core dashDB nodes vs. 7x20-core + 14 FPGA
appliance nodes).
"""

from __future__ import annotations

import time

from repro.baselines.costmodel import DASHDB_PROFILE, speedup_stats
from repro.workloads import TPCDS_QUERIES

from conftest import banner, record


def test_test3_tpcds_speedup(dashdb_tpcds, appliance_tpcds, benchmark):
    # Correctness first: both systems answer identically.
    for query_id, sql in TPCDS_QUERIES:
        assert (
            dashdb_tpcds.execute(sql).rows
            == appliance_tpcds.engine.execute(sql).rows
        ), "mismatch on %s" % query_id

    dashdb_times = []
    appliance_times = []
    per_query = []
    for query_id, sql in TPCDS_QUERIES:
        t0 = time.perf_counter()
        dashdb_tpcds.execute(sql)
        dash = DASHDB_PROFILE.query_seconds(time.perf_counter() - t0)
        appl = appliance_tpcds.execute(sql).seconds
        dashdb_times.append(dash)
        appliance_times.append(appl)
        per_query.append((query_id, dash, appl))

    benchmark.pedantic(
        lambda: [dashdb_tpcds.execute(sql) for _, sql in TPCDS_QUERIES],
        rounds=2,
        iterations=1,
    )

    stats = speedup_stats(dashdb_times, appliance_times)
    lines = [
        "paper:    avg query speedup > 2x (appliance has 14 FPGAs, more nodes)",
        "measured: avg %.1fx, median %.1fx over %d queries"
        % (stats["avg"], stats["median"], stats["n"]),
        "",
        "%-24s %10s %10s %8s" % ("query", "dashDB(s)", "appl(s)", "speedup"),
    ]
    for query_id, dash, appl in per_query:
        lines.append("%-24s %10.4f %10.4f %7.1fx" % (query_id, dash, appl, appl / dash))
    banner("Table 1 / Test 3 — TPC-DS query set", lines)
    record(
        "table1-test3",
        avg_speedup=stats["avg"],
        median_speedup=stats["median"],
        paper_avg=2.1,
    )
    assert stats["avg"] > 2.0, "average TPC-DS speedup should exceed the paper's 2x"
    assert stats["median"] > 1.0, "dashDB should win the median query"
