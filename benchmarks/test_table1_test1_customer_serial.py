"""Table 1, Test 1 — serial customer workload, dashDB vs. appliance.

Paper: single-stream query performance over the customer financial
workload; "of the entire workload a subset of 15,000 queries were used.
Measurements were taken from the 3,500 longest running queries.  The dashDB
Local system realized an average increase of 27.1 times faster with a
median performance improvement of 6.3 times."

Here: the scaled long-tail pool runs serially on both systems; wall times
convert through the hardware profiles; the summary reports avg/median
speedup.  The assertions check the paper's *shape*: dashDB wins broadly,
the distribution is right-skewed (avg well above median), and the average
lands in the tens.
"""

from __future__ import annotations

import time

from repro.baselines.costmodel import APPLIANCE_PROFILE, DASHDB_PROFILE, speedup_stats
from repro.baselines.appliance import ROW_BYTES_ESTIMATE

from conftest import banner, record

POOL_SIZE = 24


def _measure_dashdb(session, pool):
    times = []
    for sql in pool:
        t0 = time.perf_counter()
        session.execute(sql)
        wall = time.perf_counter() - t0
        times.append(DASHDB_PROFILE.query_seconds(wall))
    return times


def _measure_appliance(appliance, pool):
    times = []
    for sql in pool:
        timed = appliance.execute(sql)
        times.append(timed.seconds)
    return times


def test_test1_serial_customer_speedup(
    dashdb_customer, appliance_customer, customer_workload, benchmark
):
    pool = customer_workload.long_tail_pool(POOL_SIZE)
    # Verify both systems agree before timing anything.
    for sql in pool[:6]:
        assert dashdb_customer.execute(sql).rows == appliance_customer.engine.execute(sql).rows

    dashdb_times = _measure_dashdb(dashdb_customer, pool)
    appliance_times = _measure_appliance(appliance_customer, pool)
    stats = speedup_stats(dashdb_times, appliance_times)

    # pytest-benchmark: the dashDB side of the serial pool.
    benchmark.pedantic(
        lambda: [dashdb_customer.execute(sql) for sql in pool[:6]],
        rounds=2,
        iterations=1,
    )

    wins = sum(1 for d, a in zip(dashdb_times, appliance_times) if d < a)
    banner(
        "Table 1 / Test 1 — customer workload, serial long-tail queries",
        [
            "paper:    avg speedup 27.1x, median 6.3x (3,500 longest queries)",
            "measured: avg speedup %.1fx, median %.1fx (n=%d, scaled pool)"
            % (stats["avg"], stats["median"], stats["n"]),
            "          min %.1fx  max %.1fx  dashDB wins %d/%d"
            % (stats["min"], stats["max"], wins, stats["n"]),
        ],
    )
    record(
        "table1-test1",
        avg_speedup=stats["avg"],
        median_speedup=stats["median"],
        paper_avg=27.1,
        paper_median=6.3,
    )
    # Shape assertions (not absolute-number matching):
    assert wins >= stats["n"] * 0.9, "dashDB should win the long tail broadly"
    assert stats["avg"] > 3.0, "average speedup should be several-fold"
    assert stats["avg"] > stats["median"], "distribution should be right-skewed"
