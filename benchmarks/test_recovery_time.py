"""Recovery time vs. log length — the durability subsystem's cost curve.

Crash recovery replays the WAL from the last fuzzy checkpoint, so its
simulated cost should grow with the number of committed transactions since
that checkpoint — and a checkpoint should collapse it back to near the
checkpoint-load floor.  This is the knob behind "failover is
recovery-bounded": `ha.fail_node` charges exactly these costs for each
orphaned shard.

The summary lands in ``BENCH_durability.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.database import Database
from repro.durability import DurabilityManager
from repro.storage.filesystem import ClusterFileSystem
from repro.util.timer import SimClock

from conftest import banner, record

_RESULT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_durability.json"
)

LOG_LENGTHS = [10, 40, 160, 640]


def _build(n_commits: int):
    clock = SimClock()
    fs = ClusterFileSystem()
    manager = DurabilityManager(fs, path="db", clock=clock)
    db = Database(name="BENCH", clock=clock, durability=manager)
    session = db.connect()
    session.execute("CREATE TABLE t (k INT, v INT)")
    for i in range(n_commits):
        session.execute("INSERT INTO t VALUES (%d, %d)" % (i, i))
    return db, clock


def test_recovery_time_vs_log_length(benchmark):
    curve = []
    for n in LOG_LENGTHS:
        db, clock = _build(n)
        t0 = time.perf_counter()
        report = db.reopen(clean=False)
        wall = time.perf_counter() - t0
        assert db.connect().query("SELECT COUNT(*) FROM t") == [(n,)]
        curve.append(
            {
                "log_commits": n,
                "records_replayed": report.records_replayed,
                "recovery_sim_seconds": round(report.sim_seconds, 6),
                "recovery_wall_seconds": round(wall, 6),
            }
        )

    # A checkpoint bounds replay: same workload, checkpoint near the end.
    db, clock = _build(LOG_LENGTHS[-1])
    db.checkpoint()
    session = db.connect()
    for i in range(10):
        session.execute("INSERT INTO t VALUES (%d, 0)" % (10_000 + i))
    ckpt_report = db.reopen(clean=False)
    assert db.connect().query("SELECT COUNT(*) FROM t") == [(LOG_LENGTHS[-1] + 10,)]

    benchmark.pedantic(lambda: db.reopen(clean=False), rounds=3, iterations=1)

    sim_times = [p["recovery_sim_seconds"] for p in curve]
    banner(
        "Crash recovery time vs. WAL length (simulated clock)",
        [
            "log=%4d commits -> replay %5d records, %7.3f sim s (%.4f wall s)"
            % (
                p["log_commits"],
                p["records_replayed"],
                p["recovery_sim_seconds"],
                p["recovery_wall_seconds"],
            )
            for p in curve
        ]
        + [
            "with checkpoint at %d: replay %d records, %.3f sim s"
            % (
                LOG_LENGTHS[-1],
                ckpt_report.records_replayed,
                ckpt_report.sim_seconds,
            )
        ],
    )
    record(
        "recovery-time",
        max_log_commits=LOG_LENGTHS[-1],
        max_recovery_sim_seconds=sim_times[-1],
        checkpointed_recovery_sim_seconds=round(ckpt_report.sim_seconds, 6),
    )

    # Recovery cost must grow with log length...
    assert sim_times == sorted(sim_times)
    assert sim_times[-1] > sim_times[0]
    # ...and a checkpoint must cut the replay to the post-checkpoint tail.
    assert ckpt_report.records_replayed <= 2 * 10
    assert ckpt_report.transactions_replayed == 10

    _RESULT_PATH.write_text(
        json.dumps(
            {
                "experiment": "recovery-time-vs-log-length",
                "curve": curve,
                "checkpointed": {
                    "log_commits_before_checkpoint": LOG_LENGTHS[-1],
                    "commits_after_checkpoint": 10,
                    "records_replayed": ckpt_report.records_replayed,
                    "recovery_sim_seconds": round(ckpt_report.sim_seconds, 6),
                },
            },
            indent=2,
        )
        + "\n"
    )
