"""Technique ablation sweep: which of the seven techniques buys what.

Test 4 measures the techniques as a bundle; this ablation removes them one
at a time from the dashDB configuration and reruns the BD Insight pool,
attributing the gap (DESIGN.md section 5 lists the design choices this
covers).
"""

from __future__ import annotations

import time

from repro.baselines.costmodel import SCAN_SECONDS_PER_MB
from repro.database import Database
from repro.workloads import BDINSIGHT_QUERIES, load_into

from conftest import banner, record

#: Ablation variants: scan options + buffer-pool policy.
VARIANTS = {
    "full dashDB": dict(scan_options=None, policy="random-weight"),
    "- data skipping": dict(
        scan_options={"use_skipping": False, "use_compressed_eval": True},
        policy="random-weight",
    ),
    "- operate-on-compressed": dict(
        scan_options={"use_skipping": True, "use_compressed_eval": False},
        policy="random-weight",
    ),
    "- scan-resistant pool": dict(scan_options=None, policy="lru"),
    "- all three": dict(
        scan_options={"use_skipping": False, "use_compressed_eval": False},
        policy="lru",
    ),
}


def _run_variant(tpcds_data, scan_options, policy) -> tuple[float, float]:
    db = Database(
        bufferpool_pages=1024, bufferpool_policy=policy, scan_options=scan_options
    )
    session = db.connect("db2")
    load_into(session, tpcds_data)
    total_wall = 0.0
    total_bytes = 0
    for _, sql in BDINSIGHT_QUERIES:
        t0 = time.perf_counter()
        session.execute(sql)
        total_wall += time.perf_counter() - t0
        compressed, raw = db.last_query_bytes()
        # A variant without operate-on-compressed streams raw bytes.
        if scan_options and not scan_options.get("use_compressed_eval", True):
            total_bytes += raw
        else:
            total_bytes += compressed
    return total_wall, total_bytes / 1e6


def test_technique_ablation_sweep(tpcds_data, benchmark):
    results = {}
    for name, config in VARIANTS.items():
        wall, scanned_mb = _run_variant(tpcds_data, **config)
        results[name] = wall + scanned_mb * SCAN_SECONDS_PER_MB

    benchmark.pedantic(
        lambda: _run_variant(tpcds_data, **VARIANTS["full dashDB"]),
        rounds=1,
        iterations=1,
    )

    base = results["full dashDB"]
    lines = ["BD Insight pool, simulated seconds per variant:", ""]
    for name, seconds in results.items():
        lines.append(
            "%-26s %7.2fs   (%.2fx of full)" % (name, seconds, seconds / base)
        )
    banner("Ablation — removing the engine techniques one at a time", lines)
    record(
        "technique-ablation",
        seconds={k: round(v, 3) for k, v in results.items()},
    )
    # Every removal must cost something; removing all three costs the most.
    assert all(seconds >= base * 0.98 for seconds in results.values())
    assert results["- all three"] == max(results.values())
    assert results["- operate-on-compressed"] > base * 1.2
