"""Section II.D.2 / Figure 7 — collocated Spark fetch with pushdown.

Paper: "for each database node an own Apache Spark cluster is available
which fetches the database data collocated using an optimized data
transfer" and "to optimize the transfer an additional where clause could
be pushed to the database to transfer only the data really needed".
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, HardwareSpec
from repro.spark import DashDBSparkContext

from conftest import banner, record

HW = HardwareSpec(cores=8, ram_gb=64, storage_tb=1.0)


@pytest.fixture(scope="module")
def spark_cluster():
    cluster = Cluster([HW] * 4)
    session = cluster.connect("db2")
    session.execute(
        "CREATE TABLE events (id INT, kind VARCHAR(8), v INT) DISTRIBUTE BY HASH (id)"
    )
    values = ", ".join(
        "(%d, '%s', %d)" % (i, ["click", "view", "buy"][i % 3], i % 500)
        for i in range(9000)
    )
    session.execute("INSERT INTO events VALUES " + values)
    return cluster


def test_collocated_vs_remote_transfer(spark_cluster, benchmark):
    local = DashDBSparkContext(spark_cluster)
    local_count = local.table_rdd("events", collocated=True).count()
    remote = DashDBSparkContext(spark_cluster)
    remote_count = remote.table_rdd("events", collocated=False).count()
    assert local_count == remote_count == 9000

    benchmark.pedantic(
        lambda: DashDBSparkContext(spark_cluster).table_rdd("events").count(),
        rounds=3,
        iterations=1,
    )

    ratio = remote.transfer.bytes_remote / local.transfer.bytes_local
    banner(
        "II.D.2 / Fig. 7 — collocated fetch vs remote (coordinator) fetch",
        [
            "paper:    each Spark worker fetches its node's shards locally",
            "measured: collocated %.1f KB vs remote %.1f KB transferred (%.1fx)"
            % (
                local.transfer.bytes_local / 1024,
                remote.transfer.bytes_remote / 1024,
                ratio,
            ),
            "partitions = shards = %d" % spark_cluster.n_shards,
        ],
    )
    record("spark-locality", transfer_ratio=ratio)
    assert ratio >= 2.0  # remote routes every byte twice
    assert local.transfer.rows_remote == 0


def test_pushdown_shrinks_transfer(spark_cluster, benchmark):
    no_push = DashDBSparkContext(spark_cluster)
    all_rows = no_push.table_rdd("events").collect()
    buys_client_side = [r for r in all_rows if r["KIND"] == "buy"]

    pushed = DashDBSparkContext(spark_cluster)
    buys_pushed = pushed.table_rdd("events", where="kind = 'buy'").collect()

    benchmark.pedantic(
        lambda: DashDBSparkContext(spark_cluster)
        .table_rdd("events", where="kind = 'buy'")
        .count(),
        rounds=3,
        iterations=1,
    )

    assert sorted(r["ID"] for r in buys_pushed) == sorted(
        r["ID"] for r in buys_client_side
    )
    reduction = no_push.transfer.rows_local / pushed.transfer.rows_local
    banner(
        "II.D.2 / Fig. 7 — WHERE-clause pushdown",
        [
            "paper:    push the where clause 'to transfer only the data really needed'",
            "measured: %d rows without pushdown vs %d with (%.1fx reduction)"
            % (no_push.transfer.rows_local, pushed.transfer.rows_local, reduction),
        ],
    )
    record("spark-pushdown", row_reduction=reduction)
    assert reduction > 2.5


def test_scaling_with_nodes(benchmark):
    """Paper: 'the same scalability curves normally achieved only in a
    highly optimized data warehouse ... can now be achieved on Apache
    Spark' — partitions (and hence parallel tasks) track the cluster."""
    lines = []
    tasks_by_nodes = {}
    for n_nodes in (1, 2, 4):
        cluster = Cluster([HW] * n_nodes)
        session = cluster.connect("db2")
        session.execute("CREATE TABLE t (a INT, b INT) DISTRIBUTE BY HASH (a)")
        session.execute(
            "INSERT INTO t VALUES " + ", ".join("(%d, %d)" % (i, i % 7) for i in range(2000))
        )
        dsc = DashDBSparkContext(cluster)
        rdd = dsc.table_rdd("t").map(lambda r: (r["B"], r["A"])).reduce_by_key(
            lambda a, b: a + b
        )
        rdd.collect()
        metrics = dsc.scheduler.last_metrics
        tasks_by_nodes[n_nodes] = metrics.tasks
        lines.append(
            "%d node(s): %2d shards -> %2d partitions, %3d tasks, %d shuffled rows"
            % (n_nodes, cluster.n_shards, cluster.n_shards, metrics.tasks, metrics.shuffled_records)
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    banner("II.D.2 — Spark parallelism tracks the MPP cluster", lines)
    record("spark-scaling", tasks_by_nodes={str(k): v for k, v in tasks_by_nodes.items()})
    assert tasks_by_nodes[4] > tasks_by_nodes[1]
