"""Model-checking coverage benchmark — exploration throughput per scenario.

Runs the full scenario registry under the default (or ``REPRO_MC_BUDGET``)
budget and reports, per scenario, how many distinct schedules completed,
how many scheduled states the search visited, how much the reductions
pruned, and whether the bounded space was exhausted.  Any counterexample
fails the benchmark outright: the registry is the engine's concurrency
regression suite.

The summary lands in ``BENCH_modelcheck.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.verify.mc import (
    DEFAULT_PREEMPTION_BOUND,
    SCENARIOS,
    default_budget,
    explore,
    lockorder,
)

from conftest import banner, record

_RESULT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_modelcheck.json"
)


def test_modelcheck_coverage():
    budget = default_budget()
    rows = []
    for scenario in SCENARIOS:
        t0 = time.perf_counter()
        report = explore(scenario, budget=budget)
        wall = time.perf_counter() - t0
        assert report.ok, report.counterexample.render()
        rows.append(
            {
                "scenario": scenario.name,
                "schedules": report.schedules,
                "states": report.states,
                "pruned_runs": report.pruned_runs,
                "exhausted": report.completed,
                "races": report.races,
                "wall_seconds": round(wall, 3),
            }
        )

    lock_report = lockorder.check(paths=(str(_RESULT_PATH.parent / "src"),))
    assert lock_report.ok, "\n".join(
        lock_report.violations + [" -> ".join(c) for c in lock_report.cycles]
    )

    banner(
        "Model checking coverage (budget=%d, preemption bound=%d)"
        % (budget, DEFAULT_PREEMPTION_BOUND),
        [
            "%-28s schedules=%-4d states=%-6d pruned=%-4d %s (%.2f s)"
            % (
                r["scenario"], r["schedules"], r["states"], r["pruned_runs"],
                "exhausted" if r["exhausted"] else "budget-capped",
                r["wall_seconds"],
            )
            for r in rows
        ]
        + [
            "lock order: %d edge(s), acyclic and rank-ordered"
            % len(lock_report.edges)
        ],
    )
    record(
        "modelcheck",
        scenarios=len(rows),
        schedules=sum(r["schedules"] for r in rows),
        states=sum(r["states"] for r in rows),
        exhausted=sum(1 for r in rows if r["exhausted"]),
    )

    assert len(rows) >= 4  # the acceptance floor: >= 4 explored scenarios
    assert all(r["schedules"] >= 1 for r in rows)

    _RESULT_PATH.write_text(
        json.dumps(
            {
                "budget": budget,
                "preemption_bound": DEFAULT_PREEMPTION_BOUND,
                "scenarios": rows,
                "lock_order": lock_report.to_json(),
            },
            indent=2,
        )
        + "\n"
    )
