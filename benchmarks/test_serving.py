"""Serving layer at scale — 10⁵ open-loop sessions against the gateway.

The BD Insight serving story (paper III): dashboards ask the same handful
of reports over and over, so the serving layer's result cache turns the
repeat traffic into sub-millisecond hits while admission control sheds
the overload the cache-less system cannot absorb.

Protocol (the repo's standard factoring — real engine speed × simulated
concurrency):

1. load the customer workload and measure each dashboard query's **miss**
   cost (engine execution through the live gateway) and **hit** cost
   (normalize + validate + replay from the result cache);
2. generate ≥10⁵ open-loop sessions with heavy-tailed (lognormal)
   inter-arrivals and a Zipf-skewed query mix on the simulated clock,
   offered at a rate deliberately *above* the cache-off capacity;
3. play the identical arrival trace through per-tenant admission control
   twice — cache on and cache off — and compare completed QpH.

Gate: the dashboard-repeat mix must sustain **≥ 5× QpH** with the cache
on.  The summary lands in ``BENCH_serving.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib

from repro.cluster.hardware import HardwareSpec
from repro.database import Database
from repro.serving import (
    ServiceClass,
    ServingGateway,
    measure_serving_pool,
    open_loop_arrivals,
    recommend,
    zipf_weights,
)
from repro.workloads import CustomerWorkload
from repro.workloads.tpcds import flush_tables

from conftest import banner, record

N_SESSIONS = 120_000
SEED = 47
QPH_GATE = 5.0  # cache-on must beat cache-off by this factor
OVERLOAD_FACTOR = 8.0  # offered rate vs measured cache-off capacity

#: The admission class under test: few slots, bounded queue, a timeout —
#: overload must shed (SQLSTATE 57014), not queue without bound.
CONCURRENCY = 4
QUEUE_LIMIT = 16
TIMEOUT_SECONDS = 0.5

_RESULT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_serving.json"
)


def _dashboard_pool(workload):
    """The repeating dashboard mix, heavy reports first: the Zipf head —
    the queries dashboards repeat most — are the expensive rollups (tens
    of ms each), trailed by cheap operational lookups.  Repeated heavy
    reports are exactly what the result cache monetizes."""
    queries = workload.heavy_selects() + workload.short_selects()
    return [("q%02d" % i, sql) for i, sql in enumerate(queries)]


def test_serving_open_loop_cache_on_vs_off(benchmark):
    workload = CustomerWorkload(scale=1 / 1000, n_trades=60_000, seed=7)
    db = Database()
    session = db.connect("db2")
    workload.load_base(session)
    flush_tables(db)
    gateway = ServingGateway(db)
    pool = _dashboard_pool(workload)

    # Phase 1: measured costs through the live gateway (miss, then hit).
    profile = measure_serving_pool(gateway, pool, session=session)
    miss_mean = profile.measurement.total / len(pool)
    assert profile.hit_seconds < miss_mean, "cache hits are not cheaper?"

    # Phase 2: the arrival trace, offered above cache-off capacity so the
    # cache-less run must shed.  Capacity is sized against the *mix*: the
    # Zipf weights decide how often each measured miss cost is paid.
    weights = zipf_weights(len(pool), s=1.1)
    mix_miss_mean = float(
        sum(
            w * profile.measurement.seconds[q]
            for w, (q, _) in zip(weights, pool)
        )
    )
    capacity_off_qps = CONCURRENCY / mix_miss_mean
    offered_qps = OVERLOAD_FACTOR * capacity_off_qps
    batch = open_loop_arrivals(
        [q for q, _ in pool],
        n_sessions=N_SESSIONS,
        offered_qps=offered_qps,
        seed=SEED,
        sigma=1.0,
        zipf_s=1.1,
    )
    classes = {
        "dashboard": ServiceClass(
            name="dashboard",
            concurrency=CONCURRENCY,
            queue_limit=QUEUE_LIMIT,
            timeout_seconds=TIMEOUT_SECONDS,
        )
    }

    # Phase 3: identical trace, cache on vs cache off.
    on = gateway.open_loop(batch, profile, cache_enabled=True, classes=classes)
    off = gateway.open_loop(
        batch, profile, cache_enabled=False, classes=classes
    )
    gateway.last_open_loop = on  # monreport shows the cache-on run
    ratio = on.result.qph / off.result.qph if off.result.qph else 0.0

    assert len(batch) >= 100_000
    assert on.hit_rate > 0.9, "dashboard repeats should mostly hit"
    assert off.result.shed_rate > 0.5, "offered load failed to overload"
    assert on.result.shed_rate < off.result.shed_rate
    assert ratio >= QPH_GATE, (
        "cache-on QpH only %.2fx cache-off (gate %.1fx)" % (ratio, QPH_GATE)
    )

    # Capacity sizing from the same measurements: what to deploy for this
    # offered load, with and without the cache folded in.
    hardware = HardwareSpec(cores=16, ram_gb=64, storage_tb=4.0)
    mix = {q: float(w) for w, (q, _) in zip(weights, pool)}
    sized_cold = recommend(
        offered_qps, profile.measurement, hardware, weights=mix
    )
    sized_warm = recommend(
        offered_qps,
        profile.measurement,
        hardware,
        hit_rate=on.hit_rate,
        hit_seconds=profile.hit_seconds,
        weights=mix,
    )
    assert sized_warm.required_slots <= sized_cold.required_slots

    # Live-path sanity for the timing harness: a cached dashboard hit.
    hot_sql = pool[0][1]
    gateway.execute(hot_sql, session=session)
    benchmark.pedantic(
        lambda: gateway.execute(hot_sql, session=session),
        rounds=5,
        iterations=20,
    )

    banner(
        "Serving — %d open-loop sessions at %.0f qps offered (%.1fx capacity)"
        % (N_SESSIONS, offered_qps, OVERLOAD_FACTOR),
        [
            "pool: %d dashboard queries, mix miss %.2f ms / hit %.3f ms"
            % (len(pool), mix_miss_mean * 1e3, profile.hit_seconds * 1e3),
            "cache ON : %.0f QpH, p50 %.1f ms, p99 %.1f ms, shed %.1f%%, hits %.1f%%"
            % (
                on.result.qph,
                on.result.p50 * 1e3,
                on.result.p99 * 1e3,
                100 * on.result.shed_rate,
                100 * on.hit_rate,
            ),
            "cache OFF: %.0f QpH, p50 %.1f ms, p99 %.1f ms, shed %.1f%%"
            % (
                off.result.qph,
                off.result.p50 * 1e3,
                off.result.p99 * 1e3,
                100 * off.result.shed_rate,
            ),
            "QpH ratio %.2fx (gate >= %.1fx)" % (ratio, QPH_GATE),
            "sizer: %d nodes cold -> %d nodes with cache (%d/%d slots)"
            % (
                sized_cold.nodes,
                sized_warm.nodes,
                sized_warm.required_slots,
                sized_cold.required_slots,
            ),
        ],
    )
    record(
        "serving",
        sessions=len(batch),
        offered_qps=offered_qps,
        qph_on=on.result.qph,
        qph_off=off.result.qph,
        qph_ratio=ratio,
        hit_rate=on.hit_rate,
    )

    def _run_section(outcome):
        r = outcome.result
        return {
            "qph": round(r.qph, 2),
            "p50_seconds": round(r.p50, 6),
            "p99_seconds": round(r.p99, 6),
            "completed": r.completed,
            "shed_queue_full": r.shed_queue_full,
            "shed_timeout": r.shed_timeout,
            "shed_rate": round(r.shed_rate, 4),
            "cache_hit_rate": round(outcome.hit_rate, 4),
        }

    _RESULT_PATH.write_text(
        json.dumps(
            {
                "workload": "serving-open-loop-dashboard",
                "sessions": len(batch),
                "offered_qps": round(offered_qps, 2),
                "overload_factor": OVERLOAD_FACTOR,
                "pool_queries": len(pool),
                "miss_seconds_mean": round(miss_mean, 6),
                "miss_seconds_mix": round(mix_miss_mean, 6),
                "hit_seconds": round(profile.hit_seconds, 6),
                "admission": {
                    "concurrency": CONCURRENCY,
                    "queue_limit": QUEUE_LIMIT,
                    "timeout_seconds": TIMEOUT_SECONDS,
                },
                "cache_on": _run_section(on),
                "cache_off": _run_section(off),
                "qph_ratio": round(ratio, 2),
                "qph_gate": QPH_GATE,
                "sizer": {
                    "cold": sized_cold.report(),
                    "warm": sized_warm.report(),
                },
            },
            indent=2,
        )
        + "\n"
    )
    gateway.close()
