"""Morsel-driven parallelism on the Table-1 customer workload.

Serial vs DOP-4 execution of the long-tail scan/aggregate pool.  Two
timing surfaces are reported:

* **simulated speedup** — from the parallel engine's own pool accounting:
  the serial-equivalent cost is the sum of task CPU spans
  (``busy_seconds``) and the parallel cost is the list-scheduled makespan
  of those same spans over the configured workers
  (``makespan_seconds``).  This is the number the sim clock charges and
  is independent of host oversubscription, so it carries the assertion
  (>= 1.5x on 4 workers).
* **wall clock** — recorded for reference only: a single-core CI
  container cannot show real thread speedup through the GIL.

The summary lands in ``BENCH_parallel.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.database import Database
from repro.workloads.tpcds import flush_tables

from conftest import banner, record

POOL_SIZE = 24
DOP = 4

#: Deliberately small morsels so the scaled-down fact table still splits
#: into enough tasks per operator to load every worker.
MORSEL_ROWS = 4_096

_RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _timed_pool(session, pool):
    times = []
    for sql in pool:
        t0 = time.perf_counter()
        session.execute(sql)
        times.append(time.perf_counter() - t0)
    return times


def test_parallel_speedup_customer_workload(
    dashdb_customer, customer_workload, benchmark
):
    par_db = Database(parallelism=DOP, morsel_rows=MORSEL_ROWS)
    par = par_db.connect("db2")
    customer_workload.load_base(par)
    flush_tables(par_db)

    pool = customer_workload.long_tail_pool(POOL_SIZE)

    # Correctness before speed: both engines answer identically.
    for sql in pool:
        assert dashdb_customer.execute(sql).rows == par.execute(sql).rows, sql

    serial_wall = sum(_timed_pool(dashdb_customer, pool))

    # Measure the parallel engine over a clean accounting window.
    busy0 = par_db.pool.busy_seconds_total
    span0 = par_db.pool.makespan_seconds_total
    runs0 = par_db.pool.runs_total
    parallel_wall = sum(_timed_pool(par, pool))
    busy = par_db.pool.busy_seconds_total - busy0
    makespan = par_db.pool.makespan_seconds_total - span0
    runs = par_db.pool.runs_total - runs0

    assert runs > 0 and busy > 0.0, "workload never reached the worker pool"
    sim_speedup = busy / makespan if makespan > 0 else float(DOP)
    wall_ratio = serial_wall / parallel_wall if parallel_wall > 0 else 1.0

    benchmark.pedantic(
        lambda: [par.execute(sql) for sql in pool[:6]],
        rounds=2,
        iterations=1,
    )

    banner(
        "Parallel execution — customer long-tail pool, serial vs DOP %d" % DOP,
        [
            "sim:  busy %.3fs -> makespan %.3fs  speedup %.2fx (assert >= 1.5x)"
            % (busy, makespan, sim_speedup),
            "wall: serial %.3fs  parallel %.3fs  ratio %.2fx (reference only)"
            % (serial_wall, parallel_wall, wall_ratio),
            "pool: %d runs, %d tasks at DOP %d"
            % (runs, par_db.pool.tasks_total, DOP),
        ],
    )
    record(
        "parallel-speedup",
        sim_speedup=sim_speedup,
        wall_ratio=wall_ratio,
        dop=DOP,
    )
    _RESULT_PATH.write_text(
        json.dumps(
            {
                "workload": "table1-customer-long-tail",
                "queries": len(pool),
                "dop": DOP,
                "morsel_rows": MORSEL_ROWS,
                "serial_wall_seconds": round(serial_wall, 6),
                "parallel_wall_seconds": round(parallel_wall, 6),
                "wall_ratio": round(wall_ratio, 4),
                "busy_seconds": round(busy, 6),
                "makespan_seconds": round(makespan, 6),
                "sim_speedup": round(sim_speedup, 4),
                "pool_runs": runs,
            },
            indent=2,
        )
        + "\n"
    )

    assert sim_speedup >= 1.5, (
        "morsel parallelism should cut simulated elapsed time by >= 1.5x,"
        " got %.2fx" % sim_speedup
    )
    par_db.pool.shutdown()
