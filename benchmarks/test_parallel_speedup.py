"""Morsel-driven parallelism on the Table-1 customer workload.

Serial vs DOP-4 execution of the long-tail scan/aggregate pool, under
both worker-pool backends.  Two timing surfaces are reported:

* **wall clock** — best-of-3 totals over the query pool.  Since the
  fused region kernels landed, the DOP-4 engine does strictly less work
  than the serial engine (single-pass scan->filter->reduce per region
  batch, no intermediate materialisation), so real wall speedup shows
  even on a single-core container; the headline ``wall_ratio`` (serial /
  thread-backend parallel) carries an assertion (> 1.5x) plus a
  regression gate against the committed ``BENCH_parallel.json``.
* **simulated speedup** — from the pool's own accounting: serial-
  equivalent cost is the sum of task CPU spans (``busy_seconds``), the
  parallel cost is the list-scheduled makespan of those spans over the
  configured workers.  Independent of host oversubscription; asserted
  >= 1.5x as before.

The summary lands in ``BENCH_parallel.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.database import Database
from repro.workloads.tpcds import flush_tables

from conftest import banner, record

POOL_SIZE = 24
DOP = 4
WALL_ROUNDS = 3  # best-of-3 wall timings

#: Deliberately small morsels so the scaled-down fact table still splits
#: into enough tasks per operator to load every worker.
MORSEL_ROWS = 4_096

#: Wall-clock tolerance for the regression gate: the refreshed ratio may
#: not drop more than this below the committed one (timer noise on shared
#: CI runners, not a license for real regressions).
WALL_RATIO_TOLERANCE = 0.35

_RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _make_engine(backend):
    db = Database(parallelism=DOP, morsel_rows=MORSEL_ROWS, pool_backend=backend)
    return db, db.connect("db2")


def _best_wall(session, pool):
    """Best-of-N total wall seconds over the whole query pool."""
    totals = []
    for _ in range(WALL_ROUNDS):
        t0 = time.perf_counter()
        for sql in pool:
            session.execute(sql)
        totals.append(time.perf_counter() - t0)
    return min(totals)


def _committed_gate():
    """The committed wall_ratio to gate against, or None.

    Results written before the fused-kernel work (recognised by the
    missing ``backends`` section) predate real wall speedup and carry no
    gate.
    """
    try:
        committed = json.loads(_RESULT_PATH.read_text())
    except (OSError, ValueError):
        return None
    if "backends" not in committed:
        return None
    return committed.get("wall_ratio")


def test_parallel_speedup_customer_workload(
    dashdb_customer, customer_workload, benchmark
):
    thread_db, thread = _make_engine("thread")
    proc_db, proc = _make_engine("process")
    for session in (thread, proc):
        customer_workload.load_base(session)
        flush_tables(session.database)

    pool = customer_workload.long_tail_pool(POOL_SIZE)

    # Correctness before speed: all three executions answer identically.
    for sql in pool:
        reference = dashdb_customer.execute(sql).rows
        assert reference == thread.execute(sql).rows, sql
        assert reference == proc.execute(sql).rows, sql

    serial_wall = _best_wall(dashdb_customer, pool)

    # Measure the thread backend over a clean accounting window.
    busy0 = thread_db.pool.busy_seconds_total
    span0 = thread_db.pool.makespan_seconds_total
    runs0 = thread_db.pool.runs_total
    thread_wall = _best_wall(thread, pool)
    busy = thread_db.pool.busy_seconds_total - busy0
    makespan = thread_db.pool.makespan_seconds_total - span0
    runs = thread_db.pool.runs_total - runs0

    process_wall = _best_wall(proc, pool)

    assert runs > 0 and busy > 0.0, "workload never reached the worker pool"
    sim_speedup = busy / makespan if makespan > 0 else float(DOP)
    wall_ratio = serial_wall / thread_wall if thread_wall > 0 else 1.0
    process_ratio = serial_wall / process_wall if process_wall > 0 else 1.0

    benchmark.pedantic(
        lambda: [thread.execute(sql) for sql in pool[:6]],
        rounds=2,
        iterations=1,
    )

    from repro.engine.fused import PIPELINE_CACHE

    cache = PIPELINE_CACHE.stats()
    banner(
        "Parallel execution — customer long-tail pool, serial vs DOP %d" % DOP,
        [
            "wall: serial %.3fs  thread %.3fs (%.2fx)  process %.3fs (%.2fx)"
            % (serial_wall, thread_wall, wall_ratio, process_wall, process_ratio),
            "sim:  busy %.3fs -> makespan %.3fs  speedup %.2fx (assert >= 1.5x)"
            % (busy, makespan, sim_speedup),
            "pool: %d runs, %d tasks at DOP %d; process runs %d, fallbacks %d"
            % (
                runs,
                thread_db.pool.tasks_total,
                DOP,
                proc_db.pool.process_runs_total,
                proc_db.pool.process_fallbacks_total,
            ),
            "fused pipeline cache: %(hits)d hits, %(misses)d misses" % cache,
        ],
    )
    record(
        "parallel-speedup",
        sim_speedup=sim_speedup,
        wall_ratio=wall_ratio,
        process_wall_ratio=process_ratio,
        dop=DOP,
    )
    committed_ratio = _committed_gate()
    _RESULT_PATH.write_text(
        json.dumps(
            {
                "workload": "table1-customer-long-tail",
                "queries": len(pool),
                "dop": DOP,
                "morsel_rows": MORSEL_ROWS,
                "wall_rounds": WALL_ROUNDS,
                "serial_wall_seconds": round(serial_wall, 6),
                "parallel_wall_seconds": round(thread_wall, 6),
                "wall_ratio": round(wall_ratio, 4),
                "busy_seconds": round(busy, 6),
                "makespan_seconds": round(makespan, 6),
                "sim_speedup": round(sim_speedup, 4),
                "pool_runs": runs,
                "pipeline_cache": {
                    "hits": cache["hits"],
                    "misses": cache["misses"],
                },
                "backends": {
                    "thread": {
                        "wall_seconds": round(thread_wall, 6),
                        "wall_ratio": round(wall_ratio, 4),
                    },
                    "process": {
                        "wall_seconds": round(process_wall, 6),
                        "wall_ratio": round(process_ratio, 4),
                        "process_runs": proc_db.pool.process_runs_total,
                        "thread_fallbacks": proc_db.pool.process_fallbacks_total,
                    },
                },
            },
            indent=2,
        )
        + "\n"
    )

    assert wall_ratio > 1.5, (
        "fused DOP-%d execution should beat serial by > 1.5x in wall time,"
        " got %.2fx" % (DOP, wall_ratio)
    )
    assert sim_speedup >= 1.5, (
        "morsel parallelism should cut simulated elapsed time by >= 1.5x,"
        " got %.2fx" % sim_speedup
    )
    if committed_ratio is not None:
        assert wall_ratio >= committed_ratio - WALL_RATIO_TOLERANCE, (
            "wall_ratio regressed: %.2fx vs committed %.2fx (tolerance %.2f)"
            % (wall_ratio, committed_ratio, WALL_RATIO_TOLERANCE)
        )
    thread_db.pool.shutdown()
    proc_db.pool.shutdown()
