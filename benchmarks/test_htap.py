"""HTAP under MVCC — analytic readers racing a trickle-insert writer.

Test-2-style concurrency, restated for snapshot isolation: the paper's
concurrent workload mixes load and queries on one system ("the actual
concurrent workload was executed as it would execute on a live system").
Here an analytic query pool runs three ways —

* **idle** — no concurrent writer (the baseline QpH);
* **churn** — an auto-commit writer trickles single-row inserts into the
  scanned table the whole time.  Snapshot reads take no statement lock
  and scan a frozen capture, so reader throughput must hold: the gate is
  ``churn QpH >= 0.8x idle QpH``;
* **uncommitted bulk load** — a core-API transaction holds tens of
  thousands of *uncommitted* stamped rows open while the pool runs
  again.  Visibility is decided per-version, so the answers must be
  byte-identical to the pre-load answers — the reader neither blocks on
  the load nor sees half of it.

The summary lands in ``BENCH_htap.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time

from repro.database import Database
from repro.sql.parser import parse_statement
from repro.util.rng import derive_rng
from repro.workloads.tpcds import flush_tables

from conftest import banner, record

DOP = 4
MORSEL_ROWS = 4_096
BASE_ROWS = 24_000
BULK_ROWS = 30_000
ROUNDS = 10
QPH_FLOOR = 0.8  # churn QpH must stay within this fraction of idle

_RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_htap.json"

#: Deterministic analytic pool: aggregate-heavy shapes that sweep the
#: whole fact table, so every query really scans under the churn.
_POOL = [
    "SELECT COUNT(*), SUM(b), AVG(b) FROM t",
    "SELECT c, COUNT(*), SUM(b), MIN(a) FROM t GROUP BY c ORDER BY 1",
    "SELECT a, COUNT(*) FROM t WHERE b BETWEEN -500 AND 500"
    " GROUP BY a ORDER BY 2 DESC, 1 FETCH FIRST 10 ROWS ONLY",
    "SELECT MIN(b), MAX(b), COUNT(*) FROM t WHERE a > 25",
    "SELECT COUNT(DISTINCT c), COUNT(d) FROM t",
    "SELECT c, AVG(d) FROM t WHERE a < 20 GROUP BY c ORDER BY 1",
]


def _load_base(session):
    rng = derive_rng(71, "htap-base")
    session.execute(
        "CREATE TABLE t (a INT, b INT, c VARCHAR(4), d DECIMAL(8,2))"
    )
    rows = []
    for _ in range(BASE_ROWS):
        rows.append(
            "(%d, %d, 'v%d', %d.%02d)"
            % (
                rng.integers(0, 50),
                rng.integers(-1000, 1000),
                rng.integers(0, 8),
                rng.integers(0, 100),
                rng.integers(0, 100),
            )
        )
    for start in range(0, len(rows), 2000):
        session.execute(
            "INSERT INTO t VALUES " + ", ".join(rows[start : start + 2000])
        )


def _bulk_rows(n):
    rng = derive_rng(72, "htap-bulk")
    return [
        (
            int(rng.integers(0, 50)),
            int(rng.integers(-1000, 1000)),
            "v%d" % rng.integers(0, 8),
            "%d.%02d" % (rng.integers(0, 100), rng.integers(0, 100)),
        )
        for _ in range(n)
    ]


def _run_pool(session, rounds=ROUNDS):
    """(queries run, wall seconds) over ``rounds`` passes of the pool."""
    t0 = time.perf_counter()
    n = 0
    for _ in range(rounds):
        for sql in _POOL:
            session.execute(sql)
            n += 1
    return n, time.perf_counter() - t0


def _qph(n, seconds):
    return n / seconds * 3600.0 if seconds > 0 else 0.0


def _trickle(session, stop, count, errors):
    """Writer thread: paced single-row auto-commit inserts."""
    i = 0
    while not stop.is_set():
        try:
            session.execute(
                "INSERT INTO t VALUES (%d, %d, 'w', 1.00)" % (100000 + i, i)
            )
        except BaseException as exc:  # lint-ok: broad-except (surfaced on the main thread after join)
            errors.append(exc)
            return
        i += 1
        count[0] = i
        time.sleep(0.004)  # trickle pacing: a stream, not a bulk load


def test_htap_reader_throughput_under_churn(benchmark):
    db = Database(parallelism=DOP, morsel_rows=MORSEL_ROWS, pool_backend="thread")
    session = db.connect("db2")
    _load_base(session)
    flush_tables(db)
    base_count = int(session.execute("SELECT COUNT(*) FROM t").rows[0][0])
    assert base_count == BASE_ROWS

    # Warm plans and caches, then the idle baseline.
    _run_pool(session, rounds=1)
    idle_n, idle_seconds = _run_pool(session)
    idle_qph = _qph(idle_n, idle_seconds)

    # Churn phase: same pool, with the trickle writer committing the
    # whole time.  A snapshot pinned before the churn must stay frozen.
    pinned = db.txn.snapshot()
    stop = threading.Event()
    count = [0]
    errors: list[BaseException] = []
    writer = threading.Thread(
        target=_trickle, args=(db.connect("db2"), stop, count, errors)
    )
    writer.start()
    try:
        churn_n, churn_seconds = _run_pool(session)
    finally:
        stop.set()
        writer.join()
    assert not errors, errors[0]
    writer_rows = count[0]
    churn_qph = _qph(churn_n, churn_seconds)
    ratio = churn_qph / idle_qph if idle_qph else 0.0

    assert writer_rows > 0, "the writer never committed anything"
    frozen = int(
        db.execute_ast(
            parse_statement("SELECT COUNT(*) FROM t"), snapshot=pinned
        ).rows[0][0]
    )
    assert frozen == base_count, "pinned snapshot saw the churn"
    after_churn = int(session.execute("SELECT COUNT(*) FROM t").rows[0][0])
    assert after_churn == base_count + writer_rows, "trickle commits lost"

    # Uncommitted bulk load held open: answers must not move, and the
    # reader must keep running (no lock wait against the loader).
    before_load = [session.execute(sql).rows for sql in _POOL]
    table = db.catalog.get_table("t").table
    loader = db.txn.begin()
    loader.insert(table, _bulk_rows(BULK_ROWS))
    try:
        load_n, load_seconds = _run_pool(session)
        during_load = [session.execute(sql).rows for sql in _POOL]
    finally:
        loader.abort()
    load_qph = _qph(load_n, load_seconds)
    assert during_load == before_load, (
        "reader saw (part of) an uncommitted bulk load"
    )

    benchmark.pedantic(
        lambda: [session.execute(sql) for sql in _POOL],
        rounds=2,
        iterations=1,
    )

    banner(
        "HTAP — analytic pool vs trickle writer (DOP %d, MVCC snapshots)" % DOP,
        [
            "idle:  %d queries in %.3fs -> %.0f QpH" % (idle_n, idle_seconds, idle_qph),
            "churn: %d queries in %.3fs -> %.0f QpH (%.2fx idle, gate >= %.2fx)"
            % (churn_n, churn_seconds, churn_qph, ratio, QPH_FLOOR),
            "writer: %d single-row commits during the churn window" % writer_rows,
            "uncommitted load: %d stamped rows open -> %.0f QpH, answers frozen"
            % (BULK_ROWS, load_qph),
        ],
    )
    record(
        "htap",
        idle_qph=idle_qph,
        churn_qph=churn_qph,
        qph_ratio=ratio,
        writer_rows=writer_rows,
    )
    _RESULT_PATH.write_text(
        json.dumps(
            {
                "workload": "htap-trickle-vs-analytics",
                "dop": DOP,
                "base_rows": BASE_ROWS,
                "reader_rounds": ROUNDS,
                "pool_queries": len(_POOL),
                "idle": {
                    "queries": idle_n,
                    "wall_seconds": round(idle_seconds, 6),
                    "qph": round(idle_qph, 2),
                },
                "churn": {
                    "queries": churn_n,
                    "wall_seconds": round(churn_seconds, 6),
                    "qph": round(churn_qph, 2),
                    "writer_rows": writer_rows,
                },
                "qph_ratio": round(ratio, 4),
                "qph_floor": QPH_FLOOR,
                "uncommitted_load": {
                    "rows": BULK_ROWS,
                    "qph": round(load_qph, 2),
                    "answers_frozen": True,
                },
            },
            indent=2,
        )
        + "\n"
    )

    assert ratio >= QPH_FLOOR, (
        "reader throughput collapsed under writer churn: %.2fx idle"
        " (gate %.2fx) — snapshot reads must not block behind loads"
        % (ratio, QPH_FLOOR)
    )
    db.pool.shutdown()
