"""Section II.B.5 — scan-resistant buffer-pool replacement.

Paper: LRU is pathological for Big Data scans ("the top of the scan is
rarely in RAM at the start of the next scan"); the randomized-page-weight
policy [13] "was found to produce cache efficiency rates for Big Data style
scanning within a few percentiles of optimal".
"""

from __future__ import annotations

from repro.bufferpool import BufferPool, OptimalPolicy, make_policy
from repro.util.rng import derive_rng

from conftest import banner, record

POOL_FRAMES = 64


def _scan_workload(n_cold=160, n_hot=8, sweeps=40, seed=3):
    """Repeated sweeps of a table larger than the pool, with a hot working
    set touched between sweeps — the paper's problematic scan pattern
    ("the top of the scan is rarely in RAM at the start of the next scan")."""
    rng = derive_rng(seed, "bufferpool-bench")
    trace = []
    for sweep in range(sweeps):
        for hot in range(n_hot):
            trace.append(("hot", hot))
        for page in range(n_cold):
            trace.append(("cold", page))
        # occasional random point lookups on hot pages
        for _ in range(4):
            trace.append(("hot", int(rng.integers(0, n_hot))))
    return trace


def _run(policy, trace):
    pool = BufferPool(POOL_FRAMES, policy)
    for page in trace:
        pool.get(page, lambda p=page: p)
    return pool.stats.hit_ratio


def test_policy_comparison(benchmark):
    trace = _scan_workload()
    ratios = {}
    for name in ("lru", "clock", "mru", "random-weight"):
        ratios[name] = _run(make_policy(name), trace)
    ratios["opt"] = _run(OptimalPolicy(trace), trace)

    benchmark.pedantic(
        lambda: _run(make_policy("random-weight"), trace), rounds=3, iterations=1
    )

    gap_to_opt = ratios["opt"] - ratios["random-weight"]
    lines = [
        "paper:    randomized weights within a few percentiles of optimal;",
        "          LRU keeps evicting exactly what the next sweep needs",
        "",
    ]
    for name, ratio in sorted(ratios.items(), key=lambda kv: kv[1]):
        lines.append("%-14s hit ratio %6.1f%%" % (name, 100 * ratio))
    lines.append("")
    lines.append(
        "random-weight is %.1f points below OPT; LRU is %.1f points below"
        % (100 * gap_to_opt, 100 * (ratios["opt"] - ratios["lru"]))
    )
    banner("II.B.5 — buffer-pool policies under scan floods", lines)
    record("bufferpool", **{k: round(100 * v, 1) for k, v in ratios.items()})

    assert ratios["random-weight"] > ratios["lru"], "must beat LRU on scans"
    assert ratios["random-weight"] > ratios["clock"], "must beat CLOCK on scans"
    # Paper: "within a few percentiles of optimal" on their traces; this
    # adversarial two-table sweep is harder — stay within ~20 points.
    assert gap_to_opt < 0.20, "should be close to OPT on scan floods"
    # The pathology the paper describes: LRU badly trails the oracle.
    assert ratios["opt"] - ratios["lru"] > 2 * gap_to_opt
