"""Table 1, Test 2 — concurrent customer workload (queries + load).

Paper: "the actual concurrent workload was executed as it would execute on
a live system ... up to 100 concurrent streams related to various query
operations.  This resulted in dashDB executing the whole workload in less
than half the time, a 2.1x performance improvement."

Here: the full statement mix (INSERT/UPDATE/DROP/SELECT/CREATE/DELETE/
WITH/EXPLAIN/TRUNCATE) runs on both systems to obtain per-statement service
times; the WLM stream scheduler then computes the multiprogrammed makespan
for N streams on each system's concurrency budget.
"""

from __future__ import annotations

import time

from repro.baselines.costmodel import APPLIANCE_PROFILE, DASHDB_PROFILE
from repro.baselines.appliance import ROW_BYTES_ESTIMATE
from repro.cluster.wlm import schedule_streams
from repro.workloads import CustomerWorkload

from conftest import banner, record

N_STREAMS = 10  # scaled stand-in for "up to 100 concurrent streams"
CONCURRENCY = 8


def _service_times(execute_and_time, statements):
    times = []
    for statement in statements:
        times.append(execute_and_time(statement.sql))
    return times


def _streams_from(times, n_streams):
    """Deal the statement service times round-robin into streams."""
    streams = [[] for _ in range(n_streams)]
    for i, t in enumerate(times):
        streams[i % n_streams].append(t)
    return streams


def test_test2_concurrent_workload_time(
    dashdb_customer, appliance_customer, benchmark
):
    workload = CustomerWorkload(scale=1 / 1000, n_trades=160_000, seed=21)
    statements = workload.statements()

    def time_dashdb(sql):
        t0 = time.perf_counter()
        dashdb_customer.execute(sql)
        return DASHDB_PROFILE.query_seconds(time.perf_counter() - t0)

    def time_appliance(sql):
        return appliance_customer.execute(sql).seconds

    dashdb_times = _service_times(time_dashdb, statements)
    appliance_times = _service_times(time_appliance, statements)

    selects = [s for s in statements if s.kind in ("SELECT", "WITH")][:25]
    benchmark.pedantic(
        lambda: [dashdb_customer.execute(s.sql) for s in selects],
        rounds=1,
        iterations=1,
    )

    dash_result = schedule_streams(_streams_from(dashdb_times, N_STREAMS), CONCURRENCY)
    appl_result = schedule_streams(_streams_from(appliance_times, N_STREAMS), CONCURRENCY)
    ratio = appl_result.makespan / dash_result.makespan

    banner(
        "Table 1 / Test 2 — concurrent customer workload (%d streams)" % N_STREAMS,
        [
            "paper:    whole-workload time 2.1x better on dashDB",
            "measured: dashDB makespan %.2fs, appliance %.2fs -> %.1fx"
            % (dash_result.makespan, appl_result.makespan, ratio),
            "          statements: %d  (mix preserved from paper counts)"
            % len(statements),
        ],
    )
    record("table1-test2", workload_time_ratio=ratio, paper_ratio=2.1)
    assert ratio > 1.3, "dashDB should finish the concurrent mix substantially faster"
