"""Section II.A — deployment in under 30 minutes, and stack update.

Paper: "we find dashDB is consistently able to deploy to large clusters in
under 30 minutes, fully configured and instantiated, with workload
management, memory cache, query optimization levels and parallelism
configured to match", and updates are "stop-and-rename ... seconds to
start container from new image, few minutes to start dashDB engine on
large memory configurations".
"""

from __future__ import annotations

from repro.cluster.hardware import HARDWARE_PRESETS
from repro.deploy import (
    ContainerImage,
    Host,
    ImageRegistry,
    deploy_cluster,
    update_stack,
)
from repro.util.timer import SimClock

from conftest import banner, record


def _hosts(n, preset="dashdb-test1-node"):
    return [Host("h%d" % i, HARDWARE_PRESETS[preset]) for i in range(n)]


def test_deployment_time_sweep(benchmark):
    lines = ["paper:    large clusters fully configured in < 30 minutes", ""]
    results = {}
    for n_nodes in (1, 4, 8, 24):
        clock = SimClock()
        cluster, report = deploy_cluster(_hosts(n_nodes), clock=clock)
        results[n_nodes] = report.total_minutes
        lines.append(
            "%3d nodes: %6.1f min   (%s)"
            % (
                n_nodes,
                report.total_minutes,
                ", ".join("%s %.0fs" % (p.phase.split(" (")[0], p.seconds) for p in report.phases),
            )
        )
        assert report.total_minutes < 30.0
        assert len(cluster.live_nodes()) == n_nodes

    # Big-memory single node (6 TB RAM: engine start takes minutes).
    clock = SimClock()
    _, big_report = deploy_cluster(
        [Host("big", HARDWARE_PRESETS["xeon-e7-72way"])], clock=clock
    )
    engine_phase = [p for p in big_report.phases if "engine" in p.phase][0]
    lines.append(
        "6TB node:  %6.1f min   (engine start alone %.1f min)"
        % (big_report.total_minutes, engine_phase.seconds / 60)
    )
    assert big_report.total_minutes < 30.0
    assert engine_phase.seconds > 120  # "few minutes" on large memory

    benchmark.pedantic(
        lambda: deploy_cluster(_hosts(4), clock=SimClock()), rounds=3, iterations=1
    )

    banner("II.A — cluster deployment time (simulated)", lines)
    record("deploy-time", minutes_by_nodes=results, claim_minutes=30)


def test_stack_update_time(benchmark):
    clock = SimClock()
    hosts = _hosts(4)
    registry = ImageRegistry()
    cluster, _ = deploy_cluster(hosts, registry=registry, clock=clock)
    new_image = ContainerImage("ibmdashdb/local", "v2", size_gb=4.6)

    t0 = clock.now
    report = update_stack(cluster, hosts, new_image, registry=registry, clock=clock)
    update_minutes = (clock.now - t0) / 60

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    container_phase = [p for p in report.phases if "container" in p.phase][0]
    banner(
        "II.A — stack update by container replacement",
        [
            "paper:    seconds to start container; minutes for big-RAM engines",
            "measured: update of 4 nodes in %.1f min"
            % update_minutes,
            "          container swap %.0fs, engine restart %.0fs"
            % (container_phase.seconds, report.phases[-1].seconds),
        ],
    )
    record("stack-update", minutes=update_minutes)
    assert update_minutes < 15
    assert container_phase.seconds < 60  # "seconds to start container"
